"""OBU and RSU units: an ITS station plus the OpenC2X HTTP API.

The HTTP routes mirror the subset of OpenC2X's web interface the paper
uses (Section III-D):

* ``POST /trigger_denm`` -- build and disseminate a DENM from the
  request body (the RSU path, called by the edge node);
* ``POST /request_denm`` -- return the oldest undelivered received
  DENM, or an empty 200 (the OBU path, polled by the vehicle);
* ``POST /trigger_cam`` -- force a CAM transmission;
* ``POST /cam_info`` / ``POST /denm_all`` -- LDM dumps, mirroring the
  OpenC2X web interface views.

Units also expose a measurement hook (:meth:`OpenC2XUnit.on_event`)
that reports the paper's step timestamps -- DENM sent at the RSU
(step 3), DENM received at the OBU (step 4) -- in *device clock* time,
exactly as the NTP-synced testbed logged them.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.facilities.ca_service import CaConfig, StationState
from repro.facilities.den_service import DenConfig
from repro.facilities.ldm import ObjectKind
from repro.facilities.station import ItsStation
from repro.geonet.position import GeoPosition, LocalFrame
from repro.geonet.router import CircularArea
from repro.messages.common import ReferencePosition
from repro.messages.denm import ActionId, Denm
from repro.net.medium import WirelessMedium
from repro.net.phy import PhyConfig
from repro.openc2x.http import HttpConfig, HttpServer
from repro.sim.clock import NtpModel
from repro.sim.kernel import Simulator
from repro.sim.randomness import RandomStreams

EventHook = Callable[[str, Dict[str, Any]], None]


@dataclasses.dataclass(frozen=True)
class StackConfig:
    """Internal OpenC2X stack traversal latencies.

    The trigger path (web API -> DEN service -> DCC -> driver) and the
    receive path (driver -> GN -> DEN service -> LDM/sqlite write) each
    cost sub-millisecond-to-millisecond time on the APU2 boards; the
    paper's measured 1.6 ms RSU-send to OBU-receive interval is mostly
    this, not airtime.
    """

    trigger_delay_mean: float = 0.9e-3
    trigger_delay_std: float = 0.25e-3
    receive_delay_mean: float = 0.8e-3
    receive_delay_std: float = 0.25e-3


class OpenC2XUnit:
    """A single-board computer running the (simulated) OpenC2X stack."""

    def __init__(
        self,
        sim: Simulator,
        medium: WirelessMedium,
        streams: RandomStreams,
        name: str,
        station_id: int,
        station_type: int,
        position: Callable[[], GeoPosition],
        dynamics: Optional[Callable[[], Tuple[float, float]]] = None,
        state_provider: Optional[Callable[[], StationState]] = None,
        phy: Optional[PhyConfig] = None,
        ntp: Optional[NtpModel] = None,
        http_config: Optional[HttpConfig] = None,
        stack_config: Optional[StackConfig] = None,
        ca_config: Optional[CaConfig] = None,
        den_config: Optional[DenConfig] = None,
        enable_cam: bool = True,
        is_rsu: bool = False,
        local_frame: Optional[LocalFrame] = None,
        security=None,
    ):
        self.sim = sim
        self.name = name
        self.station = ItsStation(
            sim, medium, streams, name, station_id, station_type,
            position=position, dynamics=dynamics,
            state_provider=state_provider, phy=phy, ntp=ntp,
            ca_config=ca_config, den_config=den_config,
            enable_cam=enable_cam, is_rsu=is_rsu, local_frame=local_frame,
            security=security)
        self.http = HttpServer(
            sim, streams.get(f"station.{name}.http"), name, http_config)
        self.stack_config = stack_config or StackConfig()
        self._stack_rng = streams.get(f"station.{name}.stack")
        self._pending_denms: Deque[Dict[str, Any]] = deque()
        self._push_subscribers: List[Tuple[Callable[[Dict[str, Any]],
                                                    None], float]] = []
        self._event_hooks: List[EventHook] = []
        self.denms_queued = 0
        self.denms_polled = 0
        self.empty_polls = 0
        self.station.den.on_denm(self._on_denm)
        self.http.route("/trigger_denm", self._handle_trigger_denm)
        self.http.route("/cancel_denm", self._handle_cancel_denm)
        self.http.route("/request_denm", self._handle_request_denm)
        self.http.route("/trigger_cam", self._handle_trigger_cam)
        self.http.route("/cam_info", self._handle_cam_info)
        self.http.route("/denm_all", self._handle_denm_all)

    # ------------------------------------------------------------------
    # Measurement hooks
    # ------------------------------------------------------------------

    def on_event(self, hook: EventHook) -> None:
        """Register a hook for step events (``denm_sent`` etc.)."""
        self._event_hooks.append(hook)

    def _emit(self, event: str, **fields: Any) -> None:
        record = {
            "station": self.name,
            "clock_time": self.station.clock.now(),
            "sim_time": self.sim.now,
        }
        record.update(fields)
        for hook in self._event_hooks:
            hook(event, record)

    # ------------------------------------------------------------------
    # DENM receive path (the OBU side)
    # ------------------------------------------------------------------

    def _on_denm(self, denm: Denm, classification: str) -> None:
        if classification == "repetition":
            return
        # Stack traversal: radio driver -> GeoNetworking -> DEN
        # service -> LDM write before the web API can see the message.
        delay = max(0.0, float(self._stack_rng.normal(
            self.stack_config.receive_delay_mean,
            self.stack_config.receive_delay_std)))
        self.sim.schedule(delay, lambda: self._queue_denm(
            denm, classification))

    def _queue_denm(self, denm: Denm, classification: str) -> None:
        self._emit("denm_received",
                   action_id=(denm.action_id.station_id,
                              denm.action_id.sequence_number),
                   classification=classification)
        record = self._denm_to_json(denm, classification)
        self._pending_denms.append(record)
        self.denms_queued += 1
        self._notify_push(record)

    def subscribe_push(self, callback: Callable[[Dict[str, Any]], None],
                       latency: float = 1e-3) -> None:
        """Push-mode delivery: *callback* fires for every queued DENM.

        Models a persistent notification channel (long-poll /
        websocket) instead of the paper's polling loop; *latency* is
        the channel's delivery time.  The DENM also stays in the poll
        queue, so mixed deployments work.
        """
        self._push_subscribers.append((callback, latency))

    def _notify_push(self, record: Dict[str, Any]) -> None:
        for callback, latency in self._push_subscribers:
            self.sim.schedule(latency,
                              lambda cb=callback, r=dict(record): cb(r))

    def inject_denm(self, denm_json: Dict[str, Any]) -> None:
        """Queue a warning delivered outside the ITS-G5 stack.

        Used by the multi-technology experiments: a DENM-equivalent
        message arriving over a cellular bridge enters the same queue
        the vehicle's Message Handler polls, and stamps the same
        step-4 reception event.
        """
        action = denm_json.get("actionId", {})
        self._emit("denm_received",
                   action_id=(action.get("originatingStationID", 0),
                              action.get("sequenceNumber", 0)),
                   classification=denm_json.get("classification", "new"))
        record = dict(denm_json)
        record.setdefault("receivedAt", self.station.clock.now())
        record.setdefault("termination", None)
        self._pending_denms.append(record)
        self.denms_queued += 1
        self._notify_push(record)

    def _denm_to_json(self, denm: Denm, classification: str,
                      ) -> Dict[str, Any]:
        body: Dict[str, Any] = {
            "actionId": {
                "originatingStationID": denm.action_id.station_id,
                "sequenceNumber": denm.action_id.sequence_number,
            },
            "detectionTime": denm.detection_time,
            "referenceTime": denm.reference_time,
            "classification": classification,
            "receivedAt": self.station.clock.now(),
            "eventPosition": {
                "latitude": denm.event_position.latitude,
                "longitude": denm.event_position.longitude,
            },
            "termination": denm.termination,
        }
        if denm.event_type is not None:
            body["situation"] = {
                "causeCode": denm.event_type.cause_code,
                "subCauseCode": denm.event_type.sub_cause_code,
                "description": denm.describe(),
            }
        return body

    # ------------------------------------------------------------------
    # HTTP handlers
    # ------------------------------------------------------------------

    def _handle_trigger_denm(self, body: Dict[str, Any],
                             ) -> Tuple[int, Dict[str, Any]]:
        try:
            latitude = float(body["latitude"])
            longitude = float(body["longitude"])
            cause_code = int(body["causeCode"])
        except KeyError as err:
            return 400, {"error": f"missing field {err}"}
        sub_cause = int(body.get("subCauseCode", 0))
        quality = int(body.get("informationQuality", 3))
        validity = body.get("validityDuration", 10)
        radius = float(body.get("areaRadius", 50.0))
        action_id = self.station.den.allocate_action_id()
        denm = Denm(
            action_id=action_id,
            detection_time=int(body.get("detectionTime",
                                        self.station.its_time())),
            reference_time=self.station.its_time(),
            event_position=ReferencePosition(latitude, longitude),
            station_type=self.station.station_type,
            event_type=_event_type_or_none(cause_code, sub_cause),
            information_quality=quality,
            validity_duration=validity,
            event_speed=body.get("eventSpeed"),
            event_heading=body.get("eventHeading"),
        )
        area = CircularArea(GeoPosition(latitude, longitude), radius)
        repetition = body.get("repetitionInterval")
        duration = body.get("repetitionDuration", 0.0)
        # Stack traversal: web API -> DEN service -> DCC -> driver.
        delay = max(0.0, float(self._stack_rng.normal(
            self.stack_config.trigger_delay_mean,
            self.stack_config.trigger_delay_std)))

        def transmit() -> None:
            self.station.den.trigger(
                denm, area=area,
                repetition_interval=repetition,
                repetition_duration=duration)
            # Step 3: "the RSU registers the time of sending of DENMs".
            self._emit("denm_sent",
                       action_id=(action_id.station_id,
                                  action_id.sequence_number),
                       cause_code=cause_code)

        self.sim.schedule(delay, transmit)
        return 200, {
            "status": "triggered",
            "actionId": {
                "originatingStationID": action_id.station_id,
                "sequenceNumber": action_id.sequence_number,
            },
        }

    def _handle_cancel_denm(self, body: Dict[str, Any],
                            ) -> Tuple[int, Dict[str, Any]]:
        """Cancel an event this unit originated (all-clear)."""
        from repro.messages.denm import ActionId

        try:
            action = ActionId(
                int(body["actionId"]["originatingStationID"]),
                int(body["actionId"]["sequenceNumber"]))
        except (KeyError, TypeError) as err:
            return 400, {"error": f"missing/invalid actionId ({err})"}
        delay = max(0.0, float(self._stack_rng.normal(
            self.stack_config.trigger_delay_mean,
            self.stack_config.trigger_delay_std)))

        def transmit() -> None:
            try:
                self.station.den.cancel(action)
            except KeyError:
                return
            self._emit("denm_cancelled",
                       action_id=(action.station_id,
                                  action.sequence_number))

        if action not in self.station.den.originated_events():
            return 404, {"error": f"unknown event {action}"}
        self.sim.schedule(delay, transmit)
        return 200, {"status": "cancelling"}

    def _handle_request_denm(self, _body: Dict[str, Any],
                             ) -> Tuple[int, Dict[str, Any]]:
        if not self._pending_denms:
            self.empty_polls += 1
            return 200, {}
        self.denms_polled += 1
        return 200, {"denm": self._pending_denms.popleft()}

    def _handle_trigger_cam(self, _body: Dict[str, Any],
                            ) -> Tuple[int, Dict[str, Any]]:
        self.station.ca.force_generate()
        return 200, {"status": "sent"}

    def _handle_cam_info(self, _body: Dict[str, Any],
                         ) -> Tuple[int, Dict[str, Any]]:
        vehicles = self.station.ldm.query(kinds=[ObjectKind.VEHICLE])
        return 200, {
            "vehicles": [
                {
                    "stationID": obj.station_id,
                    "latitude": obj.position.latitude,
                    "longitude": obj.position.longitude,
                    "speed": obj.speed,
                    "heading": obj.heading,
                    "age": self.sim.now - obj.timestamp,
                }
                for obj in vehicles
            ],
        }

    def _handle_denm_all(self, _body: Dict[str, Any],
                         ) -> Tuple[int, Dict[str, Any]]:
        events = self.station.ldm.query(kinds=[ObjectKind.EVENT])
        return 200, {
            "events": [
                {
                    "stationID": obj.station_id,
                    "latitude": obj.position.latitude,
                    "longitude": obj.position.longitude,
                    "description": (obj.data.describe()
                                    if isinstance(obj.data, Denm) else None),
                }
                for obj in events
            ],
        }

    @property
    def pending_denm_count(self) -> int:
        """DENMs received but not yet polled by the vehicle."""
        return len(self._pending_denms)


def _event_type_or_none(cause_code: int, sub_cause: int):
    from repro.messages.denm import EventType

    if cause_code < 0:
        return None
    return EventType(cause_code, sub_cause)


class OnBoardUnit(OpenC2XUnit):
    """The vehicle's APU2 board: receives DENMs, polled by the Jetson."""


class RoadSideUnit(OpenC2XUnit):
    """The infrastructure's APU2 board: disseminates DENMs on request."""
