"""A simulated HTTP hop between co-located devices.

In the testbed the HTTP legs run over wired LAN / USB-Ethernet between
the Jetson boards and the APU2 units, so the cost is dominated by
stack traversal and the OpenC2X web server's service time rather than
propagation.  Each request pays::

    request latency -> server service time -> response latency

with configurable means and jitter.  Requests are processed FIFO by a
single-worker server (matching OpenC2X's simple embedded web server):
a burst of polls queues up.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Any, Callable, Deque, Dict, Optional, Tuple

import numpy as np

from repro.sim.kernel import Event, Simulator

Handler = Callable[[Dict[str, Any]], Tuple[int, Dict[str, Any]]]


@dataclasses.dataclass(frozen=True)
class HttpConfig:
    """Latency parameters of one HTTP hop."""

    #: One-way network latency mean (s); LAN scale.
    latency_mean: float = 0.3e-3
    #: One-way latency jitter std-dev (s).
    latency_std: float = 0.1e-3
    #: Server-side processing time mean (s).
    service_mean: float = 0.8e-3
    #: Server-side processing jitter std-dev (s).
    service_std: float = 0.3e-3
    #: Probability a request (or its response) is lost in transit --
    #: fault injection; clients need a timeout to survive this.
    drop_probability: float = 0.0


@dataclasses.dataclass(frozen=True)
class HttpResponse:
    """What a client callback receives."""

    status: int
    body: Dict[str, Any]
    requested_at: float
    responded_at: float

    @property
    def round_trip(self) -> float:
        """Request-to-response wall time (s)."""
        return self.responded_at - self.requested_at

    @property
    def ok(self) -> bool:
        """Whether the status is 2xx."""
        return 200 <= self.status < 300


class HttpServer:
    """A single-worker HTTP server bound to a unit."""

    def __init__(self, sim: Simulator, rng: np.random.Generator,
                 name: str, config: Optional[HttpConfig] = None):
        self.sim = sim
        self.rng = rng
        self.name = name
        self.config = config or HttpConfig()
        self._routes: Dict[str, Handler] = {}
        self._queue: Deque[Tuple[str, Dict[str, Any],
                                 Callable[[int, Dict[str, Any]], None],
                                 float]] = deque()
        self._busy = False
        self.requests_served = 0
        #: Fault-injection seam: an offline server (crashed process /
        #: powered-down board) silently drops requests; clients only
        #: survive through their timeouts.
        self.online = True
        self.requests_dropped = 0

    def route(self, path: str, handler: Handler) -> None:
        """Register *handler* for POSTs to *path*."""
        self._routes[path] = handler

    def submit(self, path: str, body: Dict[str, Any],
               respond: Callable[[int, Dict[str, Any]], None]) -> None:
        """Accept a request (already past the network leg)."""
        if not self.online:
            self.requests_dropped += 1
            obs = self.sim.obs
            if obs is not None:
                obs.count("http.requests_dropped", device=self.name)
            return
        self._queue.append((path, body, respond, self.sim.now))
        if not self._busy:
            self._serve_next()

    def _serve_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        path, body, respond, accepted_at = self._queue.popleft()
        service = max(0.0, float(self.rng.normal(
            self.config.service_mean, self.config.service_std)))
        self.sim.schedule(service,
                          lambda: self._finish(path, body, respond,
                                               accepted_at))

    def _finish(self, path: str, body: Dict[str, Any],
                respond: Callable[[int, Dict[str, Any]], None],
                accepted_at: float) -> None:
        handler = self._routes.get(path)
        if handler is None:
            status, response = 404, {"error": f"no route {path}"}
        else:
            try:
                status, response = handler(body)
            except Exception as err:  # noqa: BLE001 - server error path
                status, response = 500, {"error": str(err)}
        self.requests_served += 1
        obs = self.sim.obs
        if obs is not None:
            obs.count("http.requests_served", device=self.name,
                      status=status)
            obs.record_span("http.request", accepted_at, self.sim.now,
                            device=self.name)
            obs.observe("http.queue_service_ms",
                        (self.sim.now - accepted_at) * 1000.0)
        respond(status, response)
        self._serve_next()


class HttpClient:
    """Issues requests against :class:`HttpServer` instances."""

    def __init__(self, sim: Simulator, rng: np.random.Generator,
                 name: str = "client"):
        self.sim = sim
        self.rng = rng
        self.name = name
        self.requests_sent = 0

    def _latency(self, config: HttpConfig) -> float:
        return max(0.0, float(self.rng.normal(
            config.latency_mean, config.latency_std)))

    #: Status used for client-side timeouts (no response arrived).
    TIMEOUT_STATUS = 0

    def post(self, server: HttpServer, path: str,
             body: Optional[Dict[str, Any]] = None,
             callback: Optional[Callable[[HttpResponse], None]] = None,
             timeout: Optional[float] = None,
             ) -> Event:
        """POST *body* to *path* on *server*.

        Returns an :class:`Event` that succeeds with the
        :class:`HttpResponse`; a callback may be attached directly.
        With *timeout* set, a lost request/response resolves after
        *timeout* seconds with ``status == TIMEOUT_STATUS`` instead of
        hanging forever.
        """
        body = body or {}
        done = self.sim.event()
        requested_at = self.sim.now
        self.requests_sent += 1

        def finish(status: int, response_body: Dict[str, Any]) -> None:
            if done.triggered:
                return  # timeout already fired (or duplicate)
            done.succeed(HttpResponse(
                status=status,
                body=response_body,
                requested_at=requested_at,
                responded_at=self.sim.now,
            ))

        def respond(status: int, response_body: Dict[str, Any]) -> None:
            if self._dropped(server):
                return  # response lost in transit
            self.sim.schedule(self._latency(server.config),
                              lambda: finish(status, response_body))

        if self._dropped(server):
            pass  # request lost in transit: only the timeout can fire
        else:
            self.sim.schedule(
                self._latency(server.config),
                lambda: server.submit(path, body, respond))
        if timeout is not None:
            self.sim.schedule(
                timeout, lambda: finish(self.TIMEOUT_STATUS,
                                        {"error": "timeout"}))
        if callback is not None:
            done.add_callback(lambda ev: callback(ev.value))
        return done

    def _dropped(self, server: HttpServer) -> bool:
        probability = server.config.drop_probability
        return probability > 0 and self.rng.random() < probability
