"""OpenC2X-style OBU/RSU units with an HTTP API façade.

OpenC2X exposes its facilities to applications through an HTTP web
interface; the paper's integration is exactly two endpoints:

* the edge node POSTs to ``/trigger_denm`` on the RSU to disseminate
  a DENM when a hazard is detected;
* a Python script on the vehicle's Jetson polls ``/request_denm`` on
  the OBU; a non-empty response means a DENM arrived and power to the
  wheels is cut.

:mod:`repro.openc2x.http` models the HTTP hop (LAN latency + service
time), and :mod:`repro.openc2x.unit` assembles
:class:`~repro.facilities.station.ItsStation` + HTTP server into
:class:`OnBoardUnit` / :class:`RoadSideUnit`.
"""

from repro.openc2x.http import HttpClient, HttpConfig, HttpResponse, HttpServer
from repro.openc2x.unit import (
    OnBoardUnit,
    OpenC2XUnit,
    RoadSideUnit,
    StackConfig,
)

__all__ = [
    "HttpClient",
    "HttpConfig",
    "HttpResponse",
    "HttpServer",
    "OnBoardUnit",
    "OpenC2XUnit",
    "RoadSideUnit",
    "StackConfig",
]
