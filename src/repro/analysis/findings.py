"""The finding record every rule emits.

A :class:`Finding` pins a rule violation to a file and line.  Its
:meth:`fingerprint` deliberately excludes the line *number* (only the
rule, the path and the offending source line's text are hashed) so a
baseline entry survives unrelated edits that shift the file -- the
same trade-off ruff's and mypy's baselines make.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any, Dict


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    column: int
    message: str
    #: The stripped source text of the offending line (fingerprint
    #: input; keeps baselines stable across line-number drift).
    snippet: str = ""

    def sort_key(self) -> Any:
        """Deterministic report order: path, line, column, rule."""
        return (self.path, self.line, self.column, self.rule)

    def fingerprint(self) -> str:
        """Line-number-insensitive identity used by baselines."""
        payload = f"{self.rule}|{self.path}|{self.snippet}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-serialisable form (sorted by key name)."""
        return {
            "column": self.column,
            "fingerprint": self.fingerprint(),
            "line": self.line,
            "message": self.message,
            "path": self.path,
            "rule": self.rule,
            "snippet": self.snippet,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Finding":  # detlint: ignore[FPR002] -- 'fingerprint' is derived (sha256 of rule|path|snippet) and recomputed on demand; reading it back would let a stale digest shadow the content it no longer matches
        """Rebuild a finding serialised by :meth:`to_dict`."""
        return cls(
            rule=str(data["rule"]),
            path=str(data["path"]),
            line=int(data["line"]),
            column=int(data["column"]),
            message=str(data["message"]),
            snippet=str(data["snippet"]),
        )
