"""The determinism rule catalogue (DET001..DET008).

Every rule is a static, AST-level check for a code pattern that can
break the repo's central invariant: a run is a pure function of its
scenario and seed, so serial == parallel == instrumented, bit for
bit.  The rules are deliberately *pattern* checks, not whole-program
dataflow: they are precise enough to run clean over ``src/`` and
loose enough that a genuine exception is a one-line suppression with
a written reason (see ``repro.analysis.suppressions``).

The catalogue (rationale per rule in ARCHITECTURE.md §10):

========  ==========================================================
DET001    no module-level or unseeded ``random``/``numpy.random``
          outside the ``repro.sim.randomness`` substream factory
DET002    no wall-clock reads (``time.time``, ``time.monotonic``,
          ``datetime.now``/``today``) outside ``repro.obs.profile``
DET003    no iteration over sets anywhere, nor over mapping views
          inside canonical exporters/mergers, without ``sorted(...)``
DET004    no float ``+=`` accumulators in exactly-mergeable state
          (classes with a ``merge``); use ``Fraction``/int counts
DET005    every ``obs``/fault seam use must be None-guarded
          (the no-op-when-unset pattern)
DET006    every class with ``to_dict`` pairs a ``from_dict``
DET007    no locale-/environment-dependent formatting
          (``os.environ``, ``locale``, ``strftime``) in ``src/``
DET008    process-pool boundaries: only module-level callables are
          submitted, and boundary dataclasses are ``frozen=True``
========  ==========================================================
"""

from __future__ import annotations

import ast
import dataclasses
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding


@dataclasses.dataclass
class ModuleContext:
    """One parsed source file, as seen by every rule."""

    path: str
    module: str
    source: str
    tree: ast.Module
    lines: List[str]
    #: local name -> dotted origin (``np`` -> ``numpy``,
    #: ``perf_counter`` -> ``time.perf_counter``).
    imports: Dict[str, str]


def build_context(path: str, module: str, source: str,
                  tree: ast.Module) -> ModuleContext:
    """Assemble the :class:`ModuleContext` for one file."""
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                origin = alias.asname and alias.name or \
                    alias.name.split(".")[0]
                imports[local] = origin
        elif isinstance(node, ast.ImportFrom) and node.level == 0 \
                and node.module:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{node.module}.{alias.name}"
    return ModuleContext(path=path, module=module, source=source,
                         tree=tree, lines=source.splitlines(),
                         imports=imports)


def resolve_target(ctx: ModuleContext,
                   node: ast.expr) -> Optional[str]:
    """The dotted import origin of an expression, if resolvable.

    ``np.random.default_rng`` resolves to
    ``numpy.random.default_rng`` when ``np`` was imported as numpy;
    expressions rooted in anything but an imported name resolve to
    None.
    """
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    origin = ctx.imports.get(current.id)
    if origin is None:
        return None
    parts.append(origin)
    return ".".join(reversed(parts))


def _snippet(ctx: ModuleContext, node: ast.AST) -> str:
    lineno = getattr(node, "lineno", 0)
    if 0 < lineno <= len(ctx.lines):
        return ctx.lines[lineno - 1].strip()
    return ""


class Rule:
    """Base class: one determinism invariant, machine-checked."""

    rule_id: str = "DET999"
    title: str = ""
    rationale: str = ""
    #: Module prefixes exempt from this rule (the sanctioned homes of
    #: the pattern, e.g. the substream factory for RNG calls).
    allowed_modules: Tuple[str, ...] = ()

    def exempt(self, ctx: ModuleContext) -> bool:
        """Whether *ctx*'s module is allowlisted for this rule."""
        return any(ctx.module == prefix
                   or ctx.module.startswith(prefix + ".")
                   for prefix in self.allowed_modules)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield every violation in *ctx*."""
        raise NotImplementedError  # pragma: no cover - interface

    def finding(self, ctx: ModuleContext, node: ast.AST,
                message: str) -> Finding:
        """A :class:`Finding` anchored at *node*."""
        return Finding(
            rule=self.rule_id, path=ctx.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            message=message, snippet=_snippet(ctx, node))


def _enclosing_functions(tree: ast.Module
                         ) -> Dict[ast.AST, Optional[ast.AST]]:
    """node -> nearest enclosing function def (or None)."""
    out: Dict[ast.AST, Optional[ast.AST]] = {}

    def visit(node: ast.AST, current: Optional[ast.AST]) -> None:
        for child in ast.iter_child_nodes(node):
            out[child] = current
            if isinstance(child, (ast.FunctionDef,
                                  ast.AsyncFunctionDef)):
                visit(child, child)
            else:
                visit(child, current)

    visit(tree, None)
    return out


# ---------------------------------------------------------------------------
# DET001 -- unseeded / module-level randomness
# ---------------------------------------------------------------------------


class UnseededRandomRule(Rule):
    """All randomness must come from named, seeded substreams."""

    rule_id = "DET001"
    title = "unseeded or module-level randomness"
    rationale = (
        "Global random state is shared across runs and workers; a "
        "single draw outside the seeded substream registry makes "
        "serial and parallel campaigns diverge.  Draw from a "
        "repro.sim.randomness substream instead.")
    allowed_modules = ("repro.sim.randomness",)

    #: numpy.random attributes that are constructors of *seedable*
    #: state, legal when given an explicit seed argument.
    _SEEDED_CONSTRUCTORS = {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.SeedSequence",
        "numpy.random.PCG64",
        "numpy.random.Philox",
        "numpy.random.MT19937",
    }

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        enclosing = _enclosing_functions(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_target(ctx, node.func)
            if target is None:
                continue
            at_module_level = enclosing.get(node) is None
            if target.startswith("random."):
                if target == "random.Random" and \
                        (node.args or node.keywords):
                    if at_module_level:
                        yield self.finding(
                            ctx, node,
                            "module-level random.Random instance is "
                            "shared state across runs; create it "
                            "per run from the seed")
                    continue
                yield self.finding(
                    ctx, node,
                    f"call to {target} uses the global (unseeded) "
                    f"random state; draw from a "
                    f"repro.sim.randomness substream")
            elif target.startswith("numpy.random."):
                if target in self._SEEDED_CONSTRUCTORS:
                    if not node.args and not node.keywords:
                        yield self.finding(
                            ctx, node,
                            f"{target}() without a seed is "
                            f"entropy-seeded and unreproducible; "
                            f"pass an explicit seed")
                    elif at_module_level:
                        yield self.finding(
                            ctx, node,
                            f"module-level {target}(...) is RNG "
                            f"state shared across runs; create "
                            f"generators per run from the scenario "
                            f"seed")
                    continue
                yield self.finding(
                    ctx, node,
                    f"call to {target} uses numpy's global random "
                    f"state; use a Generator from a "
                    f"repro.sim.randomness substream")


# ---------------------------------------------------------------------------
# DET002 -- wall-clock reads
# ---------------------------------------------------------------------------


class WallClockRule(Rule):
    """Simulated code must read ``sim.now``, never the host clock."""

    rule_id = "DET002"
    title = "wall-clock read outside the profiling allowlist"
    rationale = (
        "Wall time differs between hosts, runs and workers; one "
        "time.time() in a simulated path breaks bit-identity.  "
        "Simulated code reads sim.now; wall-clock profiling goes "
        "through repro.obs.profile (perf_counter durations that "
        "never feed measurements).")
    allowed_modules = ("repro.obs.profile",)

    _BANNED = {
        "time.time": "read sim.now instead",
        "time.time_ns": "read sim.now instead",
        "time.monotonic": "read sim.now instead",
        "time.monotonic_ns": "read sim.now instead",
        "time.localtime": "wall-clock and TZ-dependent",
        "time.gmtime": "wall-clock dependent",
        "time.ctime": "wall-clock and locale-dependent",
        "datetime.datetime.now": "read sim.now instead",
        "datetime.datetime.utcnow": "read sim.now instead",
        "datetime.datetime.today": "wall-clock dependent",
        "datetime.date.today": "wall-clock dependent",
    }

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_target(ctx, node.func)
            if target is None:
                continue
            why = self._BANNED.get(target)
            if why is not None:
                yield self.finding(
                    ctx, node,
                    f"wall-clock call {target}() in simulated code "
                    f"({why}); only repro.obs.profile may touch the "
                    f"host clock")


# ---------------------------------------------------------------------------
# DET003 -- unsorted iteration feeding canonical output
# ---------------------------------------------------------------------------


#: Function names whose output is canonical (serialisation, hashing,
#: merging, aggregation): mapping-view iteration order matters there.
_CANONICAL_NAME_RE = re.compile(
    r"(^to_|_to_|fingerprint|canonical|merge|aggregat|render|export"
    r"|prometheus|jsonl|json\b|_json|csv|hash)")


class UnsortedIterationRule(Rule):
    """Iteration feeding canonical output must be ``sorted(...)``."""

    rule_id = "DET003"
    title = "unsorted set/mapping-view iteration in canonical paths"
    rationale = (
        "Set iteration order depends on PYTHONHASHSEED for str "
        "keys; mapping views iterate in insertion order, which is "
        "an accident of call history.  Anything feeding "
        "serialisation, hashing or campaign aggregation must "
        "iterate in sorted order to be byte-stable.")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        enclosing = _enclosing_functions(ctx.tree)
        for node in ast.walk(ctx.tree):
            iters: List[ast.expr] = []
            if isinstance(node, ast.For):
                iters = [node.iter]
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                iters = [gen.iter for gen in node.generators]
            for it in iters:
                yield from self._check_iterable(ctx, node, it,
                                                enclosing)

    def _check_iterable(self, ctx: ModuleContext, node: ast.AST,
                        it: ast.expr,
                        enclosing: Dict[ast.AST, Optional[ast.AST]]
                        ) -> Iterator[Finding]:
        if self._is_order_blessed(it):
            return
        if self._is_set_expr(it):
            yield self.finding(
                ctx, it,
                "iteration over a set is hash-order dependent; "
                "wrap the iterable in sorted(...)")
            return
        view = self._mapping_view(it)
        if view is not None:
            function = enclosing.get(node)
            name = getattr(function, "name", "")
            if function is not None and \
                    _CANONICAL_NAME_RE.search(name):
                yield self.finding(
                    ctx, it,
                    f"iteration over .{view}() inside canonical "
                    f"function {name}() relies on insertion order; "
                    f"wrap it in sorted(...) so the output is "
                    f"byte-stable")

    @staticmethod
    def _is_set_expr(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("set", "frozenset"))

    @staticmethod
    def _mapping_view(node: ast.expr) -> Optional[str]:
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("keys", "values", "items")
                and not node.args and not node.keywords):
            return node.func.attr
        return None

    @staticmethod
    def _is_order_blessed(node: ast.expr) -> bool:
        """Whether the iterable is already explicitly ordered."""
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call) and \
                    isinstance(sub.func, ast.Name) and \
                    sub.func.id in ("sorted", "reversed"):
                return True
            if isinstance(sub, ast.Name) and "sorted" in sub.id:
                return True
            if isinstance(sub, ast.Attribute) and \
                    "sorted" in sub.attr:
                return True
        return False


# ---------------------------------------------------------------------------
# DET004 -- float accumulators in exactly-mergeable state
# ---------------------------------------------------------------------------


class FloatAccumulatorRule(Rule):
    """Mergeable state must fold exactly (Fraction / int counts)."""

    rule_id = "DET004"
    title = "float += accumulator in exactly-mergeable state"
    rationale = (
        "Float addition is not associative, so a float accumulator "
        "that a merge() folds makes the result depend on merge "
        "order -- exactly what campaign aggregation must not do.  "
        "Keep counts as int and sums as fractions.Fraction (every "
        "float is an exact rational), converting to float only at "
        "the export edge.")
    allowed_modules = ("repro.obs.profile",)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _check_class(self, ctx: ModuleContext,
                     cls: ast.ClassDef) -> Iterator[Finding]:
        merge = next((item for item in cls.body
                      if isinstance(item, ast.FunctionDef)
                      and item.name == "merge"), None)
        if merge is None:
            return
        float_attrs = self._float_initialised_attrs(cls)
        for node in ast.walk(merge):
            if not (isinstance(node, ast.AugAssign)
                    and isinstance(node.op, ast.Add)):
                continue
            target = node.target
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                continue
            if target.attr in float_attrs:
                yield self.finding(
                    ctx, node,
                    f"merge() accumulates float attribute "
                    f"{cls.name}.{target.attr} with +=; float sums "
                    f"are merge-order dependent -- store a "
                    f"fractions.Fraction (or integer count) and "
                    f"convert to float at export")

    @staticmethod
    def _float_initialised_attrs(cls: ast.ClassDef) -> Set[str]:
        """Attributes whose initial value is a float literal."""
        attrs: Set[str] = set()
        for item in cls.body:
            # Dataclass-style: ``total: float = 0.0``.
            if isinstance(item, ast.AnnAssign) and \
                    isinstance(item.target, ast.Name):
                annotation = item.annotation
                if isinstance(annotation, ast.Name) and \
                        annotation.id == "float":
                    attrs.add(item.target.id)
            # __init__-style: ``self.total = 0.0``.
            if isinstance(item, ast.FunctionDef) and \
                    item.name == "__init__":
                for node in ast.walk(item):
                    if not isinstance(node, ast.Assign):
                        continue
                    if not (isinstance(node.value, ast.Constant)
                            and isinstance(node.value.value, float)):
                        continue
                    for tgt in node.targets:
                        if isinstance(tgt, ast.Attribute) and \
                                isinstance(tgt.value, ast.Name) and \
                                tgt.value.id == "self":
                            attrs.add(tgt.attr)
        return attrs


# ---------------------------------------------------------------------------
# DET005 -- unguarded seam use
# ---------------------------------------------------------------------------


class SeamGuardRule(Rule):
    """Instrumentation/fault seams follow no-op-when-unset."""

    rule_id = "DET005"
    title = "seam used without a None guard"
    rationale = (
        "The obs, fault and tie-audit seams default to None so an "
        "unobserved, fault-free, unaudited run is bit-identical to "
        "pre-seam builds.  Every use site must bind-and-guard (obs "
        "= sim.obs; if obs is not None: ...); an unguarded use "
        "either crashes or silently forces the seam always-on.")

    #: Attribute names that are seams (None when unset, by contract).
    SEAM_ATTRS = ("obs", "impairment", "drop_filter", "tie_audit")

    #: The modules that *implement* the seams (the obs collectors
    #: themselves, the fault installer) rather than consume them.
    allowed_modules = ("repro.obs", "repro.faults.injector")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef,
                                 ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node)

    def _check_function(self, ctx: ModuleContext,
                        function: ast.AST) -> Iterator[Finding]:
        guards: Set[str] = set()
        aliases: Set[str] = set()
        body = getattr(function, "body", [])
        # Pass 1: collect None-comparisons and seam-bound locals,
        # ignoring nested defs (they get their own visit).
        for node in self._walk_shallow(body):
            if isinstance(node, ast.Compare) and \
                    len(node.ops) == 1 and \
                    isinstance(node.ops[0], (ast.Is, ast.IsNot)) and \
                    isinstance(node.comparators[0], ast.Constant) and \
                    node.comparators[0].value is None:
                guards.add(ast.dump(node.left))
            if isinstance(node, ast.Assign) and \
                    isinstance(node.value, ast.Attribute) and \
                    node.value.attr in self.SEAM_ATTRS:
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        aliases.add(tgt.id)
        # Pass 2: find seam uses and demand a guard in scope.
        for node in self._walk_shallow(body):
            seam_expr, seam_name = self._seam_use(node, aliases)
            if seam_expr is None:
                continue
            if ast.dump(seam_expr) in guards:
                continue
            yield self.finding(
                ctx, node,
                f"use of seam '{seam_name}' without an 'is None' "
                f"guard in this function; bind it to a local and "
                f"follow the no-op-when-unset pattern "
                f"(x = ...{seam_name}; if x is not None: ...)")

    @staticmethod
    def _walk_shallow(body: List[ast.stmt]) -> Iterator[ast.AST]:
        """Walk statements without descending into nested defs."""
        stack: List[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            yield node
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef,
                                      ast.Lambda, ast.ClassDef)):
                    continue
                stack.append(child)

    def _seam_use(self, node: ast.AST, aliases: Set[str]
                  ) -> Tuple[Optional[ast.expr], str]:
        """(guard-expression, seam-name) when *node* uses a seam."""
        # Chained attribute access: <expr>.obs.<anything>.
        if isinstance(node, ast.Attribute) and \
                isinstance(node.value, ast.Attribute) and \
                node.value.attr in self.SEAM_ATTRS and \
                isinstance(node.value.ctx, ast.Load):
            return node.value, node.value.attr
        if isinstance(node, ast.Call):
            func = node.func
            # Calling the seam itself: <expr>.drop_filter(frame).
            if isinstance(func, ast.Attribute) and \
                    func.attr in self.SEAM_ATTRS:
                return func, func.attr
            # Attribute on an alias: obs.record_span(...) is covered
            # by the Attribute case below via the alias name.
        if isinstance(node, ast.Attribute) and \
                isinstance(node.value, ast.Name) and \
                node.value.id in aliases and \
                isinstance(node.value.ctx, ast.Load):
            return node.value, node.value.id
        return None, ""


# ---------------------------------------------------------------------------
# DET006 -- to_dict / from_dict pairing
# ---------------------------------------------------------------------------


class SerialisationPairRule(Rule):
    """Serialisable types must round-trip."""

    rule_id = "DET006"
    title = "to_dict without a paired from_dict"
    rationale = (
        "The run cache, the fault matrix and the golden traces all "
        "round-trip through to_dict; a type that can only "
        "serialise rots into a one-way format nobody can validate. "
        "Every to_dict pairs a from_dict classmethod with "
        "canonical key handling (unknown keys rejected or "
        "defaulted deliberately).")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {item.name for item in node.body
                       if isinstance(item, ast.FunctionDef)}
            if "to_dict" in methods and "from_dict" not in methods:
                to_dict = next(item for item in node.body
                               if isinstance(item, ast.FunctionDef)
                               and item.name == "to_dict")
                yield self.finding(
                    ctx, to_dict,
                    f"class {node.name} defines to_dict but no "
                    f"from_dict; serialisable state must "
                    f"round-trip (or the export-only intent must "
                    f"be a written suppression)")


# ---------------------------------------------------------------------------
# DET007 -- locale/env-dependent formatting
# ---------------------------------------------------------------------------


class EnvFormattingRule(Rule):
    """Canonical output must not depend on the host environment."""

    rule_id = "DET007"
    title = "locale- or environment-dependent formatting"
    rationale = (
        "os.environ, locale and strftime make output depend on the "
        "host's environment variables, locale database or "
        "timezone; canonical exporters (JSON, JSONL, Prometheus "
        "text) must produce identical bytes on every machine.")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                module = ""
                if isinstance(node, ast.Import):
                    names = [alias.name for alias in node.names]
                else:
                    module = node.module or ""
                    names = [module]
                if "locale" in names or module == "locale":
                    yield self.finding(
                        ctx, node,
                        "import of locale: locale-dependent "
                        "formatting has no place in deterministic "
                        "export paths")
                continue
            if isinstance(node, ast.Attribute) and \
                    isinstance(node.ctx, ast.Load):
                target = resolve_target(ctx, node)
                if target in ("os.environ", "os.environb"):
                    yield self.finding(
                        ctx, node,
                        f"read of {target}: environment variables "
                        f"must not influence simulated behaviour "
                        f"or canonical output")
            if isinstance(node, ast.Call):
                target = resolve_target(ctx, node.func)
                if target == "os.getenv":
                    yield self.finding(
                        ctx, node,
                        "os.getenv: environment variables must not "
                        "influence simulated behaviour or "
                        "canonical output")
                if isinstance(node.func, ast.Attribute) and \
                        node.func.attr in ("strftime", "strptime"):
                    yield self.finding(
                        ctx, node,
                        f"{node.func.attr}() is locale- and "
                        f"timezone-dependent; canonical exporters "
                        f"format numbers and ISO strings "
                        f"explicitly")


# ---------------------------------------------------------------------------
# DET008 -- process-pool boundary hygiene
# ---------------------------------------------------------------------------


class PoolBoundaryRule(Rule):
    """What crosses the pool must pickle identically everywhere."""

    rule_id = "DET008"
    title = "unpicklable or unfrozen objects at the pool boundary"
    rationale = (
        "Work submitted to a ProcessPoolExecutor is pickled: "
        "lambdas and nested functions fail outright, and mutable "
        "scenario/plan objects invite divergence between the "
        "parent's copy and the workers' copies.  Submit "
        "module-level callables; keep boundary dataclasses "
        "frozen=True.")

    #: Modules whose dataclasses cross the pool boundary by design.
    BOUNDARY_MODULES = ("repro.core.scenario", "repro.faults.plan")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        yield from self._check_submissions(ctx)
        if any(ctx.module == prefix
               or ctx.module.startswith(prefix + ".")
               for prefix in self.BOUNDARY_MODULES):
            yield from self._check_frozen(ctx)

    def _check_submissions(self, ctx: ModuleContext
                           ) -> Iterator[Finding]:
        enclosing = _enclosing_functions(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("submit", "map")
                    and node.args):
                continue
            callee = node.args[0]
            if isinstance(callee, ast.Lambda):
                yield self.finding(
                    ctx, callee,
                    "lambda submitted to a process pool cannot be "
                    "pickled; use a module-level function")
                continue
            if isinstance(callee, ast.Name):
                function = enclosing.get(node)
                if function is not None and \
                        self._is_local_def(function, callee.id):
                    yield self.finding(
                        ctx, callee,
                        f"locally-defined callable "
                        f"{callee.id!r} submitted to a process "
                        f"pool cannot be pickled; hoist it to "
                        f"module level")

    @staticmethod
    def _is_local_def(function: ast.AST, name: str) -> bool:
        for node in ast.walk(function):
            if isinstance(node, ast.FunctionDef) and \
                    node is not function and node.name == name:
                return True
            if isinstance(node, ast.Assign) and \
                    isinstance(node.value, ast.Lambda):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name) and tgt.id == name:
                        return True
        return False

    def _check_frozen(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for decorator in node.decorator_list:
                if not self._is_dataclass_decorator(decorator):
                    continue
                if not self._is_frozen(decorator):
                    yield self.finding(
                        ctx, node,
                        f"dataclass {node.name} crosses the "
                        f"process-pool boundary but is not "
                        f"frozen=True; mutable boundary state "
                        f"invites parent/worker divergence")

    @staticmethod
    def _is_dataclass_decorator(node: ast.expr) -> bool:
        ref = node.func if isinstance(node, ast.Call) else node
        if isinstance(ref, ast.Name):
            return ref.id == "dataclass"
        if isinstance(ref, ast.Attribute):
            return ref.attr == "dataclass"
        return False

    @staticmethod
    def _is_frozen(node: ast.expr) -> bool:
        if not isinstance(node, ast.Call):
            return False
        for keyword in node.keywords:
            if keyword.arg == "frozen" and \
                    isinstance(keyword.value, ast.Constant):
                return bool(keyword.value.value)
        return False


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


_ALL_RULES: Tuple[Rule, ...] = (
    UnseededRandomRule(),
    WallClockRule(),
    UnsortedIterationRule(),
    FloatAccumulatorRule(),
    SeamGuardRule(),
    SerialisationPairRule(),
    EnvFormattingRule(),
    PoolBoundaryRule(),
)


def all_rules() -> Tuple[Rule, ...]:
    """Every registered rule, in rule-id order."""
    return tuple(sorted(_ALL_RULES, key=lambda r: r.rule_id))


def rule_ids() -> Tuple[str, ...]:
    """The registered rule ids, sorted."""
    return tuple(rule.rule_id for rule in all_rules())


def get_rule(rule_id: str) -> Rule:
    """The rule registered under *rule_id* (raises KeyError)."""
    for rule in _ALL_RULES:
        if rule.rule_id == rule_id:
            return rule
    raise KeyError(rule_id)
