"""Baseline files: grandfather existing findings, gate new ones.

A baseline is a JSON inventory of finding fingerprints (rule + path +
offending line text, no line numbers) recorded at the moment the
gate was introduced.  ``detlint --baseline FILE`` subtracts the
inventory from the current findings, so CI fails only on *new*
violations while the grandfathered ones are burned down.  The merged
tree of this repository lints clean, so its baseline is empty -- the
machinery exists for downstream forks and for ratcheting future
rules in.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.findings import Finding

#: Bump when the baseline serialisation changes; mismatched files are
#: rejected loudly rather than silently masking findings.
BASELINE_FORMAT = 1


class Baseline:
    """A set of grandfathered finding fingerprints."""

    def __init__(self,
                 entries: Optional[Dict[str, Dict[str, Any]]] = None
                 ) -> None:
        #: fingerprint -> context (rule/path/snippet, for humans).
        self.entries: Dict[str, Dict[str, Any]] = dict(entries or {})

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, finding: Finding) -> bool:
        return finding.fingerprint() in self.entries

    @classmethod
    def from_findings(cls, findings: List[Finding]) -> "Baseline":
        """A baseline covering exactly *findings*."""
        entries = {
            f.fingerprint(): {"path": f.path, "rule": f.rule,
                              "snippet": f.snippet}
            for f in sorted(findings, key=Finding.sort_key)
        }
        return cls(entries)

    def filter(self, findings: List[Finding]
               ) -> Tuple[List[Finding], List[Finding]]:
        """Split *findings* into (new, grandfathered)."""
        new: List[Finding] = []
        old: List[Finding] = []
        for finding in findings:
            (old if finding in self else new).append(finding)
        return new, old

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-serialisable form (sorted fingerprints)."""
        return {
            "format": BASELINE_FORMAT,
            "entries": {key: self.entries[key]
                        for key in sorted(self.entries)},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Baseline":
        """Rebuild a baseline serialised by :meth:`to_dict`."""
        if data.get("format") != BASELINE_FORMAT:
            raise ValueError(
                f"unsupported baseline format "
                f"{data.get('format')!r}; expected {BASELINE_FORMAT}")
        return cls(dict(data["entries"]))

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Read a baseline file (:meth:`save`'s output)."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def save(self, path: str) -> None:
        """Write the baseline atomically (temp file + replace)."""
        directory = os.path.dirname(os.path.abspath(path))
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(self.to_dict(), handle, indent=2,
                          sort_keys=True)
                handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
