"""The detlint command line (shared by two entry points).

``repro-testbed lint`` and the standalone ``tools/detlint`` script
both build their argument parser from :func:`add_arguments` and
execute through :func:`run`, so flags and behaviour can never drift
apart.

Exit codes: 0 clean, 1 findings, 2 usage errors (argparse *and*
unknown rule ids: a typo'd ``--select`` must read as a broken
invocation in CI, never as a clean lint).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.baseline import Baseline
from repro.analysis.engine import UnknownRuleError, lint_paths
from repro.analysis.registry import family_summary
from repro.analysis.reporters import (
    render_json,
    render_rules_text,
    render_sarif,
    render_text,
)


def _rule_list(text: str) -> List[str]:
    return [chunk.strip() for chunk in text.split(",")
            if chunk.strip()]


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the detlint flags on *parser*."""
    parser.add_argument("paths", nargs="*", default=["src/"],
                        metavar="PATH",
                        help="files or directories to lint "
                             "(default: src/)")
    parser.add_argument("--format",
                        choices=("text", "json", "sarif"),
                        default="text",
                        help="report format (default: text)")
    parser.add_argument("--output", default=None, metavar="FILE",
                        help="also write the JSON report to FILE "
                             "(the CI artifact path)")
    parser.add_argument("--sarif-output", default=None,
                        metavar="FILE",
                        help="also write the SARIF report to FILE "
                             "(the CI code-scanning upload)")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="subtract the grandfathered findings "
                             "recorded in FILE")
    parser.add_argument("--write-baseline", default=None,
                        metavar="FILE",
                        help="record the current findings as the "
                             "baseline FILE and exit 0")
    parser.add_argument("--select", type=_rule_list, default=None,
                        metavar="IDS",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--ignore", type=_rule_list, default=None,
                        metavar="IDS",
                        help="comma-separated rule ids to skip")
    parser.add_argument("--no-unused-suppressions",
                        action="store_true",
                        help="do not report suppressions that "
                             "silence nothing")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")


def run(args: argparse.Namespace) -> int:
    """Execute one lint invocation described by parsed *args*."""
    if args.list_rules:
        sys.stdout.write(render_rules_text())
        return 0
    baseline = None
    if args.baseline is not None:
        try:
            baseline = Baseline.load(args.baseline)
        except (OSError, ValueError) as error:
            raise SystemExit(
                f"detlint: error: cannot read baseline "
                f"{args.baseline!r}: {error}") from error
    try:
        result = lint_paths(
            args.paths,
            select=args.select,
            ignore=args.ignore,
            baseline=baseline,
            warn_suppressions=not args.no_unused_suppressions)
    except UnknownRuleError as error:
        print(f"detlint: error: {error}", file=sys.stderr)
        return 2
    except (OSError, ValueError) as error:
        raise SystemExit(f"detlint: error: {error}") from error
    if args.write_baseline is not None:
        Baseline.from_findings(result.findings).save(
            args.write_baseline)
        print(f"detlint: wrote baseline with "
              f"{len(result.findings)} entr"
              f"{'y' if len(result.findings) == 1 else 'ies'} to "
              f"{args.write_baseline}")
        return 0
    if args.format == "json":
        report = render_json(result)
    elif args.format == "sarif":
        report = render_sarif(result)
    else:
        report = render_text(result)
    sys.stdout.write(report)
    if args.output is not None:
        # The artifact is always the JSON form, whatever is printed.
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(render_json(result))
    if args.sarif_output is not None:
        with open(args.sarif_output, "w", encoding="utf-8") as handle:
            handle.write(render_sarif(result))
    return result.exit_code


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``tools/detlint``)."""
    parser = argparse.ArgumentParser(
        prog="detlint",
        description=f"AST determinism linter for the repro testbed "
                    f"({family_summary()}; see ARCHITECTURE.md "
                    f"§10-§11, §15-§16)")
    add_arguments(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - module execution
    sys.exit(main())
