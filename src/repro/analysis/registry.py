"""The single rule-family registry (DET / SCH / EFF / FPR).

Four rule families grew up in four modules; this registry is the one
place that lists them, so ``--list-rules``, the ``UnknownRuleError``
message, the suppression-grammar rule-id pattern, the SARIF ``rules``
block and CONTRIBUTING's triage tables all derive from the same
source.  Adding a fifth family is one entry in :data:`_FAMILIES` --
everything downstream picks it up.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence, Set, Tuple, Union

from repro.analysis.effect_rules import EffectRule, all_effect_rules
from repro.analysis.fingerprint_rules import (
    FingerprintRule,
    all_fingerprint_rules,
)
from repro.analysis.rules import Rule, all_rules
from repro.analysis.schedule_rules import (
    ProjectRule,
    all_project_rules,
)

#: Any registered rule object, per-file or project-wide.
AnyRule = Union[Rule, ProjectRule]


@dataclasses.dataclass(frozen=True)
class RuleFamily:
    """One rule family: its id prefix, scope and member rules."""

    #: Three-letter id prefix ("DET").
    prefix: str
    #: One-phrase subject for error messages and docs.
    subject: str
    #: How the family's rules run: "per-file" or "project".
    scope: str
    #: The member rules, sorted by rule id.
    rules: Tuple[AnyRule, ...]

    @property
    def span(self) -> str:
        """The id range ("DET001..DET008") for messages."""
        ids = self.rule_ids
        if len(ids) == 1:
            return ids[0]
        return f"{ids[0]}..{ids[-1]}"

    @property
    def rule_ids(self) -> Tuple[str, ...]:
        """The member rule ids, sorted."""
        return tuple(rule.rule_id for rule in self.rules)


def _family(prefix: str, subject: str, scope: str,
            rules: Sequence[AnyRule]) -> RuleFamily:
    ordered = tuple(sorted(rules, key=lambda rule: rule.rule_id))
    for rule in ordered:
        assert rule.rule_id.startswith(prefix), (prefix, rule.rule_id)
    return RuleFamily(prefix=prefix, subject=subject, scope=scope,
                      rules=ordered)


def rule_families() -> Tuple[RuleFamily, ...]:
    """Every registered family, in fixed DET/SCH/EFF/FPR order."""
    return (
        _family("DET", "per-file determinism", "per-file",
                all_rules()),
        _family("SCH", "schedule races", "project",
                all_project_rules()),
        _family("EFF", "effect discipline", "project",
                all_effect_rules()),
        _family("FPR", "fingerprint and serialization discipline",
                "project", all_fingerprint_rules()),
    )


#: The family prefixes, in registry order -- the suppression grammar
#: accepts exactly these.
FAMILY_PREFIXES: Tuple[str, ...] = tuple(
    family.prefix for family in rule_families())


def registered_rules() -> List[AnyRule]:
    """Every rule of every family, sorted by rule id."""
    out: List[AnyRule] = []
    for family in rule_families():
        out.extend(family.rules)
    return sorted(out, key=lambda rule: rule.rule_id)


def registered_project_rules() -> List[ProjectRule]:
    """Every project-scoped rule (SCH + EFF + FPR), sorted by id."""
    out: List[ProjectRule] = []
    for family in rule_families():
        if family.scope == "project":
            out.extend(family.rules)  # type: ignore[arg-type]
    return sorted(out, key=lambda rule: rule.rule_id)


def registered_rule_ids() -> Tuple[str, ...]:
    """Every registered rule id, sorted."""
    return tuple(rule.rule_id for rule in registered_rules())


def family_summary() -> str:
    """"DET001..DET008 (per-file determinism), ..." for messages."""
    return ", ".join(f"{family.span} ({family.subject})"
                     for family in rule_families())


def expand_selection(ids: Sequence[str]) -> Set[str]:
    """Expand family prefixes in a --select/--ignore id list.

    A bare family prefix ("FPR") selects every rule of that family;
    full ids pass through untouched (including unknown ones -- the
    engine reports those with the family summary).
    """
    by_prefix = {family.prefix: family.rule_ids
                 for family in rule_families()}
    out: Set[str] = set()
    for rule_id in ids:
        expanded = by_prefix.get(rule_id)
        if expanded is not None:
            out.update(expanded)
        else:
            out.add(rule_id)
    return out


__all__ = [
    "FAMILY_PREFIXES",
    "AnyRule",
    "EffectRule",
    "FingerprintRule",
    "RuleFamily",
    "expand_selection",
    "family_summary",
    "registered_project_rules",
    "registered_rule_ids",
    "registered_rules",
    "rule_families",
]
