"""Shared interprocedural layer for project-wide rules.

Per-file rules (``repro.analysis.rules``) see one
:class:`~repro.analysis.rules.ModuleContext` at a time; anything that
depends on *who calls whom* -- reachability, taint that crosses
function boundaries, pairs of schedule sites owned by different
components -- needs a project-wide view.  This package provides it in
three deterministic layers, each built once per lint invocation:

``symbols``
    A project symbol table: every function, class (with methods and
    literal class-level constants) and module-level numeric constant,
    keyed by dotted qualified name.

``callgraph``
    A call graph over those symbols.  Direct calls resolve through
    the import table; method calls resolve through ``self``, through
    annotated parameters/attributes and through constructor
    assignments (``self.x = ClassName(...)``); callables passed as
    arguments (scheduler callbacks, ``publish=`` hooks) become
    reference edges so reachability follows callbacks.

``dataflow``
    A small forward dataflow over delay expressions: a
    ``schedule(delay, cb)`` argument folds to a literal, a named
    constant, a tainted value (wall clock / unseeded randomness,
    found transitively through the call graph) or unknown.

Everything is pure AST analysis -- no imports of the linted code --
and every container iterates in sorted order, so the same tree always
produces the same findings bytes (the repo-wide determinism bar the
linter itself is held to).
"""

from repro.analysis.interproc.callgraph import CallGraph, build_call_graph
from repro.analysis.interproc.dataflow import (
    DelayValue,
    evaluate_delay,
    tainted_functions,
)
from repro.analysis.interproc.project import ProjectContext, build_project
from repro.analysis.interproc.sites import ScheduleSite, collect_schedule_sites
from repro.analysis.interproc.symbols import (
    ClassSymbol,
    FunctionSymbol,
    SymbolTable,
    build_symbol_table,
)

__all__ = [
    "CallGraph",
    "ClassSymbol",
    "DelayValue",
    "FunctionSymbol",
    "ProjectContext",
    "ScheduleSite",
    "SymbolTable",
    "build_call_graph",
    "build_project",
    "build_symbol_table",
    "collect_schedule_sites",
    "evaluate_delay",
    "tainted_functions",
]
