"""Call graph over the project symbol table.

Edges are resolved statically, without importing the analysed code:

* direct calls (``helper(...)``) through the module's import table
  and its own definitions;
* ``self.method(...)`` through the enclosing class and its bases;
* ``obj.method(...)`` through the inferred type of ``obj`` --
  parameter annotations, ``self.attr`` constructor assignments
  (``self.edge = EdgeNode(...)``) and annotated attributes;
* bare callables passed as arguments (``schedule(dt, self._tick)``,
  ``publish=self._on_scan``) become *reference* edges: the callee is
  not called at that statement, but anything reachable can invoke it
  later, which is exactly what reachability must follow in an
  event-driven codebase.

Resolution is deliberately conservative: an unresolvable receiver
contributes no edge (never a guessed one), except for the
seam-naming convention ``sim`` / ``self.sim`` -> the DES kernel's
``Simulator``, which the whole testbed codebase follows.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.interproc.symbols import (
    ClassSymbol,
    FunctionSymbol,
    SymbolTable,
)
from repro.analysis.rules import ModuleContext

#: The receiver-name convention for the DES kernel seam: a local or
#: attribute called ``sim`` is the Simulator in this codebase.
SIMULATOR_QNAME = "repro.sim.kernel.Simulator"


@dataclasses.dataclass
class CallGraph:
    """caller qname -> sorted callee qnames (calls and references)."""

    edges: Dict[str, Tuple[str, ...]]
    #: Functions referenced as callbacks anywhere (handed to a
    #: scheduler, a publish hook, a constructor...).
    callback_targets: Set[str]

    def callees(self, qname: str) -> Tuple[str, ...]:
        """Direct callees of *qname* (empty for unknown names)."""
        return self.edges.get(qname, ())

    def reachable(self, roots: List[str]) -> Set[str]:
        """Every qname reachable from *roots* along edges."""
        seen: Set[str] = set()
        stack = sorted(roots)
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.edges.get(current, ()))
        return seen


class _FunctionResolver:
    """Resolves call/reference targets inside one function body."""

    def __init__(self, table: SymbolTable, ctx: ModuleContext,
                 symbol: FunctionSymbol):
        self.table = table
        self.ctx = ctx
        self.symbol = symbol
        self.cls: Optional[ClassSymbol] = None
        if symbol.cls is not None:
            self.cls = table.classes.get(f"{ctx.module}.{symbol.cls}")
        #: local name -> class qname (annotated params, local ctors).
        self.local_types: Dict[str, str] = {}
        #: ``self.attr`` -> class qname (from every method's ctor
        #: assignments, gathered class-wide so any method sees them).
        self.attr_types: Dict[str, str] = {}
        self._seed_types()

    # -- type seeding --------------------------------------------------

    def _seed_types(self) -> None:
        node = self.symbol.node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for arg in (list(node.args.args)
                        + list(node.args.kwonlyargs)):
                cls = self._annotation_class(arg.annotation)
                if cls is not None:
                    self.local_types[arg.arg] = cls.qname
            for sub in ast.walk(node):
                if isinstance(sub, ast.Assign) and \
                        len(sub.targets) == 1 and \
                        isinstance(sub.targets[0], ast.Name):
                    cls = self._constructed_class(sub.value)
                    if cls is not None:
                        self.local_types[sub.targets[0].id] = cls.qname
        elif isinstance(node, ast.Module):
            # Pseudo-symbol for module-level code: constructor
            # assignments at the top level type the module globals.
            for item in node.body:
                if isinstance(item, ast.Assign) and \
                        len(item.targets) == 1 and \
                        isinstance(item.targets[0], ast.Name):
                    cls = self._constructed_class(item.value)
                    if cls is not None:
                        self.local_types[item.targets[0].id] = cls.qname
        if self.cls is not None:
            for item in self.cls.node.body:
                if not isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                    continue
                for sub in ast.walk(item):
                    if isinstance(sub, ast.Assign) and \
                            len(sub.targets) == 1 and \
                            self._is_self_attr(sub.targets[0]):
                        attr = sub.targets[0].attr  # type: ignore[union-attr]
                        cls = self._constructed_class(sub.value)
                        if cls is not None:
                            self.attr_types.setdefault(attr, cls.qname)
                    if isinstance(sub, ast.AnnAssign) and \
                            self._is_self_attr(sub.target):
                        attr = sub.target.attr  # type: ignore[union-attr]
                        cls = self._annotation_class(sub.annotation)
                        if cls is not None:
                            self.attr_types.setdefault(attr, cls.qname)

    @staticmethod
    def _is_self_attr(node: ast.expr) -> bool:
        return (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self")

    def _annotation_class(self, annotation: Optional[ast.expr]
                          ) -> Optional[ClassSymbol]:
        if annotation is None:
            return None
        if isinstance(annotation, ast.Constant) and \
                isinstance(annotation.value, str):
            name = annotation.value
        else:
            name = _dotted_name(annotation) or ""
        # Unwrap Optional[X] / "X" spellings conservatively.
        if isinstance(annotation, ast.Subscript):
            head = _dotted_name(annotation.value) or ""
            if head.split(".")[-1] == "Optional":
                inner = annotation.slice
                return self._annotation_class(inner)
            return None
        if not name:
            return None
        return self.table.resolve_class(self.ctx.module, name)

    def _constructed_class(self, value: ast.expr
                           ) -> Optional[ClassSymbol]:
        if not isinstance(value, ast.Call):
            return None
        name = _dotted_name(value.func)
        if name is None:
            return None
        return self.table.resolve_class(self.ctx.module, name)

    # -- receiver typing ----------------------------------------------

    def receiver_class(self, node: ast.expr) -> Optional[str]:
        """The class qname an expression evaluates to, if inferable."""
        if isinstance(node, ast.Name):
            if node.id == "self" and self.cls is not None:
                return self.cls.qname
            known = self.local_types.get(node.id)
            if known is not None:
                return known
            if node.id == "sim":
                return SIMULATOR_QNAME
            return None
        if self._is_self_attr(node):
            attr = node.attr  # type: ignore[union-attr]
            known = self.attr_types.get(attr)
            if known is not None:
                return known
            if attr == "sim":
                return SIMULATOR_QNAME
        return None

    # -- target resolution --------------------------------------------

    def resolve_callable(self, node: ast.expr) -> Optional[str]:
        """The qname a callable expression refers to, if resolvable."""
        if isinstance(node, ast.Name):
            local = f"{self.ctx.module}.{node.id}"
            if local in self.table.functions:
                return local
            if local in self.table.classes:
                init = self.table.method_in_hierarchy(
                    self.table.classes[local], "__init__")
                return init or local
            origin = self.ctx.imports.get(node.id)
            if origin is not None and origin in self.table.classes:
                init = self.table.method_in_hierarchy(
                    self.table.classes[origin], "__init__")
                return init or origin
            # An import whose definition lives outside the linted
            # tree (fixtures importing the kernel) still resolves to
            # its dotted origin.
            return origin
        if isinstance(node, ast.Attribute):
            receiver = self.receiver_class(node.value)
            if receiver is not None:
                cls = self.table.classes.get(receiver)
                if cls is not None:
                    resolved = self.table.method_in_hierarchy(
                        cls, node.attr)
                    if resolved is not None:
                        return resolved
                if receiver == SIMULATOR_QNAME:
                    # The kernel itself may sit outside the linted
                    # tree (fixtures); synthesise the seam qname so
                    # schedule-site detection still works.
                    return f"{SIMULATOR_QNAME}.{node.attr}"
                return None
            dotted = _dotted_name(node)
            if dotted is not None:
                root = dotted.split(".")[0]
                origin = self.ctx.imports.get(root)
                if origin is not None:
                    candidate = origin + dotted[len(root):]
                    if candidate in self.table.functions:
                        return candidate
            # Last resort: a method name defined by exactly one class
            # project-wide is unambiguous even without receiver type.
            owners = self.table.methods_by_name.get(node.attr, [])
            if len(owners) == 1:
                return owners[0]
        return None


def build_call_graph(table: SymbolTable) -> CallGraph:
    """Resolve every call and callback reference in *table*."""
    edges: Dict[str, Set[str]] = {}
    callback_targets: Set[str] = set()
    for qname in sorted(table.functions):
        symbol = table.functions[qname]
        ctx = table.modules.get(symbol.module)
        if ctx is None:
            continue
        resolver = _FunctionResolver(table, ctx, symbol)
        out: Set[str] = set()
        for node, is_call in _callables_in(symbol.node):
            target = resolver.resolve_callable(node)
            if target is None:
                continue
            out.add(target)
            if not is_call:
                callback_targets.add(target)
        edges[qname] = out
    # Module-level code gets a pseudo-caller per module.
    for module in sorted(table.modules):
        ctx = table.modules[module]
        pseudo = FunctionSymbol(
            qname=f"{module}.<module>", module=module,
            name="<module>", cls=None, node=ctx.tree, path=ctx.path)
        resolver = _FunctionResolver(table, ctx, pseudo)
        out = set()
        for node, is_call in _module_level_callables(ctx.tree):
            target = resolver.resolve_callable(node)
            if target is None:
                continue
            out.add(target)
            if not is_call:
                callback_targets.add(target)
        edges[pseudo.qname] = out
    return CallGraph(
        edges={caller: tuple(sorted(callees))
               for caller, callees in sorted(edges.items())},
        callback_targets=callback_targets)


def _callables_in(function: ast.AST
                  ) -> Iterator[Tuple[ast.expr, bool]]:
    """(callable expression, is-direct-call) pairs in a function.

    Yields the ``func`` of every Call, plus bare Name/Attribute
    arguments of calls (callback references).  Nested defs belong to
    their own symbols and are skipped.
    """
    body = getattr(function, "body", [])
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(node, ast.Call):
            yield node.func, True
            for arg in node.args:
                if isinstance(arg, (ast.Name, ast.Attribute)):
                    yield arg, False
            for keyword in node.keywords:
                if isinstance(keyword.value, (ast.Name, ast.Attribute)):
                    yield keyword.value, False
        stack.extend(ast.iter_child_nodes(node))


def _module_level_callables(tree: ast.Module
                            ) -> Iterator[Tuple[ast.expr, bool]]:
    """Callables used by module-level statements only."""
    for item in tree.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        for node in ast.walk(item):
            if isinstance(node, ast.Call):
                yield node.func, True
                for arg in node.args:
                    if isinstance(arg, (ast.Name, ast.Attribute)):
                        yield arg, False
                for keyword in node.keywords:
                    if isinstance(keyword.value,
                                  (ast.Name, ast.Attribute)):
                        yield keyword.value, False


def _dotted_name(node: ast.expr) -> Optional[str]:
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))
