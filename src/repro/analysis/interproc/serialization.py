"""Serialization-discipline dataflow (the FPR family's ground layer).

Where the effect layer answers "what does calling this function do to
the durable world", this pass answers "does a frozen config's content
*survive* the world": which dataclass fields exist, which keys
``to_dict`` emits, which keys ``from_dict`` reads back (strictly, or
behind a silent default), which classes feed which fingerprint calls
and through what coverage (``dataclasses.asdict`` covers everything,
an explicit ``to_dict`` covers exactly its keys), and where named
randomness substreams are constructed.  The FPR rules
(:mod:`repro.analysis.fingerprint_rules`) are thin queries over this
map.

Everything here is static and deterministic: classes are matched by
annotation (parameter annotations, ``self`` in methods, local
constructor assignments), keys are only collected when they are
string literals, and anything unresolvable contributes *nothing* --
a rule must treat "unknown" as "cannot judge", never as a violation.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from repro.analysis.interproc.effects import is_stream_get, local_producer
from repro.analysis.interproc.symbols import (
    ClassSymbol,
    FunctionSymbol,
    SymbolTable,
    _dotted,
)

#: Coverage of a fingerprint payload over one class: every field
#: (``asdict``), or exactly the named keys (an explicit ``to_dict``
#: or field-by-field payload construction).
Coverage = Union[str, FrozenSet[str]]

COVERS_ALL = "all"

#: Typing names an annotation may wrap a class in; never classes.
_TYPING_NAMES = frozenset((
    "Optional", "Union", "List", "Dict", "Tuple", "Set", "Sequence",
    "Mapping", "Iterable", "Any", "ClassVar", "Final", "str", "int",
    "float", "bool", "bytes", "None", "object", "Callable", "Type",
))

#: Statements under which a ``to_dict`` key emission (or a dict-store)
#: only *may* happen -- such keys are optional by design and exempt
#: from the round-trip symmetry check.
_CONDITIONAL_STMTS = (ast.If, ast.For, ast.AsyncFor, ast.While,
                      ast.Try)


@dataclasses.dataclass
class ClassSerialization:
    """One class's serialization surface."""

    symbol: ClassSymbol
    #: Whether the class is a ``@dataclass``; fields are () otherwise.
    is_dataclass: bool
    frozen: bool
    #: Dataclass field names, in declaration order (ClassVars out).
    fields: Tuple[str, ...]
    to_dict: Optional[FunctionSymbol] = None
    #: Keys the top-level to_dict payload always emits.
    emits_always: Tuple[str, ...] = ()
    #: Keys only emitted on some path (inside if/for/try).
    emits_conditional: Tuple[str, ...] = ()
    #: to_dict delegates to asdict()/dataclasses.fields(): every
    #: field is emitted, whatever the literal keys say.
    to_dict_dynamic: bool = False
    from_dict: Optional[FunctionSymbol] = None
    #: Keys from_dict reads deliberately: ``data["k"]``, ``"k" in
    #: data`` or a bare ``data.get("k")`` probe (absence handled
    #: explicitly, not silently defaulted).
    reads_strict: Tuple[str, ...] = ()
    #: key -> the ``data.get("k", fallback)`` call that silently
    #: defaults it.
    reads_defaulted: Dict[str, ast.Call] = dataclasses.field(
        default_factory=dict)
    #: from_dict iterates dataclasses.fields()/items() or splats
    #: ``**data``: every key is read, whatever the literals say.
    from_dict_dynamic: bool = False
    #: Field names read as instance attributes anywhere in the
    #: project (``self.x`` in methods, ``cfg.x`` on annotated vars):
    #: the static proxy for "used on an execution path".
    reads: FrozenSet[str] = frozenset()

    @property
    def emitted(self) -> FrozenSet[str]:
        """Every key to_dict can emit (or all fields when dynamic)."""
        if self.to_dict_dynamic:
            return frozenset(self.fields) | \
                frozenset(self.emits_always) | \
                frozenset(self.emits_conditional)
        return frozenset(self.emits_always) | \
            frozenset(self.emits_conditional)


@dataclasses.dataclass
class FingerprintUse:
    """One ``spec_fingerprint(...)`` call and what flows into it."""

    symbol: FunctionSymbol
    node: ast.Call
    #: The literal kind argument, when known ("scenario", "vary"...).
    kind: Optional[str]
    #: class qname -> how much of the class the payload covers.
    coverage: Dict[str, Coverage]


@dataclasses.dataclass
class StreamSite:
    """One ``<streams>.get("<literal name>")`` construction site."""

    symbol: FunctionSymbol
    node: ast.Call
    #: The receiver expression's dotted text (``self.streams``).
    receiver: str
    #: The full literal substream name.
    name: str


@dataclasses.dataclass
class SerializationMap:
    """The assembled field -> fingerprint -> serialization view."""

    #: class qname -> its serialization surface.
    classes: Dict[str, ClassSerialization]
    #: Every fingerprint call, in (path, line) order.
    fingerprints: List[FingerprintUse]
    #: Every named-substream construction site, in (path, line) order.
    streams: List[StreamSite]


# ---------------------------------------------------------------------------
# Class surface extraction
# ---------------------------------------------------------------------------


def _dataclass_decoration(node: ast.ClassDef) -> Tuple[bool, bool]:
    """(is_dataclass, frozen) from the decorator list."""
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        dotted = _dotted(target)
        if dotted not in ("dataclass", "dataclasses.dataclass"):
            continue
        frozen = False
        if isinstance(deco, ast.Call):
            for keyword in deco.keywords:
                if keyword.arg == "frozen" and \
                        isinstance(keyword.value, ast.Constant):
                    frozen = bool(keyword.value.value)
        return True, frozen
    return False, False


def _is_classvar(annotation: ast.expr) -> bool:
    for sub in ast.walk(annotation):
        if isinstance(sub, ast.Name) and sub.id == "ClassVar":
            return True
        if isinstance(sub, ast.Attribute) and sub.attr == "ClassVar":
            return True
    return False


def _dataclass_fields(node: ast.ClassDef) -> Tuple[str, ...]:
    out: List[str] = []
    for item in node.body:
        if isinstance(item, ast.AnnAssign) and \
                isinstance(item.target, ast.Name) and \
                not _is_classvar(item.annotation):
            out.append(item.target.id)
    return tuple(out)


def _literal_key(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _returned_dict_names(fn: ast.AST) -> Set[str]:
    """Local names the function returns (``return data``)."""
    out: Set[str] = set()
    for sub in ast.walk(fn):
        if isinstance(sub, ast.Return) and \
                isinstance(sub.value, ast.Name):
            out.add(sub.value.id)
    return out


def _collect_emits(fn: ast.AST) -> Tuple[Set[str], Set[str], bool]:
    """(always, conditional, dynamic) emitted keys of a to_dict.

    Only the *top-level* payload counts: keys of a returned dict
    literal, keys of a dict literal assigned to a returned local, and
    ``data["k"] = ...`` stores on that local.  Nested dict values
    never pollute the key set.
    """
    returned = _returned_dict_names(fn)
    always: Set[str] = set()
    conditional: Set[str] = set()
    dynamic = False

    def _keys_of(value: ast.expr) -> Set[str]:
        keys: Set[str] = set()
        if isinstance(value, ast.Dict):
            for key in value.keys:
                literal = _literal_key(key) if key is not None else None
                if literal is not None:
                    keys.add(literal)
        return keys

    def _visit(stmt: ast.stmt, in_conditional: bool) -> None:
        bucket = conditional if in_conditional else always
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            bucket |= _keys_of(stmt.value)
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) \
                else [stmt.target]
            value = stmt.value
            for target in targets:
                if isinstance(target, ast.Name) and \
                        target.id in returned and value is not None:
                    bucket |= _keys_of(value)
                if isinstance(target, ast.Subscript) and \
                        isinstance(target.value, ast.Name) and \
                        target.value.id in returned:
                    literal = _literal_key(target.slice)
                    if literal is not None:
                        bucket.add(literal)
        for child_field in ("body", "orelse", "finalbody"):
            for child in getattr(stmt, child_field, []):
                if isinstance(child, ast.stmt):
                    _visit(child, in_conditional or isinstance(
                        stmt, _CONDITIONAL_STMTS))
        for handler in getattr(stmt, "handlers", []):
            for child in handler.body:
                _visit(child, True)

    for stmt in getattr(fn, "body", []):
        _visit(stmt, False)
    for sub in ast.walk(fn):
        if isinstance(sub, ast.Call):
            dotted = _dotted(sub.func)
            if dotted in ("asdict", "dataclasses.asdict",
                          "fields", "dataclasses.fields"):
                dynamic = True
    return always, conditional, dynamic


def _data_param(fn: ast.AST) -> Optional[str]:
    """The payload parameter of a from_dict (first after cls/self)."""
    args = [arg.arg for arg in getattr(fn, "args", ast.arguments(
        posonlyargs=[], args=[], kwonlyargs=[], kw_defaults=[],
        defaults=[])).args]
    if args and args[0] in ("cls", "self"):
        args = args[1:]
    return args[0] if args else None


#: Builtin coercions a from_dict may hand its payload to without
#: hiding key reads (``set(data) - known`` is an unknown-key check,
#: not a consumer of specific keys).
_PAYLOAD_COERCIONS = frozenset((
    "set", "dict", "list", "tuple", "frozenset", "sorted", "len",
    "bool", "repr", "str", "isinstance",
))


def _collect_reads(fn: ast.AST) -> Tuple[Set[str],
                                         Dict[str, ast.Call], bool]:
    """(strict, defaulted, dynamic) keys a from_dict reads.

    The payload escaping into a user helper (``_check_keys(data)``)
    flips *dynamic*: the helper may read any key, so the rule must
    not claim one is unread.
    """
    param = _data_param(fn)
    strict: Set[str] = set()
    defaulted: Dict[str, ast.Call] = {}
    dynamic = False
    if param is None:
        return strict, defaulted, dynamic
    for sub in ast.walk(fn):
        if isinstance(sub, ast.Subscript) and \
                isinstance(sub.value, ast.Name) and \
                sub.value.id == param:
            literal = _literal_key(sub.slice)
            if literal is not None:
                strict.add(literal)
        elif isinstance(sub, ast.Compare) and \
                len(sub.ops) == 1 and \
                isinstance(sub.ops[0], (ast.In, ast.NotIn)) and \
                isinstance(sub.comparators[0], ast.Name) and \
                sub.comparators[0].id == param:
            literal = _literal_key(sub.left)
            if literal is not None:
                strict.add(literal)
        elif isinstance(sub, ast.Call):
            func = sub.func
            if isinstance(func, ast.Attribute) and \
                    func.attr == "get" and \
                    isinstance(func.value, ast.Name) and \
                    func.value.id == param and sub.args:
                literal = _literal_key(sub.args[0])
                if literal is None:
                    continue
                if len(sub.args) > 1 or sub.keywords:
                    defaulted.setdefault(literal, sub)
                else:
                    # A bare .get probe handles absence explicitly.
                    strict.add(literal)
            elif isinstance(func, ast.Attribute) and \
                    func.attr in ("items", "keys") and \
                    isinstance(func.value, ast.Name) and \
                    func.value.id == param:
                dynamic = True
            else:
                dotted = _dotted(func)
                if dotted in ("fields", "dataclasses.fields"):
                    dynamic = True
                escapes = dotted is None or \
                    dotted not in _PAYLOAD_COERCIONS
                for arg in sub.args:
                    if isinstance(arg, ast.Name) and \
                            arg.id == param and escapes:
                        dynamic = True
                for keyword in sub.keywords:
                    if isinstance(keyword.value, ast.Name) and \
                            keyword.value.id == param and \
                            (keyword.arg is None or escapes):
                        dynamic = True
    return strict, defaulted, dynamic


# ---------------------------------------------------------------------------
# Instance typing (annotation -> class) and attribute reads
# ---------------------------------------------------------------------------


def _annotation_class(table: SymbolTable, module: str,
                      annotation: ast.expr) -> Optional[ClassSymbol]:
    """The class an annotation names, unwrapping Optional/strings."""
    candidates: List[str] = []
    for sub in ast.walk(annotation):
        if isinstance(sub, ast.Name):
            candidates.append(sub.id)
        elif isinstance(sub, ast.Attribute):
            dotted = _dotted(sub)
            if dotted is not None:
                candidates.append(dotted)
        elif isinstance(sub, ast.Constant) and \
                isinstance(sub.value, str):
            candidates.append(sub.value.strip())
    for name in candidates:
        if name in _TYPING_NAMES:
            continue
        found = table.resolve_class(module, name)
        if found is not None:
            return found
    return None


def instance_vars(table: SymbolTable,
                  symbol: FunctionSymbol) -> Dict[str, str]:
    """Local/parameter name -> class qname, where statically known."""
    out: Dict[str, str] = {}
    if symbol.cls is not None:
        cls_qname = f"{symbol.module}.{symbol.cls}"
        if cls_qname in table.classes:
            out["self"] = cls_qname
    fn = symbol.node
    if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return out
    for arg in list(fn.args.args) + list(fn.args.kwonlyargs):
        if arg.annotation is not None:
            found = _annotation_class(table, symbol.module,
                                      arg.annotation)
            if found is not None:
                out[arg.arg] = found.qname
    for sub in ast.walk(fn):
        target: Optional[str] = None
        value: Optional[ast.expr] = None
        if isinstance(sub, ast.Assign) and len(sub.targets) == 1 \
                and isinstance(sub.targets[0], ast.Name):
            target, value = sub.targets[0].id, sub.value
        elif isinstance(sub, ast.AnnAssign) and \
                isinstance(sub.target, ast.Name):
            target = sub.target.id
            found = _annotation_class(table, symbol.module,
                                     sub.annotation)
            if found is not None:
                out[target] = found.qname
                continue
            value = sub.value
        if target is None or value is None:
            continue
        if isinstance(value, ast.Call):
            dotted = _dotted(value.func)
            if dotted is not None:
                found = table.resolve_class(symbol.module, dotted)
                if found is not None:
                    out[target] = found.qname
    return out


# ---------------------------------------------------------------------------
# Fingerprint coverage
# ---------------------------------------------------------------------------


def _is_fingerprint_call(call: ast.Call) -> bool:
    func = call.func
    name = func.attr if isinstance(func, ast.Attribute) \
        else getattr(func, "id", None)
    return name == "spec_fingerprint"


def _payload_arg(call: ast.Call) -> Optional[ast.expr]:
    for keyword in call.keywords:
        if keyword.arg == "payload":
            return keyword.value
    if len(call.args) >= 3:
        return call.args[2]
    return None


def _merge_coverage(coverage: Dict[str, Coverage], qname: str,
                    update: Coverage) -> None:
    current = coverage.get(qname)
    if current == COVERS_ALL or update == COVERS_ALL:
        coverage[qname] = COVERS_ALL
    elif current is None:
        coverage[qname] = update
    else:
        assert isinstance(current, frozenset) and \
            isinstance(update, frozenset)
        coverage[qname] = current | update


def _payload_coverage(table: SymbolTable,
                      classes: Dict[str, ClassSerialization],
                      symbol: FunctionSymbol,
                      varmap: Dict[str, str],
                      payload: ast.expr) -> Dict[str, Coverage]:
    """What the payload expression covers, per contributing class."""
    coverage: Dict[str, Coverage] = {}
    seen_names: Set[str] = set()
    queue: List[ast.expr] = [payload]
    depth = 0
    while queue and depth < 64:
        depth += 1
        expr = queue.pop(0)
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Name) and \
                    sub.id not in varmap and \
                    sub.id not in seen_names:
                # Fold a locally built payload (``payload = {...}``).
                seen_names.add(sub.id)
                produced = local_producer(symbol, sub.id)
                if produced is not None:
                    queue.append(produced)
            elif isinstance(sub, ast.Call):
                dotted = _dotted(sub.func)
                if dotted in ("asdict", "dataclasses.asdict") and \
                        sub.args and \
                        isinstance(sub.args[0], ast.Name):
                    qname = varmap.get(sub.args[0].id)
                    if qname is not None:
                        _merge_coverage(coverage, qname, COVERS_ALL)
                elif isinstance(sub.func, ast.Attribute) and \
                        sub.func.attr == "to_dict" and \
                        isinstance(sub.func.value, ast.Name):
                    qname = varmap.get(sub.func.value.id)
                    serial = classes.get(qname or "")
                    if serial is not None:
                        if serial.to_dict_dynamic:
                            _merge_coverage(coverage, serial.symbol.qname,
                                            COVERS_ALL)
                        else:
                            _merge_coverage(coverage, serial.symbol.qname,
                                            serial.emitted)
            elif isinstance(sub, ast.Attribute) and \
                    isinstance(sub.value, ast.Name):
                qname = varmap.get(sub.value.id)
                serial = classes.get(qname or "")
                if serial is not None and \
                        sub.attr in serial.fields:
                    _merge_coverage(coverage, serial.symbol.qname,
                                    frozenset((sub.attr,)))
    return coverage


# ---------------------------------------------------------------------------
# Stream construction sites
# ---------------------------------------------------------------------------


def full_literal(symbol: FunctionSymbol,
                 expr: ast.expr) -> Optional[str]:
    """The *complete* literal value of a string expression.

    Unlike :func:`~repro.analysis.interproc.effects.leading_literal`
    (a prefix, enough for family checks), collision detection needs
    the whole name: anything partially dynamic returns None.
    """
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value
    if isinstance(expr, ast.Name):
        produced = local_producer(symbol, expr.id)
        if isinstance(produced, ast.Constant) and \
                isinstance(produced.value, str):
            return produced.value
    return None


# ---------------------------------------------------------------------------
# Assembly
# ---------------------------------------------------------------------------


def build_serialization_map(table: SymbolTable) -> SerializationMap:
    """Assemble the full serialization view over *table*."""
    classes: Dict[str, ClassSerialization] = {}
    for qname in sorted(table.classes):
        cls = table.classes[qname]
        is_dc, frozen = _dataclass_decoration(cls.node)
        serial = ClassSerialization(
            symbol=cls, is_dataclass=is_dc, frozen=frozen,
            fields=_dataclass_fields(cls.node) if is_dc else ())
        to_dict_q = cls.method("to_dict")
        if to_dict_q is not None:
            serial.to_dict = table.functions[to_dict_q]
            always, conditional, dynamic = _collect_emits(
                serial.to_dict.node)
            serial.emits_always = tuple(sorted(always))
            serial.emits_conditional = tuple(sorted(conditional))
            serial.to_dict_dynamic = dynamic
        from_dict_q = cls.method("from_dict")
        if from_dict_q is not None:
            serial.from_dict = table.functions[from_dict_q]
            strict, defaulted, dynamic = _collect_reads(
                serial.from_dict.node)
            serial.reads_strict = tuple(sorted(strict))
            serial.reads_defaulted = defaulted
            serial.from_dict_dynamic = dynamic
        classes[qname] = serial

    fingerprints: List[FingerprintUse] = []
    streams: List[StreamSite] = []
    reads: Dict[str, Set[str]] = {qname: set() for qname in classes}
    for fq in sorted(table.functions):
        symbol = table.functions[fq]
        varmap = instance_vars(table, symbol)
        for sub in ast.walk(symbol.node):
            if not isinstance(sub, ast.Call):
                if isinstance(sub, ast.Attribute) and \
                        isinstance(sub.ctx, ast.Load) and \
                        isinstance(sub.value, ast.Name):
                    qname = varmap.get(sub.value.id)
                    serial = classes.get(qname or "")
                    if serial is not None and \
                            sub.attr in serial.fields:
                        reads[serial.symbol.qname].add(sub.attr)
                continue
            if _is_fingerprint_call(sub):
                payload = _payload_arg(sub)
                kind = None
                if sub.args and isinstance(sub.args[0], ast.Constant) \
                        and isinstance(sub.args[0].value, str):
                    kind = sub.args[0].value
                coverage: Dict[str, Coverage] = {}
                if payload is not None:
                    coverage = _payload_coverage(
                        table, classes, symbol, varmap, payload)
                fingerprints.append(FingerprintUse(
                    symbol=symbol, node=sub, kind=kind,
                    coverage=coverage))
            elif is_stream_get(sub) and sub.args:
                name = full_literal(symbol, sub.args[0])
                receiver = _dotted(sub.func.value)  # type: ignore[union-attr]
                if name is not None and receiver is not None:
                    streams.append(StreamSite(
                        symbol=symbol, node=sub,
                        receiver=receiver, name=name))
    for qname, serial in classes.items():
        serial.reads = frozenset(reads[qname])
    fingerprints.sort(key=lambda use: (use.symbol.path,
                                       use.node.lineno,
                                       use.node.col_offset))
    streams.sort(key=lambda site: (site.symbol.path,
                                   site.node.lineno,
                                   site.node.col_offset))
    return SerializationMap(classes=classes,
                            fingerprints=fingerprints,
                            streams=streams)


__all__ = [
    "COVERS_ALL",
    "ClassSerialization",
    "Coverage",
    "FingerprintUse",
    "SerializationMap",
    "StreamSite",
    "build_serialization_map",
    "full_literal",
    "instance_vars",
]
