"""The assembled project view handed to every project rule."""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Set

from repro.analysis.interproc.callgraph import CallGraph, build_call_graph
from repro.analysis.interproc.dataflow import tainted_functions
from repro.analysis.interproc.effects import EffectMap, infer_effects
from repro.analysis.interproc.serialization import (
    SerializationMap,
    build_serialization_map,
)
from repro.analysis.interproc.sites import (
    ScheduleSite,
    collect_schedule_sites,
)
from repro.analysis.interproc.symbols import SymbolTable, build_symbol_table
from repro.analysis.rules import ModuleContext


@dataclasses.dataclass
class ProjectContext:
    """Everything the interprocedural layer knows about one tree."""

    contexts: List[ModuleContext]
    symbols: SymbolTable
    callgraph: CallGraph
    sites: List[ScheduleSite]
    #: Transitively tainted functions (wall clock / global RNG).
    taints: Dict[str, str]
    #: Functions reachable from the roots (module-level code, public
    #: functions and methods, and every referenced callback).
    reachable: Set[str]
    #: caller qname -> run roots that reach it.  A *run root* is a
    #: function that constructs a Simulator itself (``Simulator()``
    #: or ``build_simulator(...)`` as a direct callee): the place a
    #: run scope begins.  Two schedule sites can only tie when they
    #: share one simulator, so the SCH rules pair sites only when
    #: their callers share a run root here -- the static proxy for
    #: "same run", which keeps scenarios that merely coexist in one
    #: process (a report runner executing both) from cross-pairing.
    caller_roots: Dict[str, Set[str]]
    #: Per-function effect summaries and their transitive closure
    #: (filesystem, SQL/transactions, RNG draws, raises) -- the
    #: ground layer of the EFF rule family.
    effects: EffectMap
    #: Dataclass fields -> to_dict/from_dict keys -> fingerprint
    #: inputs -> named-substream sites -- the ground layer of the
    #: FPR rule family.
    serialization: SerializationMap


def build_project(contexts: Sequence[ModuleContext]) -> ProjectContext:
    """Build the full interprocedural view over *contexts*."""
    ordered = sorted(contexts, key=lambda c: c.path)
    symbols = build_symbol_table(ordered)
    callgraph = build_call_graph(symbols)
    sites = collect_schedule_sites(symbols, callgraph)
    taints = tainted_functions(symbols, callgraph)
    entry_roots: List[str] = []
    for module in sorted(symbols.modules):
        entry_roots.append(f"{module}.<module>")
    for qname in sorted(symbols.functions):
        symbol = symbols.functions[qname]
        if not symbol.name.startswith("_") or symbol.name == "__init__":
            entry_roots.append(qname)
    roots = entry_roots + sorted(callgraph.callback_targets)
    reachable = callgraph.reachable(roots)
    site_callers = sorted({site.caller for site in sites})
    caller_roots: Dict[str, Set[str]] = {c: set() for c in site_callers}
    for root in _run_roots(symbols, callgraph):
        reach = callgraph.reachable([root])
        for caller in site_callers:
            if caller in reach:
                caller_roots[caller].add(root)
    return ProjectContext(
        contexts=list(ordered), symbols=symbols, callgraph=callgraph,
        sites=sites, taints=taints, reachable=reachable,
        caller_roots=caller_roots,
        effects=infer_effects(symbols, callgraph),
        serialization=build_serialization_map(symbols))


#: Direct callees that mark a function as the start of a run scope.
_SIM_CONSTRUCTORS = (
    "repro.sim.kernel.Simulator",
    "repro.sim.kernel.Simulator.__init__",
    "repro.sim.kernel.build_simulator",
)


def _run_roots(symbols: SymbolTable,
               callgraph: CallGraph) -> List[str]:
    """Every function (or module body) that constructs a Simulator."""
    candidates = sorted(symbols.functions)
    candidates += [f"{m}.<module>" for m in sorted(symbols.modules)]
    return [qname for qname in candidates
            if any(callee in _SIM_CONSTRUCTORS
                   for callee in callgraph.callees(qname))]
