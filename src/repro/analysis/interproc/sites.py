"""Schedule-site extraction: every ``schedule``/``schedule_at`` call.

A *site* is one static call of the kernel's scheduling API.  Sites
carry everything the SCH rules reason about: where the call is, who
makes it, what delay expression it passes, what callback it arms and
whether the site is *periodic* (the callback re-arms the same site,
the dominant pattern for sensors, watchdogs and service timers).
"""

from __future__ import annotations

import ast
import dataclasses
from typing import List, Optional, Tuple

from repro.analysis.interproc.callgraph import (
    SIMULATOR_QNAME,
    CallGraph,
    _FunctionResolver,
)
from repro.analysis.interproc.dataflow import DelayValue, evaluate_delay
from repro.analysis.interproc.symbols import FunctionSymbol, SymbolTable

#: Scheduling entry points on the kernel seam.
SCHEDULE_METHODS = ("schedule", "schedule_at")


@dataclasses.dataclass(frozen=True)
class ScheduleSite:
    """One static ``schedule()``/``schedule_at()`` call site."""

    #: ``path:line`` -- matches the runtime TieAudit site ids.
    site_id: str
    path: str
    line: int
    column: int
    module: str
    #: The function containing the call (``pkg.mod.Cls.meth`` or the
    #: module pseudo-symbol ``pkg.mod.<module>``).
    caller: str
    #: ``schedule`` or ``schedule_at``.
    method: str
    #: Resolved callback qname, when the callback argument is a
    #: resolvable function/method reference; None for lambdas and
    #: unresolvable expressions.
    callback: Optional[str]
    #: What the delay argument folds to.
    delay: DelayValue
    #: Resolved qnames of functions called inside the delay
    #: expression (the hook for interprocedural taint, SCH003).
    delay_calls: Tuple[str, ...]
    #: Whether the callback (or the caller, for re-arms inside the
    #: callback itself) schedules this site again: a periodic loop.
    periodic: bool

    def sort_key(self) -> Tuple[str, int, int]:
        """Deterministic report order."""
        return (self.path, self.line, self.column)


def collect_schedule_sites(table: SymbolTable,
                           graph: CallGraph) -> List[ScheduleSite]:
    """Every schedule site in the project, in path/line order."""
    sites: List[ScheduleSite] = []
    for qname in sorted(table.functions):
        symbol = table.functions[qname]
        ctx = table.modules.get(symbol.module)
        if ctx is None:
            continue
        resolver = _FunctionResolver(table, ctx, symbol)
        for call in _schedule_calls(symbol.node, resolver):
            sites.append(_build_site(table, resolver, symbol, call))
    # Module-level scheduling (fixtures, scripts).
    for module in sorted(table.modules):
        ctx = table.modules[module]
        pseudo = FunctionSymbol(
            qname=f"{module}.<module>", module=module, name="<module>",
            cls=None, node=ctx.tree, path=ctx.path)
        resolver = _FunctionResolver(table, ctx, pseudo)
        for call in _module_schedule_calls(ctx.tree, resolver):
            sites.append(_build_site(table, resolver, pseudo, call))
    return sorted(sites, key=ScheduleSite.sort_key)


def _is_schedule_target(resolver: _FunctionResolver,
                        call: ast.Call) -> Optional[str]:
    """The schedule method name, when *call* targets the kernel."""
    func = call.func
    if not isinstance(func, ast.Attribute) or \
            func.attr not in SCHEDULE_METHODS:
        return None
    target = resolver.resolve_callable(func)
    if target is not None and \
            target.startswith(SIMULATOR_QNAME + "."):
        return func.attr
    # Convention fallback: an untyped receiver whose name mentions
    # ``sim`` still counts (the codebase-wide seam naming rule).
    receiver = func.value
    name = ""
    if isinstance(receiver, ast.Name):
        name = receiver.id
    elif isinstance(receiver, ast.Attribute):
        name = receiver.attr
    if "sim" in name:
        return func.attr
    return None


def _schedule_calls(function: ast.AST, resolver: _FunctionResolver
                    ) -> List[ast.Call]:
    out: List[ast.Call] = []
    body = getattr(function, "body", [])
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(node, ast.Call) and \
                _is_schedule_target(resolver, node) is not None:
            out.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return sorted(out, key=lambda c: (c.lineno, c.col_offset))


def _module_schedule_calls(tree: ast.Module,
                           resolver: _FunctionResolver
                           ) -> List[ast.Call]:
    out: List[ast.Call] = []
    for item in tree.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        for node in ast.walk(item):
            if isinstance(node, ast.Call) and \
                    _is_schedule_target(resolver, node) is not None:
                out.append(node)
    return sorted(out, key=lambda c: (c.lineno, c.col_offset))


def _build_site(table: SymbolTable, resolver: _FunctionResolver,
                symbol: FunctionSymbol, call: ast.Call) -> ScheduleSite:
    method = call.func.attr if isinstance(call.func, ast.Attribute) \
        else "schedule"
    delay_expr = call.args[0] if call.args else None
    callback_expr = call.args[1] if len(call.args) > 1 else None
    for keyword in call.keywords:
        if keyword.arg in ("delay", "when"):
            delay_expr = keyword.value
        elif keyword.arg == "callback":
            callback_expr = keyword.value
    callback: Optional[str] = None
    if callback_expr is not None and \
            isinstance(callback_expr, (ast.Name, ast.Attribute)):
        callback = resolver.resolve_callable(callback_expr)
    delay = evaluate_delay(table, resolver, symbol, delay_expr)
    delay_calls: List[str] = []
    if delay_expr is not None:
        for sub in ast.walk(delay_expr):
            if isinstance(sub, ast.Call):
                resolved = resolver.resolve_callable(sub.func)
                if resolved is not None:
                    delay_calls.append(resolved)
    periodic = _is_periodic(symbol, callback)
    return ScheduleSite(
        site_id=f"{symbol.path}:{call.lineno}",
        path=symbol.path, line=call.lineno,
        column=call.col_offset + 1, module=symbol.module,
        caller=symbol.qname, method=method, callback=callback,
        delay=delay, delay_calls=tuple(sorted(set(delay_calls))),
        periodic=periodic)


def _is_periodic(symbol: FunctionSymbol,
                 callback: Optional[str]) -> bool:
    """A site is periodic when its callback re-arms the same site.

    The universal idiom is the self-rescheduling callback: the call
    sits *inside* the very function it schedules (``def _tick():
    ...; sim.schedule(dt, self._tick)``).  Constructor-armed first
    shots (``__init__`` scheduling ``self._tick``) are the loop's
    entry edge; they count as periodic too because the armed
    callback immediately joins the loop.
    """
    if callback is None:
        return False
    if callback == symbol.qname:
        return True
    # Entry edge: arming a sibling method that re-arms itself is
    # resolved by the rule layer (it has the full site list); here we
    # only classify the direct self-loop.
    return False
