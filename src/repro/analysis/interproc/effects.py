"""Interprocedural effect inference (the EFF family's ground layer).

Where the taint fixpoint (:mod:`repro.analysis.interproc.dataflow`)
answers "can nondeterminism reach this value", the effect layer
answers "what does calling this function *do* to the durable world":
write a file, rename one into place, fsync, execute SQL, open or
close a transaction, draw from a random generator, build a simulator.
Each function gets a *direct* effect set from its own body, then a
fixpoint over the call graph folds callee effects into callers, so a
rule can ask ``"fs.rename" in effects.of(qname)`` and mean
"anywhere below this call".  Raised exception classes propagate the
same way, which is what lets EFF008 see a ``DeadLetterError`` thrown
three helpers deep under a bare ``except``.

Everything here is static and deterministic: SQL is only inspected
when it is a string literal at the call site, receivers are matched
by the codebase's naming conventions (``db``/``conn``/``cur`` for
connections, ``*stream*`` for the substream factory), and unknown
targets contribute nothing rather than a guess.
"""

from __future__ import annotations

import ast
import dataclasses
import re
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.interproc.callgraph import CallGraph, _FunctionResolver
from repro.analysis.interproc.symbols import FunctionSymbol, SymbolTable
from repro.analysis.rules import ModuleContext, resolve_target

# -- effect kinds -----------------------------------------------------------

FS_WRITE = "fs.write"      #: opens a file handle in a write mode
FS_MKSTEMP = "fs.mkstemp"  #: creates a temp file (the atomic pattern)
FS_RENAME = "fs.rename"    #: renames/replaces a file into place
FS_FSYNC = "fs.fsync"      #: forces written bytes to disk
DB_EXECUTE = "db.execute"  #: executes SQL on a connection/cursor
DB_BEGIN = "db.begin"      #: opens an explicit transaction
DB_COMMIT = "db.commit"    #: commits or rolls back one
RNG_DRAW = "rng.draw"      #: draws from a random generator
SIM_BUILD = "sim.build"    #: constructs a Simulator (a run begins)
WORK = "work"              #: executes campaign work (runs, artifacts)

#: Rename/replace targets (``Path.replace`` is matched structurally:
#: a one-argument ``.replace(...)`` call -- ``str.replace`` takes two).
_RENAME_TARGETS = ("os.replace", "os.rename", "os.renames",
                   "shutil.move")

#: Temp-file factories that start the atomic write pattern.
_MKSTEMP_TARGETS = ("tempfile.mkstemp", "tempfile.NamedTemporaryFile",
                    "tempfile.mkdtemp")

#: Ad-hoc generator constructors: a draw on one of these is not a
#: named substream, whatever seed it was given (the *name* is part of
#: the draw's identity; a seeded anonymous generator still drifts the
#: moment call order changes).
ADHOC_RNG_CONSTRUCTORS = ("numpy.random.default_rng",
                          "numpy.random.Generator",
                          "numpy.random.RandomState",
                          "random.Random")

#: Method names that consume randomness from a generator object.
DRAW_METHODS = frozenset((
    "random", "uniform", "normal", "standard_normal", "integers",
    "choice", "shuffle", "permutation", "exponential", "poisson",
    "gauss", "randint", "randrange", "sample", "betavariate",
))

#: Functions that *are* campaign work: executing one of these (or
#: anything that reaches them) inside an open DB transaction holds
#: the queue lock across a simulation (EFF005).
WORK_QNAMES = (
    "repro.core.queue.worker.execute_item",
    "repro.core.campaign._execute_run",
    "repro.core.fleet.campaign._execute_fleet_run",
    "repro.core.artifacts.ArtifactStore.put",
    "repro.core.artifacts.ArtifactStore.get",
)

#: Receiver-name fragments that mark a ``.execute(...)`` call as SQL.
_DB_RECEIVER_HINTS = ("db", "conn", "cur", "sqlite")

#: Receiver-name fragment for the substream factory convention
#: (``streams`` / ``self.streams`` / ``scoped_streams``).
_STREAM_RECEIVER_HINT = "stream"

_SQL_MUTATION_RE = re.compile(
    r"^\s*(?:INSERT|UPDATE|DELETE|REPLACE)\b", re.IGNORECASE)
_SQL_BEGIN_RE = re.compile(r"^\s*BEGIN\b", re.IGNORECASE)
_SQL_IMMEDIATE_RE = re.compile(
    r"^\s*BEGIN\s+(?:IMMEDIATE|EXCLUSIVE)\b", re.IGNORECASE)
_SQL_CLOSE_RE = re.compile(
    r"^\s*(?:COMMIT|ROLLBACK|END)\b", re.IGNORECASE)
_SQL_UPDATE_RE = re.compile(r"^\s*UPDATE\s+(\w+)\b", re.IGNORECASE)


def sql_mentions_table(sql: str, table: str) -> bool:
    """Whether *sql* references *table* as a whole word."""
    return re.search(rf"\b{re.escape(table)}\b", sql,
                     re.IGNORECASE) is not None


def sql_is_mutation(sql: str) -> bool:
    """Whether *sql* is an INSERT/UPDATE/DELETE/REPLACE statement."""
    return _SQL_MUTATION_RE.match(sql) is not None


def sql_updated_table(sql: str) -> Optional[str]:
    """The table an UPDATE statement targets, lowercased, or None."""
    match = _SQL_UPDATE_RE.match(sql)
    return match.group(1).lower() if match else None


@dataclasses.dataclass(frozen=True, eq=False)
class DbCall:
    """One SQL-ish call site inside a function body."""

    node: ast.Call
    #: ``execute`` | ``executemany`` | ``executescript`` | ``commit``
    #: | ``rollback``.
    method: str
    #: The SQL string when it is a literal at the call site.
    sql: Optional[str]

    @property
    def opens(self) -> bool:
        """Whether this call opens an explicit transaction."""
        return self.sql is not None and \
            _SQL_BEGIN_RE.match(self.sql) is not None

    @property
    def immediate(self) -> bool:
        """Whether an opened transaction is IMMEDIATE/EXCLUSIVE."""
        return self.sql is not None and \
            _SQL_IMMEDIATE_RE.match(self.sql) is not None

    @property
    def closes(self) -> bool:
        """Whether this call commits or rolls back a transaction."""
        if self.method in ("commit", "rollback"):
            return True
        return self.sql is not None and \
            _SQL_CLOSE_RE.match(self.sql) is not None


@dataclasses.dataclass(frozen=True)
class TransactionWindow:
    """One BEGIN..COMMIT span in a function's statement order."""

    start_line: int
    end_line: int
    immediate: bool

    def contains(self, line: int) -> bool:
        """Whether *line* sits strictly inside the window."""
        return self.start_line < line < self.end_line


@dataclasses.dataclass(eq=False)
class FunctionEffects:
    """Everything the effect pass extracted from one function body."""

    symbol: FunctionSymbol
    #: Direct effect kinds of this body alone.
    direct: Set[str]
    #: Bare class names this body raises directly.
    raises: Set[str]
    #: SQL-ish calls, in statement order.
    db_calls: List[DbCall]
    #: ``open(...)``/``os.fdopen(...)`` calls in a write mode.
    write_opens: List[ast.Call]
    #: rename/replace calls.
    renames: List[ast.Call]
    #: Every call with its strictly-resolved target (None when the
    #: receiver could not be typed; never a single-owner guess).
    calls: List[Tuple[ast.Call, Optional[str]]]

    def windows(self) -> List[TransactionWindow]:
        """The function's BEGIN..COMMIT spans, in statement order.

        A BEGIN with no matching close extends to the end of the
        function (the window is still open when it returns); closes
        with no open window -- the ``except: ROLLBACK`` arm after a
        committed ``try`` body -- are ignored.
        """
        out: List[TransactionWindow] = []
        open_call: Optional[DbCall] = None
        for call in self.db_calls:
            if call.opens and open_call is None:
                open_call = call
            elif call.closes and open_call is not None:
                out.append(TransactionWindow(
                    start_line=open_call.node.lineno,
                    end_line=call.node.lineno,
                    immediate=open_call.immediate))
                open_call = None
        if open_call is not None:
            end = getattr(self.symbol.node, "end_lineno", None)
            out.append(TransactionWindow(
                start_line=open_call.node.lineno,
                end_line=end or open_call.node.lineno,
                immediate=open_call.immediate))
        return out


@dataclasses.dataclass
class EffectMap:
    """Per-function effect summaries plus their transitive closure."""

    per_function: Dict[str, FunctionEffects]
    #: qname -> transitive effect kinds (direct plus every callee's).
    effects: Dict[str, Set[str]]
    #: qname -> transitive raised class names.
    raised: Dict[str, Set[str]]

    def of(self, qname: Optional[str]) -> Set[str]:
        """The transitive effects of *qname* (empty when unknown)."""
        if qname is None:
            return set()
        return self.effects.get(qname, set())

    def raises_of(self, qname: Optional[str]) -> Set[str]:
        """The transitive raised classes of *qname*."""
        if qname is None:
            return set()
        return self.raised.get(qname, set())


def _body_nodes(function: ast.AST) -> List[ast.AST]:
    """Nodes of a function body, nested defs excluded, source order."""
    out: List[ast.AST] = []
    stack: List[ast.AST] = list(getattr(function, "body", []))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        out.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return sorted(out, key=lambda n: (getattr(n, "lineno", 0),
                                      getattr(n, "col_offset", 0)))


def _terminal_name(node: ast.expr) -> Optional[str]:
    """The last identifier of a Name/Attribute receiver expression."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _literal_str(node: Optional[ast.expr]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _call_arg(call: ast.Call, index: int,
              keyword: str) -> Optional[ast.expr]:
    """Positional arg *index* or keyword *keyword* of *call*."""
    if len(call.args) > index:
        return call.args[index]
    for kw in call.keywords:
        if kw.arg == keyword:
            return kw.value
    return None


def _is_write_mode(mode: Optional[str]) -> bool:
    return mode is not None and any(c in mode for c in "wax+")


def resolve_strict(resolver: _FunctionResolver,
                   table: SymbolTable, ctx: ModuleContext,
                   node: ast.expr) -> Optional[str]:
    """Resolve a callable without the single-owner method fallback.

    The call graph's last-resort rule (a method name defined by
    exactly one class is unambiguous) is fine for reachability but
    too eager for effect attribution: ``handle.close()`` must not
    acquire the effects of the one class that happens to define
    ``close``.  Here an Attribute call only resolves through a typed
    receiver or a dotted import origin.
    """
    if isinstance(node, ast.Name):
        return resolver.resolve_callable(node)
    if isinstance(node, ast.Attribute):
        if resolver.receiver_class(node.value) is not None:
            return resolver.resolve_callable(node)
        dotted = resolve_target(ctx, node)
        if dotted is not None and dotted in table.functions:
            return dotted
    return None


#: Direct callees that mark the start of a run scope (mirrors the
#: run-root convention in :mod:`repro.analysis.interproc.project`).
_SIM_BUILD_TARGETS = (
    "repro.sim.kernel.Simulator",
    "repro.sim.kernel.Simulator.__init__",
    "repro.sim.kernel.build_simulator",
)


def _extract_function(table: SymbolTable, ctx: ModuleContext,
                      symbol: FunctionSymbol) -> FunctionEffects:
    """The direct effect summary of one function body."""
    resolver = _FunctionResolver(table, ctx, symbol)
    fx = FunctionEffects(symbol=symbol, direct=set(), raises=set(),
                         db_calls=[], write_opens=[], renames=[],
                         calls=[])
    for node in _body_nodes(symbol.node):
        if isinstance(node, ast.Raise) and node.exc is not None:
            exc = node.exc.func if isinstance(node.exc, ast.Call) \
                else node.exc
            name = _terminal_name(exc)
            if name is not None:
                fx.raises.add(name)
            continue
        if not isinstance(node, ast.Call):
            continue
        target = resolve_target(ctx, node.func)
        qname = resolve_strict(resolver, table, ctx, node.func)
        fx.calls.append((node, qname))
        if qname in WORK_QNAMES or target in WORK_QNAMES:
            fx.direct.add(WORK)
        if qname in _SIM_BUILD_TARGETS:
            fx.direct.add(SIM_BUILD)
        if isinstance(node.func, ast.Name) and \
                node.func.id == "open" or target == "io.open":
            if _is_write_mode(_literal_str(
                    _call_arg(node, 1, "mode"))):
                fx.direct.add(FS_WRITE)
                fx.write_opens.append(node)
            continue
        if target == "os.fdopen":
            if _is_write_mode(_literal_str(
                    _call_arg(node, 1, "mode"))):
                fx.direct.add(FS_WRITE)
                fx.write_opens.append(node)
            continue
        if target in _MKSTEMP_TARGETS:
            fx.direct.add(FS_MKSTEMP)
            continue
        if target in _RENAME_TARGETS or (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "replace"
                and len(node.args) == 1 and not node.keywords):
            fx.direct.add(FS_RENAME)
            fx.renames.append(node)
            continue
        if target == "os.fsync":
            fx.direct.add(FS_FSYNC)
            continue
        if isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            receiver = _terminal_name(node.func.value)
            hinted = receiver is not None and any(
                hint in receiver.lower()
                for hint in _DB_RECEIVER_HINTS)
            if hinted and attr in ("execute", "executemany",
                                   "executescript"):
                call = DbCall(node=node, method=attr,
                              sql=_literal_str(_call_arg(node, 0, "sql")))
                fx.db_calls.append(call)
                fx.direct.add(DB_EXECUTE)
                if call.opens:
                    fx.direct.add(DB_BEGIN)
                if call.closes:
                    fx.direct.add(DB_COMMIT)
                continue
            if hinted and attr in ("commit", "rollback"):
                fx.db_calls.append(DbCall(node=node, method=attr,
                                          sql=None))
                fx.direct.add(DB_COMMIT)
                continue
            if attr in DRAW_METHODS and isinstance(
                    node.func.value, (ast.Name, ast.Attribute)):
                fx.direct.add(RNG_DRAW)
    return fx


def infer_effects(table: SymbolTable,
                  graph: CallGraph) -> EffectMap:
    """Direct extraction plus the caller<-callee fixpoint.

    The fixpoint propagates along the *strict* edges recorded in
    each summary's ``calls`` -- not the call graph's permissive
    edges -- so the single-owner method fallback (fine for
    reachability, wrong for attribution) can never fold a stranger
    class's effects into a caller.  *graph* is accepted for parity
    with the other interproc passes but only its node set is used.
    """
    del graph  # strict edges only; see docstring
    per_function: Dict[str, FunctionEffects] = {}
    for qname in sorted(table.functions):
        symbol = table.functions[qname]
        ctx = table.modules.get(symbol.module)
        if ctx is None:
            continue
        per_function[qname] = _extract_function(table, ctx, symbol)
    edges: Dict[str, Set[str]] = {
        qname: {callee for _node, callee in fx.calls
                if callee is not None}
        for qname, fx in per_function.items()}
    effects = {q: set(fx.direct) for q, fx in per_function.items()}
    raised = {q: set(fx.raises) for q, fx in per_function.items()}
    changed = True
    while changed:
        changed = False
        for caller in sorted(edges):
            own_fx = effects.setdefault(caller, set())
            own_raises = raised.setdefault(caller, set())
            for callee in sorted(edges[caller]):
                for pool, own in ((effects, own_fx),
                                  (raised, own_raises)):
                    extra = pool.get(callee, set()) - own
                    if extra:
                        own |= extra
                        changed = True
    return EffectMap(per_function=per_function, effects=effects,
                     raised=raised)


def leading_literal(symbol: FunctionSymbol,
                    expr: ast.expr, depth: int = 0) -> Optional[str]:
    """The statically-known leading text of a string expression.

    Follows literals, f-strings (up to the first interpolation),
    ``+`` concatenation and single local assignments, so
    ``scope = f"vary.lhs.{spec.name}"; streams.get(scope)`` folds to
    ``"vary.lhs."`` -- enough to check a required prefix.  None means
    nothing is known (an opaque parameter), which rules must treat as
    "cannot judge", never as a violation.
    """
    if depth > 8:
        return None
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value
    if isinstance(expr, ast.JoinedStr):
        if not expr.values:
            return None
        head = expr.values[0]
        if isinstance(head, ast.Constant) and \
                isinstance(head.value, str):
            return head.value
        if isinstance(head, ast.FormattedValue):
            return leading_literal(symbol, head.value, depth + 1)
        return None
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Add):
        return leading_literal(symbol, expr.left, depth + 1)
    if isinstance(expr, ast.Name):
        for node in _body_nodes(symbol.node):
            if isinstance(node, ast.Assign) and \
                    len(node.targets) == 1 and \
                    isinstance(node.targets[0], ast.Name) and \
                    node.targets[0].id == expr.id:
                return leading_literal(symbol, node.value, depth + 1)
    return None


def local_producer(symbol: FunctionSymbol,
                   name: str) -> Optional[ast.expr]:
    """The expression last assigned to local *name*, if any."""
    found: Optional[ast.expr] = None
    for node in _body_nodes(symbol.node):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and node.targets[0].id == name:
            found = node.value
    return found


def is_stream_get(call: ast.Call) -> bool:
    """Whether *call* is ``<something streamish>.get(name)``."""
    if not (isinstance(call.func, ast.Attribute)
            and call.func.attr == "get"):
        return False
    receiver = _terminal_name(call.func.value)
    return receiver is not None and \
        _STREAM_RECEIVER_HINT in receiver.lower()


__all__ = [
    "ADHOC_RNG_CONSTRUCTORS",
    "DB_BEGIN",
    "DB_COMMIT",
    "DB_EXECUTE",
    "DRAW_METHODS",
    "DbCall",
    "EffectMap",
    "FS_FSYNC",
    "FS_MKSTEMP",
    "FS_RENAME",
    "FS_WRITE",
    "FunctionEffects",
    "RNG_DRAW",
    "SIM_BUILD",
    "TransactionWindow",
    "WORK",
    "WORK_QNAMES",
    "infer_effects",
    "is_stream_get",
    "leading_literal",
    "local_producer",
    "resolve_strict",
    "sql_is_mutation",
    "sql_mentions_table",
    "sql_updated_table",
]
