"""Project-wide symbol table: functions, classes, constants by qname.

The table is the ground layer of the interprocedural analysis: it
answers "what does the dotted name ``repro.core.testbed.ScaleTestbed
._watch`` refer to" and "which classes define a method called
``_tick``" without importing any of the code under analysis.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.rules import ModuleContext


@dataclasses.dataclass(frozen=True, eq=False)
class FunctionSymbol:
    """One function or method definition."""

    #: Fully qualified dotted name (``pkg.mod.Class.method``).
    qname: str
    #: Dotted module the definition lives in.
    module: str
    #: Bare function name.
    name: str
    #: Enclosing class name, or None for module-level functions.
    cls: Optional[str]
    #: The definition node (FunctionDef / AsyncFunctionDef).
    node: ast.AST
    #: Source path of the defining file.
    path: str

    @property
    def is_method(self) -> bool:
        """Whether this is a method of some class."""
        return self.cls is not None


@dataclasses.dataclass(frozen=True, eq=False)
class ClassSymbol:
    """One class definition with its methods and literal constants."""

    qname: str
    module: str
    name: str
    node: ast.ClassDef
    path: str
    #: method name -> method symbol qname.
    methods: Tuple[Tuple[str, str], ...]
    #: Resolved base-class qnames (unresolvable bases are dropped).
    bases: Tuple[str, ...]
    #: Class-level numeric constants (``WATCH_PERIOD = 2e-3``) and
    #: numeric dataclass-field defaults, name -> value.
    constants: Tuple[Tuple[str, float], ...]

    def method(self, name: str) -> Optional[str]:
        """The qname of method *name*, if this class defines it."""
        for method_name, qname in self.methods:
            if method_name == name:
                return qname
        return None

    def constant(self, name: str) -> Optional[float]:
        """The literal value of class constant *name*, if known."""
        for const_name, value in self.constants:
            if const_name == name:
                return value
        return None


@dataclasses.dataclass
class SymbolTable:
    """Every definition in the linted tree, by qualified name."""

    #: module name -> its parsed context.
    modules: Dict[str, ModuleContext]
    functions: Dict[str, FunctionSymbol]
    classes: Dict[str, ClassSymbol]
    #: Module-level numeric constants, qname -> value.
    constants: Dict[str, float]
    #: bare method name -> qnames of every class method with it.
    methods_by_name: Dict[str, List[str]]

    def resolve_class(self, module: str, name: str) -> Optional[ClassSymbol]:
        """The class *name* refers to, seen from *module*.

        Tries the module's own definitions first, then its import
        table (``from x import Y`` / ``import x`` + ``x.Y``).
        """
        own = self.classes.get(f"{module}.{name}")
        if own is not None:
            return own
        ctx = self.modules.get(module)
        if ctx is not None:
            origin = ctx.imports.get(name.split(".")[0])
            if origin is not None:
                dotted = origin + name[len(name.split(".")[0]):]
                found = self.classes.get(dotted)
                if found is not None:
                    return found
        return self.classes.get(name)

    def method_in_hierarchy(self, cls: ClassSymbol,
                            name: str) -> Optional[str]:
        """Method *name* on *cls* or (breadth-first) its bases."""
        queue: List[ClassSymbol] = [cls]
        seen: List[str] = []
        while queue:
            current = queue.pop(0)
            if current.qname in seen:
                continue
            seen.append(current.qname)
            qname = current.method(name)
            if qname is not None:
                return qname
            for base in current.bases:
                base_cls = self.classes.get(base)
                if base_cls is not None:
                    queue.append(base_cls)
        return None


def _numeric_literal(node: ast.expr) -> Optional[float]:
    """The numeric value of a literal expression, if it is one."""
    if isinstance(node, ast.Constant) and \
            isinstance(node.value, (int, float)) and \
            not isinstance(node.value, bool):
        return float(node.value)
    if isinstance(node, ast.UnaryOp) and \
            isinstance(node.op, ast.USub):
        inner = _numeric_literal(node.operand)
        if inner is not None:
            return -inner
    if isinstance(node, ast.BinOp) and \
            isinstance(node.op, (ast.Div, ast.Mult, ast.Add, ast.Sub)):
        left = _numeric_literal(node.left)
        right = _numeric_literal(node.right)
        if left is not None and right is not None:
            if isinstance(node.op, ast.Div):
                return left / right if right != 0 else None
            if isinstance(node.op, ast.Mult):
                return left * right
            if isinstance(node.op, ast.Add):
                return left + right
            return left - right
    return None


def _class_constants(node: ast.ClassDef) -> List[Tuple[str, float]]:
    """Literal numeric class attributes and dataclass field defaults."""
    out: List[Tuple[str, float]] = []
    for item in node.body:
        target: Optional[str] = None
        value: Optional[ast.expr] = None
        if isinstance(item, ast.Assign) and len(item.targets) == 1 \
                and isinstance(item.targets[0], ast.Name):
            target = item.targets[0].id
            value = item.value
        elif isinstance(item, ast.AnnAssign) and \
                isinstance(item.target, ast.Name) and \
                item.value is not None:
            target = item.target.id
            value = item.value
        if target is None or value is None:
            continue
        literal = _numeric_literal(value)
        if literal is not None:
            out.append((target, literal))
    # __init__ keyword defaults (``dt: float = 2e-3``) double as
    # per-instance constants when never reassigned elsewhere; record
    # ``param`` defaults for the common self.param = param idiom.
    init = next((item for item in node.body
                 if isinstance(item, ast.FunctionDef)
                 and item.name == "__init__"), None)
    if init is not None:
        args = init.args
        defaults = list(args.defaults)
        bound = args.args[len(args.args) - len(defaults):]
        for arg, default in zip(bound, defaults):
            literal = _numeric_literal(default)
            if literal is not None and \
                    all(name != arg.arg for name, _ in out):
                out.append((arg.arg, literal))
    return sorted(out)


def build_symbol_table(contexts: Sequence[ModuleContext]) -> SymbolTable:
    """Index every definition in *contexts* (sorted, deterministic)."""
    table = SymbolTable(modules={}, functions={}, classes={},
                        constants={}, methods_by_name={})
    for ctx in sorted(contexts, key=lambda c: c.path):
        table.modules[ctx.module] = ctx
        for item in ctx.tree.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qname = f"{ctx.module}.{item.name}"
                table.functions[qname] = FunctionSymbol(
                    qname=qname, module=ctx.module, name=item.name,
                    cls=None, node=item, path=ctx.path)
            elif isinstance(item, ast.ClassDef):
                _index_class(table, ctx, item)
            elif isinstance(item, ast.Assign) and \
                    len(item.targets) == 1 and \
                    isinstance(item.targets[0], ast.Name):
                literal = _numeric_literal(item.value)
                if literal is not None:
                    name = item.targets[0].id
                    table.constants[f"{ctx.module}.{name}"] = literal
            elif isinstance(item, ast.AnnAssign) and \
                    isinstance(item.target, ast.Name) and \
                    item.value is not None:
                literal = _numeric_literal(item.value)
                if literal is not None:
                    name = item.target.id
                    table.constants[f"{ctx.module}.{name}"] = literal
    return table


def _index_class(table: SymbolTable, ctx: ModuleContext,
                 node: ast.ClassDef) -> None:
    cls_qname = f"{ctx.module}.{node.name}"
    methods: List[Tuple[str, str]] = []
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qname = f"{cls_qname}.{item.name}"
            symbol = FunctionSymbol(
                qname=qname, module=ctx.module, name=item.name,
                cls=node.name, node=item, path=ctx.path)
            table.functions[qname] = symbol
            methods.append((item.name, qname))
            table.methods_by_name.setdefault(item.name, []).append(qname)
    bases: List[str] = []
    for base in node.bases:
        dotted = _dotted(base)
        if dotted is None:
            continue
        root = dotted.split(".")[0]
        origin = ctx.imports.get(root)
        if origin is not None:
            bases.append(origin + dotted[len(root):])
        else:
            bases.append(f"{ctx.module}.{dotted}")
    table.classes[cls_qname] = ClassSymbol(
        qname=cls_qname, module=ctx.module, name=node.name,
        node=node, path=ctx.path, methods=tuple(sorted(methods)),
        bases=tuple(bases), constants=tuple(_class_constants(node)))


def _dotted(node: ast.expr) -> Optional[str]:
    """``a.b.c`` as a string, when the expression is that shape."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))
