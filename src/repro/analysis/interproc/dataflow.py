"""Delay-expression dataflow and project-wide taint.

:func:`evaluate_delay` folds the delay argument of one schedule call
to a :class:`DelayValue`: a literal number, a named constant (module
constant, class constant or defaulted ``__init__`` parameter bound to
``self``), a *tainted* value (derived from wall clock or unseeded
randomness -- possibly through helper functions, which is where the
call graph comes in) or unknown.

:func:`tainted_functions` runs the interprocedural half: a fixpoint
over the call graph marking every function that transitively calls a
wall-clock or global-randomness API.  SCH003 uses it to flag schedule
delays computed from nondeterministic sources *anywhere* below the
call site -- the interprocedural strengthening of the per-file DET001
and DET002 pattern checks.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.analysis.interproc.symbols import SymbolTable
from repro.analysis.rules import ModuleContext, resolve_target

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.interproc.callgraph import (
        CallGraph,
        _FunctionResolver,
    )
    from repro.analysis.interproc.symbols import FunctionSymbol

#: Wall-clock and global-randomness call targets that taint a value.
#: ``time.perf_counter`` is deliberately absent: the obs layer uses
#: it for host-side durations that never feed simulated behaviour.
TAINT_SOURCES: Dict[str, str] = {
    "time.time": "wall clock",
    "time.time_ns": "wall clock",
    "time.monotonic": "wall clock",
    "time.monotonic_ns": "wall clock",
    "datetime.datetime.now": "wall clock",
    "datetime.datetime.utcnow": "wall clock",
    "random.random": "unseeded randomness",
    "random.uniform": "unseeded randomness",
    "random.randint": "unseeded randomness",
    "random.randrange": "unseeded randomness",
    "random.expovariate": "unseeded randomness",
    "random.gauss": "unseeded randomness",
    "numpy.random.random": "unseeded randomness",
    "numpy.random.rand": "unseeded randomness",
    "numpy.random.uniform": "unseeded randomness",
}

#: Modules whose own use of these APIs is sanctioned (the substream
#: factory seeds from them deliberately; the profiler is host-side).
TAINT_EXEMPT_MODULES = ("repro.sim.randomness", "repro.obs.profile")


@dataclasses.dataclass(frozen=True)
class DelayValue:
    """What a schedule delay argument folds to."""

    #: ``literal`` | ``constant`` | ``tainted`` | ``unknown``.
    kind: str
    #: The folded numeric value (literal / constant kinds).
    value: Optional[float] = None
    #: The constant's qualified name (constant kind) or the taint
    #: reason (tainted kind).
    origin: str = ""

    @property
    def known(self) -> bool:
        """Whether the numeric value is statically known."""
        return self.kind in ("literal", "constant") \
            and self.value is not None


def direct_taint(ctx: ModuleContext, node: ast.AST) -> Optional[str]:
    """The taint reason when *node* contains a banned call."""
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        target = resolve_target(ctx, sub.func)
        if target is None:
            continue
        reason = TAINT_SOURCES.get(target)
        if reason is not None:
            return f"{reason} ({target})"
    return None


def tainted_functions(table: SymbolTable,
                      graph: "CallGraph") -> Dict[str, str]:
    """qname -> reason, for every transitively tainted function.

    Seeds with functions whose bodies call a :data:`TAINT_SOURCES`
    API directly (outside the exempt modules), then propagates
    backwards over call edges to fixpoint: a caller of a tainted
    function is tainted with a ``via ...`` chain, so the report can
    say *how* nondeterminism reaches a schedule site.
    """
    taints: Dict[str, str] = {}
    for qname in sorted(table.functions):
        symbol = table.functions[qname]
        if any(symbol.module == m or symbol.module.startswith(m + ".")
               for m in TAINT_EXEMPT_MODULES):
            continue
        ctx = table.modules.get(symbol.module)
        if ctx is None:
            continue
        reason = direct_taint(ctx, symbol.node)
        if reason is not None:
            taints[qname] = reason
    # Propagate caller <- callee to fixpoint (deterministic order).
    changed = True
    while changed:
        changed = False
        for caller in sorted(graph.edges):
            if caller in taints:
                continue
            for callee in graph.edges[caller]:
                if callee in taints:
                    taints[caller] = f"via {callee}: {taints[callee]}"
                    changed = True
                    break
    return taints


def evaluate_delay(table: SymbolTable,
                   resolver: "_FunctionResolver",
                   symbol: "FunctionSymbol",
                   expr: Optional[ast.expr]) -> DelayValue:
    """Fold one delay expression to a :class:`DelayValue`."""
    if expr is None:
        return DelayValue(kind="unknown")
    ctx = table.modules.get(symbol.module)
    if ctx is not None:
        reason = direct_taint(ctx, expr)
        if reason is not None:
            return DelayValue(kind="tainted", origin=reason)
    folded = _fold(table, resolver, symbol, expr)
    if folded is not None:
        kind, value, origin = folded
        return DelayValue(kind=kind, value=value, origin=origin)
    return DelayValue(kind="unknown")


def _fold(table: SymbolTable, resolver: "_FunctionResolver",
          symbol: "FunctionSymbol", expr: ast.expr
          ) -> Optional[Tuple[str, float, str]]:
    """(kind, value, origin) for foldable expressions, else None."""
    if isinstance(expr, ast.Constant) and \
            isinstance(expr.value, (int, float)) and \
            not isinstance(expr.value, bool):
        return ("literal", float(expr.value), "")
    if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.USub):
        inner = _fold(table, resolver, symbol, expr.operand)
        if inner is not None:
            kind, value, origin = inner
            return (kind, -value, origin)
        return None
    if isinstance(expr, ast.BinOp) and \
            isinstance(expr.op, (ast.Add, ast.Sub, ast.Mult, ast.Div)):
        left = _fold(table, resolver, symbol, expr.left)
        right = _fold(table, resolver, symbol, expr.right)
        if left is None or right is None:
            return None
        value = _apply(expr.op, left[1], right[1])
        if value is None:
            return None
        kind = "constant" if "constant" in (left[0], right[0]) \
            else "literal"
        origin = left[2] or right[2]
        return (kind, value, origin)
    if isinstance(expr, ast.Name):
        return _fold_name(table, resolver, symbol, expr.id)
    if isinstance(expr, ast.Attribute):
        return _fold_attribute(table, resolver, symbol, expr)
    return None


def _apply(op: ast.operator, left: float,
           right: float) -> Optional[float]:
    if isinstance(op, ast.Add):
        return left + right
    if isinstance(op, ast.Sub):
        return left - right
    if isinstance(op, ast.Mult):
        return left * right
    if isinstance(op, ast.Div):
        return left / right if right != 0 else None
    return None


def _fold_name(table: SymbolTable, resolver: "_FunctionResolver",
               symbol: "FunctionSymbol", name: str
               ) -> Optional[Tuple[str, float, str]]:
    # Local assignment of a foldable value inside this function.
    node = symbol.node
    for sub in ast.walk(node):
        if isinstance(sub, ast.Assign) and len(sub.targets) == 1 and \
                isinstance(sub.targets[0], ast.Name) and \
                sub.targets[0].id == name:
            folded = _fold(table, resolver, symbol, sub.value)
            if folded is not None:
                return folded
    # Module-level constant, local or imported.
    qname = f"{symbol.module}.{name}"
    if qname in table.constants:
        return ("constant", table.constants[qname], qname)
    ctx = table.modules.get(symbol.module)
    if ctx is not None:
        origin = ctx.imports.get(name)
        if origin is not None and origin in table.constants:
            return ("constant", table.constants[origin], origin)
    return None


def _fold_attribute(table: SymbolTable,
                    resolver: "_FunctionResolver",
                    symbol: "FunctionSymbol", expr: ast.Attribute
                    ) -> Optional[Tuple[str, float, str]]:
    # self.dt / self.WATCH_PERIOD: class constants and defaulted
    # __init__ parameters of the enclosing class.
    if isinstance(expr.value, ast.Name) and expr.value.id == "self" \
            and resolver.cls is not None:
        value = resolver.cls.constant(expr.attr)
        if value is not None:
            return ("constant", value,
                    f"{resolver.cls.qname}.{expr.attr}")
        return None
    # ClassName.CONSTANT and module.CONSTANT through imports.
    parts: List[str] = []
    current: ast.expr = expr
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    dotted = ".".join(reversed(parts))
    root = parts[-1]
    candidates = [f"{symbol.module}.{dotted}"]
    ctx = table.modules.get(symbol.module)
    if ctx is not None:
        origin = ctx.imports.get(root)
        if origin is not None:
            candidates.append(origin + dotted[len(root):])
    for candidate in candidates:
        if candidate in table.constants:
            return ("constant", table.constants[candidate], candidate)
        # ClassName.CONST -> class-level constant table.
        cls_qname, _, attr = candidate.rpartition(".")
        cls = table.classes.get(cls_qname)
        if cls is not None:
            value = cls.constant(attr)
            if value is not None:
                return ("constant", value, candidate)
    return None
