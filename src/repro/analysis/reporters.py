"""Finding reporters: human text, canonical JSON, and SARIF.

All renderers are pure functions of the :class:`LintResult`, emit
findings in the engine's deterministic order, and end with a
newline, so reports are byte-stable and diffable (the JSON and SARIF
reports are uploaded as CI artifacts; the text report is what
developers read; the SARIF report is what GitHub renders as inline
PR annotations).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.analysis.engine import LintResult, count_by_rule
from repro.analysis.findings import Finding
from repro.analysis.registry import registered_rules

#: Bump when the JSON report layout changes.
#: v2: ``unused_suppressions`` section (file+line parity with the
#: text reporter, so CI artifacts are actionable on their own).
REPORT_FORMAT = 2

#: The SARIF version GitHub code scanning consumes.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")


def _registered_rules() -> list:
    """Every registered rule object, in id order (the registry)."""
    return registered_rules()


def render_text(result: LintResult) -> str:
    """The human-readable report: one line per finding + summary."""
    lines = [
        f"{f.path}:{f.line}:{f.column}: {f.rule} {f.message}"
        for f in result.findings
    ]
    if result.grandfathered:
        lines.append(f"(baseline: {len(result.grandfathered)} "
                     f"grandfathered finding(s) not shown)")
    if result.findings:
        by_rule = ", ".join(f"{rule} x{count}" for rule, count
                            in count_by_rule(result.findings))
        lines.append(f"detlint: {len(result.findings)} finding(s) "
                     f"[{by_rule}] in {result.files_checked} "
                     f"file(s)")
    else:
        lines.append(f"detlint: clean "
                     f"({result.files_checked} file(s) checked)")
    return "\n".join(lines) + "\n"


def render_json(result: LintResult) -> str:
    """The canonical JSON report (sorted keys, 2-space indent)."""
    payload: Dict[str, Any] = {
        "format": REPORT_FORMAT,
        "files_checked": result.files_checked,
        "findings": [f.to_dict() for f in result.findings],
        "grandfathered": [f.to_dict()
                          for f in result.grandfathered],
        "unused_suppressions": [
            {"path": f.path, "line": f.line, "message": f.message}
            for f in result.unused_suppressions
        ],
        "summary": {
            "total": len(result.findings),
            "by_rule": dict(count_by_rule(result.findings)),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _sarif_result(finding: Finding) -> Dict[str, Any]:
    return {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": finding.path,
                    "uriBaseId": "%SRCROOT%",
                },
                "region": {
                    "startLine": finding.line,
                    "startColumn": finding.column,
                },
            },
        }],
        "partialFingerprints": {
            "detlint/v1": finding.fingerprint(),
        },
    }


def render_sarif(result: LintResult) -> str:
    """The SARIF 2.1.0 report (GitHub inline PR annotations).

    One run, one rule entry per registered rule (so annotations can
    link to the catalogue text), one result per gating finding.
    Grandfathered findings are deliberately omitted -- SARIF is the
    gate's view, and the baseline already accepted them.
    """
    rules: List[Dict[str, Any]] = [
        {
            "id": rule.rule_id,
            "name": rule.title or rule.rule_id,
            "shortDescription": {"text": rule.title or rule.rule_id},
            "fullDescription": {"text": rule.rationale or rule.title},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in _registered_rules()
    ]
    payload: Dict[str, Any] = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "detlint",
                    "rules": rules,
                },
            },
            "results": [_sarif_result(f) for f in result.findings],
        }],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def render_rules_text() -> str:
    """The rule catalogue (``--list-rules``)."""
    lines = []
    for rule in _registered_rules():
        lines.append(f"{rule.rule_id}  {rule.title}")
        for chunk in _wrap(rule.rationale, width=64):
            lines.append(f"        {chunk}")
    return "\n".join(lines) + "\n"


def _wrap(text: str, width: int) -> list:
    words = text.split()
    lines, current = [], ""
    for word in words:
        if current and len(current) + 1 + len(word) > width:
            lines.append(current)
            current = word
        else:
            current = f"{current} {word}".strip()
    if current:
        lines.append(current)
    return lines
