"""Finding reporters: human text and canonical JSON.

Both renderers are pure functions of the :class:`LintResult`, emit
findings in the engine's deterministic order, and end with a
newline, so reports are byte-stable and diffable (the JSON report is
uploaded as a CI artifact; the text report is what developers read).
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.analysis.engine import LintResult, count_by_rule
from repro.analysis.rules import all_rules
from repro.analysis.schedule_rules import all_project_rules

#: Bump when the JSON report layout changes.
REPORT_FORMAT = 1


def render_text(result: LintResult) -> str:
    """The human-readable report: one line per finding + summary."""
    lines = [
        f"{f.path}:{f.line}:{f.column}: {f.rule} {f.message}"
        for f in result.findings
    ]
    if result.grandfathered:
        lines.append(f"(baseline: {len(result.grandfathered)} "
                     f"grandfathered finding(s) not shown)")
    if result.findings:
        by_rule = ", ".join(f"{rule} x{count}" for rule, count
                            in count_by_rule(result.findings))
        lines.append(f"detlint: {len(result.findings)} finding(s) "
                     f"[{by_rule}] in {result.files_checked} "
                     f"file(s)")
    else:
        lines.append(f"detlint: clean "
                     f"({result.files_checked} file(s) checked)")
    return "\n".join(lines) + "\n"


def render_json(result: LintResult) -> str:
    """The canonical JSON report (sorted keys, 2-space indent)."""
    payload: Dict[str, Any] = {
        "format": REPORT_FORMAT,
        "files_checked": result.files_checked,
        "findings": [f.to_dict() for f in result.findings],
        "grandfathered": [f.to_dict()
                          for f in result.grandfathered],
        "summary": {
            "total": len(result.findings),
            "by_rule": dict(count_by_rule(result.findings)),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def render_rules_text() -> str:
    """The rule catalogue (``--list-rules``)."""
    lines = []
    for rule in list(all_rules()) + list(all_project_rules()):
        lines.append(f"{rule.rule_id}  {rule.title}")
        for chunk in _wrap(rule.rationale, width=64):
            lines.append(f"        {chunk}")
    return "\n".join(lines) + "\n"


def _wrap(text: str, width: int) -> list:
    words = text.split()
    lines, current = [], ""
    for word in words:
        if current and len(current) + 1 + len(word) > width:
            lines.append(current)
            current = word
        else:
            current = f"{current} {word}".strip()
    if current:
        lines.append(current)
    return lines
