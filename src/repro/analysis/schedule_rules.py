"""The schedule-race rule family (SCH001..SCH003).

Where the DET rules are per-file pattern checks, the SCH rules are
*project* rules: they run once over the whole linted tree, on top of
the :mod:`repro.analysis.interproc` layer (symbol table, call graph,
delay dataflow).  Their subject is the DES kernel's one soft spot --
same-timestamp event ties.  Two periodic loops whose periods are
commensurable *will* fire at identical sim-times, and whichever hidden
ordering the calendar queue gives them becomes load-bearing unless the
code is written to be order-invariant (the catch-up discipline) or the
tie is audited benign (the ``tie-audit`` workflow).

========  ==========================================================
SCH001    two reachable periodic schedule sites with commensurable
          statically-known periods: they fire at identical
          sim-times, so their relative order is a hidden input
SCH002    the callbacks of a tied pair share mutable instance state
          (one writes what the other touches): the tie is not just
          temporal, it races on data
SCH003    a schedule delay computed from wall clock or unseeded
          randomness, found *through* the call graph -- the
          interprocedural strengthening of DET001/DET002
========  ==========================================================

Every finding names both halves of the race by ``path:line`` site id,
the same ids the runtime :class:`~repro.sim.tie_audit.TieAudit`
records, so a static SCH001 pair can be confirmed or refuted
empirically with ``repro-testbed tie-audit``.
"""

from __future__ import annotations

import ast
from fractions import Fraction
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.interproc.project import ProjectContext
from repro.analysis.interproc.sites import ScheduleSite
from repro.analysis.rules import ModuleContext

#: A pair of periods ties when their ratio is a small rational: the
#: loops then share a common fire time every few cycles.  The bound
#: keeps incommensurable grids (15 fps vs a 2 ms integrator) out.
_MAX_RATIO = 16


class ProjectRule:
    """Base class: one project-wide invariant, machine-checked."""

    rule_id: str = "SCH999"
    title: str = ""
    rationale: str = ""

    def check_project(self, project: ProjectContext
                      ) -> Iterator[Finding]:
        """Yield every violation in *project*."""
        raise NotImplementedError  # pragma: no cover - interface

    def finding(self, project: ProjectContext, path: str, line: int,
                column: int, message: str) -> Finding:
        """A :class:`Finding` anchored at an explicit location."""
        snippet = ""
        ctx = _context_for(project, path)
        if ctx is not None and 0 < line <= len(ctx.lines):
            snippet = ctx.lines[line - 1].strip()
        return Finding(rule=self.rule_id, path=path, line=line,
                       column=column, message=message,
                       snippet=snippet)


def _context_for(project: ProjectContext,
                 path: str) -> Optional[ModuleContext]:
    for ctx in project.contexts:
        if ctx.path == path:
            return ctx
    return None


def _periodic_sites(project: ProjectContext) -> List[ScheduleSite]:
    """Reachable periodic re-arm sites with known positive periods."""
    out = []
    for site in project.sites:
        if not site.periodic:
            continue
        if site.caller not in project.reachable:
            continue
        if not site.delay.known or site.delay.value is None \
                or site.delay.value <= 0.0:
            continue
        out.append(site)
    return out


def _commensurable(a: float, b: float) -> Optional[Tuple[int, int]]:
    """(num, den) of the reduced period ratio, when small enough.

    Periods are folded through their shortest decimal repr so that
    e.g. 0.005 / 0.002 reduces to exactly 5/2 (the floats involved
    are decimal literals in source); irrational-looking ratios (1/15
    vs 0.002) produce huge numerators and are rejected.
    """
    try:
        ratio = Fraction(repr(a)) / Fraction(repr(b))
    except (ValueError, ZeroDivisionError):
        return None
    if ratio.numerator <= _MAX_RATIO and \
            ratio.denominator <= _MAX_RATIO:
        return (ratio.numerator, ratio.denominator)
    return None


def _tied_pairs(project: ProjectContext
                ) -> List[Tuple[ScheduleSite, ScheduleSite, str]]:
    """All distinct tied site pairs with a human-readable why."""
    sites = _periodic_sites(project)
    pairs: List[Tuple[ScheduleSite, ScheduleSite, str]] = []
    for i, a in enumerate(sites):
        for b in sites[i + 1:]:
            assert a.delay.value is not None
            assert b.delay.value is not None
            # Two sites can only tie on one simulator when a single
            # entry point assembles both (same-run proxy).
            roots_a = project.caller_roots.get(a.caller, set())
            roots_b = project.caller_roots.get(b.caller, set())
            if not roots_a & roots_b:
                continue
            if a.delay.origin and a.delay.origin == b.delay.origin:
                why = (f"both periods come from the shared constant "
                       f"{a.delay.origin} = {a.delay.value:g}s")
            else:
                ratio = _commensurable(a.delay.value, b.delay.value)
                if ratio is None:
                    continue
                num, den = ratio
                if num == 1 and den == 1:
                    why = (f"identical periods "
                           f"({a.delay.value:g}s)")
                else:
                    why = (f"periods {a.delay.value:g}s and "
                           f"{b.delay.value:g}s align every "
                           f"{num}:{den} cycles")
            pairs.append((a, b, why))
    return pairs


class SameTimeScheduleRule(ProjectRule):
    """Commensurable periodic loops share fire times."""

    rule_id = "SCH001"
    title = "periodic schedule sites tied on the same sim-times"
    rationale = (
        "Two periodic loops with commensurable periods fire at "
        "identical sim-times, so the kernel's tie-break order -- an "
        "implementation accident, not part of the model -- decides "
        "which callback runs first.  Make the interaction "
        "order-invariant (the catch-up discipline), or verify the "
        "tie is benign with repro-testbed tie-audit and suppress "
        "with the audit as the written reason.")

    def check_project(self, project: ProjectContext
                      ) -> Iterator[Finding]:
        # One finding per anchor site (the earlier half of each
        # pair), listing every partner, so one suppression comment
        # with one written reason covers one site's whole tie set.
        grouped: Dict[str, List[Tuple[ScheduleSite, ScheduleSite,
                                      str]]] = {}
        for a, b, why in _tied_pairs(project):
            grouped.setdefault(a.site_id, []).append((a, b, why))
        for site_id in sorted(grouped):
            pairs = grouped[site_id]
            a = pairs[0][0]
            shown = [f"{b.site_id} ({why})" for _, b, why in pairs[:3]]
            more = len(pairs) - len(shown)
            partners = "; ".join(shown)
            if more > 0:
                partners += f"; and {more} more"
            yield self.finding(
                project, a.path, a.line, a.column,
                f"periodic schedule site {a.site_id} (callback "
                f"{_callback_name(a)}) ties with {partners} -- these "
                f"callbacks run at the same sim-times in tie-break "
                f"order; make the interaction order-invariant or "
                f"tie-audit it")


def _callback_name(site: ScheduleSite) -> str:
    return site.callback or "<unresolved callback>"


def _self_attr_accesses(node: ast.AST) -> Tuple[Set[str], Set[str]]:
    """(reads, writes) of ``self.<attr>`` inside one function body."""
    reads: Set[str] = set()
    writes: Set[str] = set()
    for sub in ast.walk(node):
        if not (isinstance(sub, ast.Attribute)
                and isinstance(sub.value, ast.Name)
                and sub.value.id == "self"):
            continue
        if isinstance(sub.ctx, (ast.Store, ast.Del)):
            writes.add(sub.attr)
        else:
            reads.add(sub.attr)
    # Mutating method calls on an attribute (self.log.append(...))
    # count as writes to the attribute.
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and \
                isinstance(sub.func, ast.Attribute) and \
                sub.func.attr in ("append", "add", "update", "pop",
                                  "extend", "remove", "clear",
                                  "setdefault") and \
                isinstance(sub.func.value, ast.Attribute) and \
                isinstance(sub.func.value.value, ast.Name) and \
                sub.func.value.value.id == "self":
            writes.add(sub.func.value.attr)
    return reads, writes


class SharedStateTieRule(ProjectRule):
    """Tied callbacks racing on shared mutable state."""

    rule_id = "SCH002"
    title = "tied schedule sites race on shared mutable state"
    rationale = (
        "When the callbacks of a tied pair live on the same object "
        "and one writes an attribute the other touches, the "
        "tie-break order decides the data the loser sees: a real "
        "read/write race on the simulated timeline.  Split the "
        "state, make the reader pull (catch-up), or de-alias the "
        "periods.")

    def check_project(self, project: ProjectContext
                      ) -> Iterator[Finding]:
        for a, b, _why in _tied_pairs(project):
            if a.callback is None or b.callback is None:
                continue
            fa = project.symbols.functions.get(a.callback)
            fb = project.symbols.functions.get(b.callback)
            if fa is None or fb is None:
                continue
            if fa.cls is None or fb.cls is None:
                continue
            if fa.module != fb.module or fa.cls != fb.cls:
                continue
            if fa.qname == fb.qname:
                continue
            reads_a, writes_a = _self_attr_accesses(fa.node)
            reads_b, writes_b = _self_attr_accesses(fb.node)
            raced = sorted((writes_a & (reads_b | writes_b))
                           | (writes_b & (reads_a | writes_a)))
            # The re-arm plumbing itself is not shared state.
            raced = [attr for attr in raced if attr not in ("sim",)]
            if not raced:
                continue
            yield self.finding(
                project, a.path, a.line, a.column,
                f"tied sites {a.site_id} and {b.site_id} race on "
                f"shared mutable state: {fa.cls}."
                f"{', '.join(raced)} is written by one callback "
                f"and touched by the other at the same sim-times")


class TaintedDelayRule(ProjectRule):
    """Schedule delays must be deterministic, transitively."""

    rule_id = "SCH003"
    title = "schedule delay derived from wall clock or global RNG"
    rationale = (
        "A delay computed from time.time() or the global random "
        "state -- directly or through any helper on the call path "
        "-- makes the event timeline differ between runs and hosts, "
        "which no tie-break policy can repair.  DET001/DET002 catch "
        "the banned call at its own site; SCH003 follows the value "
        "to the schedule site that consumes it.")

    def check_project(self, project: ProjectContext
                      ) -> Iterator[Finding]:
        for site in project.sites:
            if site.caller not in project.reachable:
                continue
            reason: Optional[str] = None
            if site.delay.kind == "tainted":
                reason = site.delay.origin
            else:
                for callee in site.delay_calls:
                    chain = project.taints.get(callee)
                    if chain is not None:
                        reason = f"{callee}: {chain}"
                        break
            if reason is None:
                continue
            yield self.finding(
                project, site.path, site.line, site.column,
                f"schedule delay at {site.site_id} is derived from "
                f"{reason}; delays must be pure functions of the "
                f"scenario and seeded substreams")


_PROJECT_RULES: Tuple[ProjectRule, ...] = (
    SameTimeScheduleRule(),
    SharedStateTieRule(),
    TaintedDelayRule(),
)


def all_project_rules() -> Tuple[ProjectRule, ...]:
    """Every registered project rule, in rule-id order."""
    return tuple(sorted(_PROJECT_RULES, key=lambda r: r.rule_id))


def project_rule_ids() -> Tuple[str, ...]:
    """The registered project rule ids, sorted."""
    return tuple(rule.rule_id for rule in all_project_rules())


def check_project_rules(rules: Tuple[ProjectRule, ...],
                        contexts: List[ModuleContext],
                        ) -> Dict[str, List[Finding]]:
    """Run *rules* over *contexts*, findings grouped by path."""
    from repro.analysis.interproc.project import build_project

    grouped: Dict[str, List[Finding]] = {}
    if not rules or not contexts:
        return grouped
    project = build_project(contexts)
    for rule in rules:
        for finding in rule.check_project(project):
            grouped.setdefault(finding.path, []).append(finding)
    return grouped
