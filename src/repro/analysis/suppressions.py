"""Statement-level suppressions: ``# detlint: ignore[DET003] -- reason``.

A suppression silences the named rule(s) on the *logical statement*
it appears on: a comment anywhere on a multi-line call (the opening
line, a continuation line, or after the closing parenthesis) covers
findings anchored to any physical line of that statement.  Comments
on their own line keep exact per-line semantics, so a stray
suppression can never blanket a whole block.  The grammar is
deliberately strict -- every suppression must name at least one rule
id *and* give a reason after ``--`` -- so the codebase never
accumulates bare, unexplained escapes.  Malformed comments and
suppressions that silenced nothing are themselves reported under the
meta-rule :data:`META_RULE` (DET000), which keeps the suppression
inventory honest.
"""

from __future__ import annotations

import ast
import dataclasses
import io
import re
import tokenize
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.registry import FAMILY_PREFIXES

#: The meta-rule id for malformed or unused suppressions.
META_RULE = "DET000"

#: Matches the whole suppression comment, capturing rules and reason.
_SUPPRESS_RE = re.compile(
    r"#\s*detlint:\s*ignore\[(?P<rules>[^\]]*)\]"
    r"(?:\s*--\s*(?P<reason>.*))?")

#: Anything that merely *mentions* the linter in a comment -- used
#: to catch typos (a missing colon, a misspelt ``ignore``) that
#: would otherwise silently fail to suppress.
_MENTION_RE = re.compile(r"#\s*detlint\b")

#: Accepts exactly the registered family prefixes (DET/SCH/EFF/FPR),
#: sourced from :mod:`repro.analysis.registry`.
_RULE_ID_RE = re.compile(
    r"^(?:" + "|".join(FAMILY_PREFIXES) + r")\d{3}$")

#: "DET, SCH, EFF or FPR" for the malformed-suppression message.
_PREFIX_PHRASE = ", ".join(FAMILY_PREFIXES[:-1]) + \
    " or " + FAMILY_PREFIXES[-1]

#: Compound statements never define a suppression span: a comment
#: inside an ``if`` body must not silence the whole block.
_COMPOUND_STMTS = (
    ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
    ast.If, ast.For, ast.AsyncFor, ast.While,
    ast.With, ast.AsyncWith, ast.Try,
)


def statement_spans(tree: ast.Module) -> Dict[int, Tuple[int, int]]:
    """line -> (first, last) physical line of its simple statement.

    Only *multi-line simple statements* (a call split over several
    lines, a parenthesised assignment...) get spans; single-line
    statements and compound-statement bodies keep per-line
    semantics.
    """
    spans: Dict[int, Tuple[int, int]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt) or \
                isinstance(node, _COMPOUND_STMTS):
            continue
        end = getattr(node, "end_lineno", None) or node.lineno
        if end <= node.lineno:
            continue
        for line in range(node.lineno, end + 1):
            spans[line] = (node.lineno, end)
    return spans


@dataclasses.dataclass(frozen=True)
class Suppression:
    """One parsed suppression comment."""

    line: int
    rules: Tuple[str, ...]
    reason: str


def parse_suppressions(
        source: str, path: str) -> Tuple[Dict[int, Suppression],
                                         List[Finding]]:
    """Parse every suppression comment in *source*.

    Returns ``(by_line, problems)``: the valid suppressions keyed by
    physical line number (1-based), and DET000 findings for malformed
    ones (missing reason, bad rule id, unparsable syntax).
    """
    by_line: Dict[int, Suppression] = {}
    problems: List[Finding] = []
    for lineno, column, text in _comments(source):
        if not _MENTION_RE.search(text):
            continue
        snippet = text.strip()
        match = _SUPPRESS_RE.search(text)
        if match is None:
            problems.append(Finding(
                rule=META_RULE, path=path, line=lineno,
                column=column + 1,
                message=("unparsable detlint comment; expected "
                         "'# detlint: ignore[DET00x] -- reason'"),
                snippet=snippet))
            continue
        rules = tuple(r.strip() for r in
                      match.group("rules").split(",") if r.strip())
        reason = (match.group("reason") or "").strip()
        bad = [r for r in rules if not _RULE_ID_RE.match(r)]
        if not rules or bad:
            problems.append(Finding(
                rule=META_RULE, path=path, line=lineno,
                column=column + 1,
                message=(f"invalid rule id(s) {bad or ['(none)']} in "
                         f"suppression; expected {_PREFIX_PHRASE} "
                         f"followed by three digits"),
                snippet=snippet))
            continue
        if not reason:
            problems.append(Finding(
                rule=META_RULE, path=path, line=lineno,
                column=column + 1,
                message=("suppression must give a reason: "
                         "'# detlint: ignore[...] -- why'"),
                snippet=snippet))
            continue
        by_line[lineno] = Suppression(line=lineno, rules=rules,
                                      reason=reason)
    return by_line, problems


def _comments(source: str) -> List[Tuple[int, int, str]]:
    """(line, column, text) of every comment token in *source*.

    Tokenising (rather than scanning raw lines) keeps suppression
    syntax inside docstrings and string literals -- like the examples
    in this very module -- from being parsed as live suppressions.
    Unterminated sources fall back to no comments; the engine
    reports the syntax error separately.
    """
    out: List[Tuple[int, int, str]] = []
    try:
        tokens = tokenize.generate_tokens(
            io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                out.append((token.start[0], token.start[1],
                            token.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return []
    return out


def apply_suppressions(
        findings: List[Finding],
        by_line: Dict[int, Suppression],
        path: str,
        lines: List[str],
        tree: Optional[ast.Module] = None,
        active_rules: Optional[Set[str]] = None,
) -> Tuple[List[Finding], List[Finding]]:
    """Filter *findings* through the suppression table.

    When *tree* is given, a suppression on any physical line of a
    multi-line simple statement covers findings anchored anywhere in
    that statement (a ``schedule(...)`` call split over four lines
    can carry its suppression on whichever line reads best).

    Returns ``(kept, unused)``: the findings that survived, plus
    DET000 findings for suppressions that silenced nothing (stale
    escapes should be deleted, not carried).  When *active_rules* is
    given, a suppression naming a rule that did not run this pass is
    never reported unused -- a narrowed ``--select`` must not flag
    every suppression for the rules it skipped.
    """
    spans = statement_spans(tree) if tree is not None else {}
    used: Set[int] = set()
    kept: List[Finding] = []
    for finding in findings:
        start, end = spans.get(finding.line,
                               (finding.line, finding.line))
        matched = None
        for lineno in range(start, end + 1):
            suppression = by_line.get(lineno)
            if (suppression is not None
                    and finding.rule in suppression.rules):
                matched = lineno
                break
        if matched is not None:
            used.add(matched)
        else:
            kept.append(finding)
    unused: List[Finding] = []
    for lineno, suppression in sorted(by_line.items()):
        if lineno in used:
            continue
        if active_rules is not None and \
                not all(r in active_rules for r in suppression.rules):
            continue
        snippet = (lines[lineno - 1].strip()
                   if 0 < lineno <= len(lines) else "")
        unused.append(Finding(
            rule=META_RULE, path=path, line=lineno, column=1,
            message=(f"unused suppression for "
                     f"{', '.join(suppression.rules)}: nothing on "
                     f"this statement triggers it (delete the "
                     f"comment)"),
            snippet=snippet))
    return kept, unused
