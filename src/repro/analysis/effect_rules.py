"""The effect-discipline rule family (EFF001..EFF008).

The durable work-queue backend's crash-invariance guarantee
(ARCHITECTURE.md §14) rests on conventions nothing enforced until
now: every durable write goes through atomic temp+rename with an
fsync before the rename, every queue mutation happens under an
immediate transaction with a lease-owner comparison, no campaign
work runs while a transaction is open, every random draw flows from
a *named* substream, frozen specs stay frozen once fingerprinted,
and dead letters are never swallowed.  The EFF rules check those
conventions statically on top of the interprocedural effect layer
(:mod:`repro.analysis.interproc.effects`).

========  ==========================================================
EFF001    durable-store write that does not flow through the atomic
          temp+``os.replace`` pattern (a crash leaves a truncated
          entry where a reader expects a verified one)
EFF002    rename into place without a transitive fsync: the rename
          is atomic but the *data* may still be in the page cache,
          so a power cut can publish an empty file under a valid
          name
EFF003    read-then-write on queue tables outside one immediate
          transaction (or under a deferred BEGIN): two workers can
          interleave between the read and the write
EFF004    queue-state UPDATE touching the lease life cycle with no
          lease-owner comparison anywhere in the function's SQL: an
          expired worker can clobber the item it lost
EFF005    campaign work (a run, an artifact-store call) executed
          while a DB transaction is open: the queue lock is held
          across a simulation, starving every other worker
EFF006    a random draw whose generator is not interprocedurally
          traceable to a named substream (``fleet.*``, ``vary.*``,
          ``faults.*``, ``tie_break.*``): the substream *name* is
          part of the seeded draw's identity
EFF007    ``object.__setattr__`` on a frozen spec outside
          ``__init__``/``__post_init__``: mutation after
          fingerprinting silently decouples content from key
EFF008    a broad ``except`` that swallows ``DeadLetterError`` (or
          sqlite integrity errors) on a fold path without
          re-raising: dead letters must surface, never vanish
========  ==========================================================
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.interproc.effects import (
    ADHOC_RNG_CONSTRUCTORS,
    DRAW_METHODS,
    FS_FSYNC,
    FS_RENAME,
    FS_WRITE,
    SIM_BUILD,
    WORK,
    WORK_QNAMES,
    FunctionEffects,
    is_stream_get,
    leading_literal,
    local_producer,
    sql_is_mutation,
    sql_mentions_table,
    sql_updated_table,
)
from repro.analysis.interproc.project import ProjectContext
from repro.analysis.rules import resolve_target
from repro.analysis.schedule_rules import ProjectRule

#: Modules holding durable-store state: writes here must be atomic
#: (EFF001) and synced before publication (EFF002).
_DURABLE_MODULES = ("repro.core.artifacts", "repro.core.queue",
                    "repro.analysis.baseline")

#: Modules that own queue transactions (EFF003/EFF004/EFF005/EFF008).
_QUEUE_MODULES = ("repro.core.queue",)

#: The queue's SQLite tables.
_QUEUE_TABLES = ("items", "meta")

#: module prefix -> substream-name prefixes its draws must use.
_SUBSTREAM_SCOPES: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("repro.core.fleet", ("fleet.",)),
    ("repro.vary", ("vary.",)),
    ("repro.faults", ("faults.",)),
    ("repro.sim.kernel", ("tie_break.",)),
)

#: What fixtures (and any non-``repro`` tree) must use: any of the
#: named families.  Fixtures always face the strictest rule form.
_ALL_PREFIXES = ("fleet.", "vary.", "faults.", "tie_break.")

#: Exception classes EFF008 refuses to see swallowed.
_GUARDED_RAISES = ("DeadLetterError",)

#: Constructors whose presence in-scope means a frozen-spec module.
_LIFECYCLE_METHODS = ("__init__", "__post_init__", "__new__",
                      "__setstate__")


def _module_in(module: str, prefixes: Tuple[str, ...]) -> bool:
    """Scope test: fixtures are always in, repro by prefix."""
    if not (module == "repro" or module.startswith("repro.")):
        return True
    return any(module == p or module.startswith(p + ".")
               for p in prefixes)


def _scoped(project: ProjectContext, prefixes: Tuple[str, ...]
            ) -> Iterator[FunctionEffects]:
    """Per-function summaries of every in-scope function, sorted."""
    per_function = project.effects.per_function
    for qname in sorted(per_function):
        fx = per_function[qname]
        if _module_in(fx.symbol.module, prefixes):
            yield fx


class EffectRule(ProjectRule):
    """Base for the EFF family: anchors findings at effect sites."""

    def site(self, project: ProjectContext, fx: FunctionEffects,
             node: ast.AST, message: str) -> Finding:
        return self.finding(
            project, fx.symbol.path, getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0) + 1, message)


class DurableWriteRule(EffectRule):
    """Durable writes must be atomic (temp file + rename)."""

    rule_id = "EFF001"
    title = "durable-store write outside the atomic rename pattern"
    rationale = (
        "A plain write into durable-store state can be interrupted "
        "by a crash, leaving a truncated file under the name readers "
        "trust.  Every durable write must flow through the temp+"
        "os.replace helper pattern (ArtifactStore.put, "
        "Baseline.save): write the temp file, fsync, rename into "
        "place.  Non-durable output (a report dumped for a human) is "
        "a one-line suppression with the reason written down.")

    def check_project(self, project: ProjectContext
                      ) -> Iterator[Finding]:
        for fx in _scoped(project, _DURABLE_MODULES):
            if not fx.write_opens:
                continue
            if FS_RENAME in project.effects.of(fx.symbol.qname):
                continue
            for node in fx.write_opens:
                yield self.site(
                    project, fx, node,
                    f"{fx.symbol.qname} writes durable-store state "
                    f"without the atomic temp+os.replace pattern; a "
                    f"crash mid-write leaves a truncated entry "
                    f"(write a temp file, fsync, os.replace -- see "
                    f"ArtifactStore.put)")


class FsyncBeforeRenameRule(EffectRule):
    """Published renames need their data on disk first."""

    rule_id = "EFF002"
    title = "rename into the store without a preceding fsync"
    rationale = (
        "os.replace makes the *name* change atomic, not the data: "
        "without an fsync on the temp file a power cut can publish "
        "a zero-length or partial file under a valid store path, "
        "which integrity checking then misreads as a plain miss "
        "forever.  Flush and os.fsync the handle before renaming.")

    def check_project(self, project: ProjectContext
                      ) -> Iterator[Finding]:
        for fx in _scoped(project, _DURABLE_MODULES):
            if not fx.renames:
                continue
            transitive = project.effects.of(fx.symbol.qname)
            if FS_WRITE not in transitive:
                continue  # a pure mover publishes nothing new
            if FS_FSYNC in transitive:
                continue
            for node in fx.renames:
                yield self.site(
                    project, fx, node,
                    f"{fx.symbol.qname} renames freshly written "
                    f"data into place without any fsync on the "
                    f"path; call handle.flush() + "
                    f"os.fsync(handle.fileno()) before the rename")


class TransactionDisciplineRule(EffectRule):
    """Queue-table read-then-write needs one immediate transaction."""

    rule_id = "EFF003"
    title = "queue-table access outside an immediate transaction"
    rationale = (
        "SQLite autocommit makes each statement atomic but not the "
        "sequence: a SELECT followed by an UPDATE outside one "
        "BEGIN IMMEDIATE window lets a second worker interleave "
        "between them (the double-lease bug).  A deferred BEGIN is "
        "no better -- it only takes the write lock at the first "
        "write, after the read raced.  Single-statement operations "
        "(heartbeat, complete) are fine as they stand.")

    def check_project(self, project: ProjectContext
                      ) -> Iterator[Finding]:
        for fx in _scoped(project, _QUEUE_MODULES):
            if not fx.db_calls:
                continue
            windows = fx.windows()
            queue_calls = [
                call for call in fx.db_calls
                if call.sql is not None and any(
                    sql_mentions_table(call.sql, table)
                    for table in _QUEUE_TABLES)]
            outside = [
                call for call in queue_calls
                if not any(w.start_line <= call.node.lineno
                           <= w.end_line for w in windows)]
            mutations = [call for call in outside
                         if sql_is_mutation(call.sql or "")]
            if mutations and len(outside) >= 2:
                yield self.site(
                    project, fx, mutations[0].node,
                    f"{fx.symbol.qname} reads and mutates queue "
                    f"tables in autocommit: wrap the sequence in "
                    f"one BEGIN IMMEDIATE .. COMMIT so no other "
                    f"worker can interleave")
            for window in windows:
                if window.immediate:
                    continue
                for call in queue_calls:
                    if window.start_line <= call.node.lineno \
                            <= window.end_line and \
                            sql_is_mutation(call.sql or ""):
                        yield self.site(
                            project, fx, call.node,
                            f"{fx.symbol.qname} mutates queue "
                            f"tables under a deferred BEGIN; use "
                            f"BEGIN IMMEDIATE so the write lock is "
                            f"taken before the reads")
                        break


class LeaseOwnerRule(EffectRule):
    """Lease-cycle updates must compare the lease owner."""

    rule_id = "EFF004"
    title = "lease-state UPDATE without a lease-owner comparison"
    rationale = (
        "complete/fail/heartbeat on a leased item must only honour "
        "the *current* owner: an UPDATE that matches on state alone "
        "lets a worker whose lease expired clobber the item after "
        "it was re-leased to someone else (the double-lease guard, "
        "backend.py).  Every leased-state UPDATE needs "
        "``lease_owner = ?`` in the function's SQL.")

    def check_project(self, project: ProjectContext
                      ) -> Iterator[Finding]:
        for fx in _scoped(project, _QUEUE_MODULES):
            sql_text = " ".join(
                call.sql for call in fx.db_calls
                if call.sql is not None).lower()
            if "lease_owner" in sql_text:
                continue
            for call in fx.db_calls:
                if call.sql is None:
                    continue
                if sql_updated_table(call.sql) == "items" and \
                        "'leased'" in call.sql.lower():
                    yield self.site(
                        project, fx, call.node,
                        f"{fx.symbol.qname} updates leased queue "
                        f"state without comparing lease_owner; an "
                        f"expired worker could clobber an item "
                        f"re-leased to someone else (add AND "
                        f"lease_owner = ? to the WHERE)")


class WorkInTransactionRule(EffectRule):
    """No campaign work while a DB transaction is open."""

    rule_id = "EFF005"
    title = "campaign work executed inside an open DB transaction"
    rationale = (
        "An immediate transaction holds the queue's write lock; "
        "running a simulation or an artifact-store operation inside "
        "one blocks every other worker's lease/heartbeat/complete "
        "for the duration of the run.  Commit first, then work -- "
        "the item life cycle (lease, execute, complete) is designed "
        "so no invariant needs them in one transaction.")

    def check_project(self, project: ProjectContext
                      ) -> Iterator[Finding]:
        for fx in _scoped(project, _QUEUE_MODULES):
            windows = fx.windows()
            if not windows:
                continue
            db_nodes = {id(call.node) for call in fx.db_calls}
            for call, qname in fx.calls:
                if qname is None or id(call) in db_nodes:
                    continue
                if not any(w.contains(call.lineno)
                           for w in windows):
                    continue
                transitive = project.effects.of(qname)
                if qname in WORK_QNAMES or transitive & {
                        WORK, SIM_BUILD, FS_WRITE}:
                    yield self.site(
                        project, fx, call,
                        f"{fx.symbol.qname} calls {qname} while a "
                        f"DB transaction is open: the queue lock "
                        f"is held across campaign work; COMMIT "
                        f"before executing the item")


class SubstreamDisciplineRule(EffectRule):
    """Every draw must trace to a named substream."""

    rule_id = "EFF006"
    title = "random draw not traceable to a named substream"
    rationale = (
        "Substream *names* are part of the seeded draw's identity "
        "(RandomStreams.get hashes the name into the seed): a draw "
        "from an ad-hoc generator -- or from a substream outside "
        "the module's family prefix (fleet.*, vary.*, faults.*, "
        "tie_break.*) -- is bit-stable only by accident of call "
        "order.  Name the stream, scoped to its family, and pass "
        "the generator down from there.")

    def _required(self, module: str) -> Optional[Tuple[str, ...]]:
        if not (module == "repro" or module.startswith("repro.")):
            return _ALL_PREFIXES
        for prefix, required in _SUBSTREAM_SCOPES:
            if module == prefix or module.startswith(prefix + "."):
                return required
        return None

    def check_project(self, project: ProjectContext
                      ) -> Iterator[Finding]:
        per_function = project.effects.per_function
        #: (drawing fx, draw node, positional index, param name)
        param_draws: List[Tuple[FunctionEffects, ast.Call, int,
                                str]] = []
        for qname in sorted(per_function):
            fx = per_function[qname]
            required = self._required(fx.symbol.module)
            if required is None:
                continue
            ctx = project.symbols.modules.get(fx.symbol.module)
            if ctx is None:
                continue
            for call, _target in fx.calls:
                if is_stream_get(call) and call.args:
                    name = leading_literal(fx.symbol, call.args[0])
                    if not name:
                        continue
                    if not any(name.startswith(p)
                               for p in required):
                        yield self.site(
                            project, fx, call,
                            f"substream name {name!r} in "
                            f"{fx.symbol.qname} is outside the "
                            f"module's family "
                            f"({', '.join(p + '*' for p in required)}"
                            f"): the name "
                            f"is part of the seeded draw identity, "
                            f"so scope it to its family")
                    continue
                if not (isinstance(call.func, ast.Attribute)
                        and call.func.attr in DRAW_METHODS
                        and isinstance(call.func.value, ast.Name)):
                    continue
                receiver = call.func.value.id
                producer = local_producer(fx.symbol, receiver)
                if producer is None:
                    index = _param_index(fx.symbol, receiver)
                    if index is not None:
                        param_draws.append(
                            (fx, call, index, receiver))
                    continue
                if _is_adhoc(ctx, producer):
                    yield self.site(
                        project, fx, call,
                        f"{fx.symbol.qname} draws from an ad-hoc "
                        f"generator constructed in place of a "
                        f"named substream; use streams.get("
                        f"'<family>.<purpose>') so the draw's "
                        f"identity is pinned by name")
        # Interprocedural half: a caller handing an ad-hoc generator
        # into a function that draws from the parameter.
        for fx, draw, index, param in param_draws:
            for caller_q in sorted(per_function):
                caller = per_function[caller_q]
                ctx = project.symbols.modules.get(
                    caller.symbol.module)
                if ctx is None:
                    continue
                for call, target in caller.calls:
                    if target != fx.symbol.qname:
                        continue
                    arg = _argument_for(call, index, param)
                    if arg is None:
                        continue
                    if isinstance(arg, ast.Name):
                        arg = local_producer(
                            caller.symbol, arg.id) or arg
                    if _is_adhoc(ctx, arg):
                        yield self.site(
                            project, caller, call,
                            f"{caller.symbol.qname} passes an "
                            f"ad-hoc generator into "
                            f"{fx.symbol.qname}, which draws from "
                            f"it (parameter {param!r}); hand it a "
                            f"named substream instead")


def _is_adhoc(ctx, expr: ast.expr) -> bool:
    """Whether *expr* constructs an anonymous generator."""
    return isinstance(expr, ast.Call) and \
        resolve_target(ctx, expr.func) in ADHOC_RNG_CONSTRUCTORS


def _param_index(symbol, name: str) -> Optional[int]:
    """Positional index of parameter *name*, self/cls excluded."""
    node = symbol.node
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return None
    params = [arg.arg for arg in node.args.args]
    if symbol.cls is not None and params and \
            params[0] in ("self", "cls"):
        params = params[1:]
    try:
        return params.index(name)
    except ValueError:
        return None


def _argument_for(call: ast.Call, index: int,
                  param: str) -> Optional[ast.expr]:
    """The call argument bound to parameter (*index*, *param*)."""
    for keyword in call.keywords:
        if keyword.arg == param:
            return keyword.value
    if len(call.args) > index:
        return call.args[index]
    return None


class FrozenMutationRule(EffectRule):
    """Frozen specs stay frozen once constructed."""

    rule_id = "EFF007"
    title = "frozen dataclass mutated after construction"
    rationale = (
        "object.__setattr__ outside __init__/__post_init__ rewrites "
        "a frozen spec *after* its fingerprint may have been taken, "
        "silently decoupling cache keys, queue item ids and coverage "
        "reports from the content they were computed over.  Build a "
        "new instance (dataclasses.replace) instead.")

    def check_project(self, project: ProjectContext
                      ) -> Iterator[Finding]:
        for qname in sorted(project.effects.per_function):
            fx = project.effects.per_function[qname]
            if fx.symbol.name in _LIFECYCLE_METHODS:
                continue
            for call, _target in fx.calls:
                func = call.func
                if isinstance(func, ast.Attribute) and \
                        func.attr == "__setattr__" and \
                        isinstance(func.value, ast.Name) and \
                        func.value.id == "object":
                    yield self.site(
                        project, fx, call,
                        f"{fx.symbol.qname} mutates a frozen "
                        f"instance via object.__setattr__ outside "
                        f"construction; fingerprints taken earlier "
                        f"no longer describe it -- use "
                        f"dataclasses.replace to build a new spec")


class SwallowedDeadLetterRule(EffectRule):
    """Dead letters and integrity errors must surface."""

    rule_id = "EFF008"
    title = "broad except swallows dead-letter/integrity errors"
    rationale = (
        "DeadLetterError is the queue's way of saying the campaign "
        "result would be *wrong* (items exhausted their retries); "
        "sqlite integrity errors mean the durable state itself is "
        "suspect.  A bare/Exception handler on such a path that "
        "does not re-raise converts a loud, correct failure into a "
        "silently incomplete fold.  Catch the specific classes you "
        "can handle; let the rest propagate.")

    def check_project(self, project: ProjectContext
                      ) -> Iterator[Finding]:
        for fx in _scoped(project, _QUEUE_MODULES):
            call_targets = {id(call): target
                            for call, target in fx.calls}
            db_nodes = {id(call.node) for call in fx.db_calls}
            for node in ast.walk(fx.symbol.node):
                if not isinstance(node, ast.Try):
                    continue
                reason = self._guarded_reason(
                    project, node, call_targets, db_nodes)
                if reason is None:
                    continue
                for handler in node.handlers:
                    if not _is_broad(handler):
                        continue
                    if any(isinstance(sub, ast.Raise)
                           for stmt in handler.body
                           for sub in ast.walk(stmt)):
                        continue
                    yield self.site(
                        project, fx, handler,
                        f"broad except in {fx.symbol.qname} "
                        f"swallows {reason} without re-raising; "
                        f"dead letters must surface, not fold "
                        f"into a silently incomplete result")

    def _guarded_reason(self, project: ProjectContext,
                        node: ast.Try,
                        call_targets: Dict[int, Optional[str]],
                        db_nodes: Set[int]) -> Optional[str]:
        for stmt in node.body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Raise) and \
                        sub.exc is not None:
                    exc = sub.exc.func if \
                        isinstance(sub.exc, ast.Call) else sub.exc
                    name = exc.attr if \
                        isinstance(exc, ast.Attribute) else \
                        getattr(exc, "id", None)
                    if name in _GUARDED_RAISES:
                        return f"a direct {name}"
                if not isinstance(sub, ast.Call):
                    continue
                if id(sub) in db_nodes:
                    return ("sqlite integrity errors (the try "
                            "body executes SQL)")
                target = call_targets.get(id(sub))
                if target is None:
                    continue
                raised = project.effects.raises_of(target)
                for guarded in _GUARDED_RAISES:
                    if guarded in raised:
                        return f"{guarded} (raised below {target})"
        return None


def _is_broad(handler: ast.ExceptHandler) -> bool:
    """Bare except, or one naming Exception/BaseException."""
    if handler.type is None:
        return True
    names: List[ast.expr] = [handler.type]
    if isinstance(handler.type, ast.Tuple):
        names = list(handler.type.elts)
    for expr in names:
        name = expr.attr if isinstance(expr, ast.Attribute) \
            else getattr(expr, "id", None)
        if name in ("Exception", "BaseException"):
            return True
    return False


_EFFECT_RULES: Tuple[ProjectRule, ...] = (
    DurableWriteRule(),
    FsyncBeforeRenameRule(),
    TransactionDisciplineRule(),
    LeaseOwnerRule(),
    WorkInTransactionRule(),
    SubstreamDisciplineRule(),
    FrozenMutationRule(),
    SwallowedDeadLetterRule(),
)


def all_effect_rules() -> Tuple[ProjectRule, ...]:
    """Every registered effect rule, in rule-id order."""
    return tuple(sorted(_EFFECT_RULES, key=lambda r: r.rule_id))


def effect_rule_ids() -> Tuple[str, ...]:
    """The registered effect rule ids, sorted."""
    return tuple(rule.rule_id for rule in all_effect_rules())


__all__ = [
    "DurableWriteRule",
    "EffectRule",
    "FrozenMutationRule",
    "FsyncBeforeRenameRule",
    "LeaseOwnerRule",
    "SubstreamDisciplineRule",
    "SwallowedDeadLetterRule",
    "TransactionDisciplineRule",
    "WorkInTransactionRule",
    "all_effect_rules",
    "effect_rule_ids",
]
