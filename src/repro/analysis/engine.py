"""The linting engine: file discovery, rule dispatch, filtering.

:func:`lint_paths` is the single entry point used by the CLI, the
``tools/detlint`` script and the test suite.  It walks the given
files/directories in sorted order, parses each Python file once,
runs every selected rule over the shared :class:`ModuleContext`,
then filters the findings through per-line suppressions and the
optional baseline.  The result is fully deterministic: findings are
sorted by (path, line, column, rule) and paths are normalised to
forward slashes, so the same tree always produces the same report
bytes on every platform.
"""

from __future__ import annotations

import ast
import dataclasses
import os
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.analysis.baseline import Baseline
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, all_rules, build_context, rule_ids
from repro.analysis.suppressions import (
    META_RULE,
    apply_suppressions,
    parse_suppressions,
)


@dataclasses.dataclass
class LintResult:
    """Everything one lint invocation produced."""

    #: Findings that gate (new, unsuppressed), in report order.
    findings: List[Finding]
    #: Findings matched by the baseline (informational).
    grandfathered: List[Finding]
    #: How many Python files were parsed and checked.
    files_checked: int

    @property
    def exit_code(self) -> int:
        """0 when clean, 1 when any finding gates."""
        return 1 if self.findings else 0


def discover_files(paths: Sequence[str]) -> List[str]:
    """Expand *paths* to a sorted list of ``.py`` files.

    Directories are walked recursively (``__pycache__``, hidden
    directories and non-Python files skipped); explicit file paths
    are taken as-is so fixtures with unusual names stay lintable.
    """
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs
                    if d != "__pycache__" and not d.startswith("."))
                for name in sorted(files):
                    if name.endswith(".py"):
                        out.append(os.path.join(root, name))
        else:
            out.append(path)
    return sorted(dict.fromkeys(normalise_path(p) for p in out))


def normalise_path(path: str) -> str:
    """Relative-to-cwd, forward-slash form of *path*."""
    try:
        rel = os.path.relpath(path)
    except ValueError:  # pragma: no cover - Windows drive mismatch
        rel = path
    if not rel.startswith(".."):
        path = rel
    return path.replace(os.sep, "/")


def module_name_for(path: str) -> str:
    """Best-effort dotted module name for allowlist matching.

    ``src/repro/sim/kernel.py`` maps to ``repro.sim.kernel``; paths
    outside a ``src`` root fall back to their path-derived dotted
    name, which deliberately never collides with the ``repro.*``
    allowlists (fixtures must face the strictest version of every
    rule).
    """
    parts = path.replace(os.sep, "/").split("/")
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts[-1] == "__init__" and len(parts) > 1:
        parts = parts[:-1]
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    elif parts and parts[0] == "repro":
        pass
    return ".".join(part for part in parts if part)


def _selected_rules(select: Optional[Iterable[str]],
                    ignore: Optional[Iterable[str]]) -> List[Rule]:
    known = set(rule_ids())
    chosen = set(select) if select else set(known)
    dropped = set(ignore) if ignore else set()
    unknown = sorted((chosen | dropped) - known - {META_RULE})
    if unknown:
        raise ValueError(
            f"unknown rule id(s): {', '.join(unknown)}; known rules "
            f"are {', '.join(sorted(known))}")
    wanted = chosen - dropped
    return [rule for rule in all_rules() if rule.rule_id in wanted]


def lint_source(source: str, path: str,
                rules: Optional[Sequence[Rule]] = None,
                warn_suppressions: bool = True,
                ) -> List[Finding]:
    """Lint one in-memory source text (the unit-test entry point)."""
    path = normalise_path(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [Finding(
            rule=META_RULE, path=path, line=error.lineno or 1,
            column=(error.offset or 0) + 1,
            message=f"syntax error: {error.msg}",
            snippet=(error.text or "").strip())]
    ctx = build_context(path, module_name_for(path), source, tree)
    raw: List[Finding] = []
    for rule in (rules if rules is not None else all_rules()):
        if rule.exempt(ctx):
            continue
        raw.extend(rule.check(ctx))
    suppressions, problems = parse_suppressions(source, path)
    kept, unused = apply_suppressions(raw, suppressions, path,
                                      ctx.lines)
    findings = kept + problems
    if warn_suppressions:
        findings += unused
    return sorted(findings, key=Finding.sort_key)


def lint_paths(paths: Sequence[str],
               select: Optional[Iterable[str]] = None,
               ignore: Optional[Iterable[str]] = None,
               baseline: Optional[Baseline] = None,
               warn_suppressions: bool = True,
               ) -> LintResult:
    """Lint every Python file under *paths*.

    *select* / *ignore* narrow the rule set by id; *baseline*
    subtracts grandfathered findings (they are still reported, as
    informational).  Unknown rule ids raise ValueError.
    """
    rules = _selected_rules(select, ignore)
    files = discover_files(paths)
    findings: List[Finding] = []
    for path in files:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        findings.extend(lint_source(
            source, path, rules=rules,
            warn_suppressions=warn_suppressions))
    findings.sort(key=Finding.sort_key)
    grandfathered: List[Finding] = []
    if baseline is not None:
        findings, grandfathered = baseline.filter(findings)
    return LintResult(findings=findings,
                      grandfathered=grandfathered,
                      files_checked=len(files))


def count_by_rule(findings: Sequence[Finding]
                  ) -> List[Tuple[str, int]]:
    """(rule id, count) pairs, sorted by rule id."""
    counts: dict = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return sorted(counts.items())
