"""The linting engine: file discovery, rule dispatch, filtering.

:func:`lint_paths` is the single entry point used by the CLI, the
``tools/detlint`` script and the test suite.  It walks the given
files/directories in sorted order, parses each Python file once,
runs every selected per-file rule over the shared
:class:`ModuleContext`, then runs the *project* rules (the SCH, EFF
and FPR families) once over all parsed modules together, and finally filters
everything through statement-level suppressions and the optional
baseline.  The result is fully deterministic: findings are sorted by
(path, line, column, rule) and paths are normalised to forward
slashes, so the same tree always produces the same report bytes on
every platform.
"""

from __future__ import annotations

import ast
import dataclasses
import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.baseline import Baseline
from repro.analysis.findings import Finding
from repro.analysis.registry import (
    expand_selection,
    family_summary,
    registered_project_rules,
    registered_rule_ids,
    rule_families,
)
from repro.analysis.rules import (
    ModuleContext,
    Rule,
    all_rules,
    build_context,
)
from repro.analysis.schedule_rules import (
    ProjectRule,
    check_project_rules,
)
from repro.analysis.suppressions import (
    META_RULE,
    Suppression,
    apply_suppressions,
    parse_suppressions,
)


#: The rule families, for error messages and reports.  One line per
#: family: (id range, one-phrase subject).  Generated from the
#: single registry (:mod:`repro.analysis.registry`).
RULE_FAMILIES: Tuple[Tuple[str, str], ...] = tuple(
    (family.span, family.subject) for family in rule_families())


class UnknownRuleError(ValueError):
    """A --select/--ignore id that matches no registered rule.

    A usage error, not a lint finding: the CLI maps it to exit
    code 2 so CI can tell a typo'd rule id from real findings.
    """


@dataclasses.dataclass
class LintResult:
    """Everything one lint invocation produced."""

    #: Findings that gate (new, unsuppressed), in report order.
    findings: List[Finding]
    #: Findings matched by the baseline (informational).
    grandfathered: List[Finding]
    #: How many Python files were parsed and checked.
    files_checked: int
    #: Suppressions that silenced nothing (DET000 meta-findings with
    #: file+line), reported separately so the JSON artifact stays
    #: actionable even when they are configured not to gate.
    unused_suppressions: List[Finding] = dataclasses.field(
        default_factory=list)

    @property
    def exit_code(self) -> int:
        """0 when clean, 1 when any finding gates."""
        return 1 if self.findings else 0


def discover_files(paths: Sequence[str]) -> List[str]:
    """Expand *paths* to a sorted list of ``.py`` files.

    Directories are walked recursively (``__pycache__``, hidden
    directories and non-Python files skipped); explicit file paths
    are taken as-is so fixtures with unusual names stay lintable.
    """
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs
                    if d != "__pycache__" and not d.startswith("."))
                for name in sorted(files):
                    if name.endswith(".py"):
                        out.append(os.path.join(root, name))
        else:
            out.append(path)
    return sorted(dict.fromkeys(normalise_path(p) for p in out))


def normalise_path(path: str) -> str:
    """Relative-to-cwd, forward-slash form of *path*."""
    try:
        rel = os.path.relpath(path)
    except ValueError:  # pragma: no cover - Windows drive mismatch
        rel = path
    if not rel.startswith(".."):
        path = rel
    return path.replace(os.sep, "/")


def module_name_for(path: str) -> str:
    """Best-effort dotted module name for allowlist matching.

    ``src/repro/sim/kernel.py`` maps to ``repro.sim.kernel``; paths
    outside a ``src`` root fall back to their path-derived dotted
    name, which deliberately never collides with the ``repro.*``
    allowlists (fixtures must face the strictest version of every
    rule).
    """
    parts = path.replace(os.sep, "/").split("/")
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts[-1] == "__init__" and len(parts) > 1:
        parts = parts[:-1]
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    elif parts and parts[0] == "repro":
        pass
    return ".".join(part for part in parts if part)


def _selected_rules(
        select: Optional[Iterable[str]],
        ignore: Optional[Iterable[str]],
) -> Tuple[List[Rule], List[ProjectRule]]:
    """(per-file rules, project rules) matching select/ignore.

    A bare family prefix ("FPR") in either list expands to every
    rule of that family; unknown ids raise with the registry's
    family summary.
    """
    registered_project = registered_project_rules()
    known = set(registered_rule_ids())
    chosen = expand_selection(list(select)) if select else set(known)
    dropped = expand_selection(list(ignore)) if ignore else set()
    unknown = sorted((chosen | dropped) - known - {META_RULE})
    if unknown:
        raise UnknownRuleError(
            f"unknown rule id(s): {', '.join(unknown)}; valid "
            f"families are {family_summary()}")
    wanted = chosen - dropped
    file_rules = [rule for rule in all_rules()
                  if rule.rule_id in wanted]
    project_rules = [rule for rule in registered_project
                     if rule.rule_id in wanted]
    return file_rules, project_rules


@dataclasses.dataclass
class _FileState:
    """One parsed file's raw findings, pre-suppression."""

    path: str
    ctx: Optional[ModuleContext]
    raw: List[Finding]
    suppressions: Dict[int, Suppression]
    problems: List[Finding]


def _check_file(source: str, path: str,
                rules: Sequence[Rule]) -> _FileState:
    """Parse *source* and run the per-file rules over it."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return _FileState(path=path, ctx=None, raw=[Finding(
            rule=META_RULE, path=path, line=error.lineno or 1,
            column=(error.offset or 0) + 1,
            message=f"syntax error: {error.msg}",
            snippet=(error.text or "").strip())],
            suppressions={}, problems=[])
    ctx = build_context(path, module_name_for(path), source, tree)
    raw: List[Finding] = []
    for rule in rules:
        if rule.exempt(ctx):
            continue
        raw.extend(rule.check(ctx))
    suppressions, problems = parse_suppressions(source, path)
    return _FileState(path=path, ctx=ctx, raw=raw,
                      suppressions=suppressions, problems=problems)


def _finalise(state: _FileState, extra: Sequence[Finding],
              warn_suppressions: bool,
              active_rules: Optional[set] = None
              ) -> Tuple[List[Finding], List[Finding]]:
    """Apply suppressions to per-file plus project findings.

    Returns ``(findings, unused)``: the gating findings (including
    the unused-suppression meta-findings when they are configured to
    gate) plus the unused-suppression findings on their own, so the
    JSON report can list them with file+line either way.
    """
    if state.ctx is None:
        return sorted(state.raw, key=Finding.sort_key), []
    kept, unused = apply_suppressions(
        state.raw + list(extra), state.suppressions, state.path,
        state.ctx.lines, state.ctx.tree, active_rules)
    findings = kept + state.problems
    if warn_suppressions:
        findings += unused
    return sorted(findings, key=Finding.sort_key), \
        sorted(unused, key=Finding.sort_key)


def lint_source(source: str, path: str,
                rules: Optional[Sequence[Rule]] = None,
                warn_suppressions: bool = True,
                ) -> List[Finding]:
    """Lint one in-memory source text (the unit-test entry point).

    Runs the per-file rules only; project rules need the whole tree
    and run in :func:`lint_paths`.
    """
    path = normalise_path(path)
    active = rules if rules is not None else all_rules()
    state = _check_file(source, path, active)
    findings, _unused = _finalise(state, (), warn_suppressions,
                                  {rule.rule_id for rule in active})
    return findings


def lint_paths(paths: Sequence[str],
               select: Optional[Iterable[str]] = None,
               ignore: Optional[Iterable[str]] = None,
               baseline: Optional[Baseline] = None,
               warn_suppressions: bool = True,
               ) -> LintResult:
    """Lint every Python file under *paths*.

    *select* / *ignore* narrow the rule set by id; *baseline*
    subtracts grandfathered findings (they are still reported, as
    informational).  Unknown rule ids raise
    :class:`UnknownRuleError` naming the valid families.

    Per-file rules run first, file by file; then the project rules
    (SCH, EFF and FPR families) run once over every successfully
    parsed module.  Suppressions are applied *after* both passes, so a
    suppression comment can silence a project finding and
    unused-suppression accounting sees the complete picture.
    """
    file_rules, project_rules = _selected_rules(select, ignore)
    files = discover_files(paths)
    states: List[_FileState] = []
    for path in files:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        states.append(_check_file(source, path, file_rules))
    contexts = [s.ctx for s in states if s.ctx is not None]
    grouped = check_project_rules(tuple(project_rules), contexts)
    active = {rule.rule_id for rule in file_rules} \
        | {rule.rule_id for rule in project_rules}
    findings: List[Finding] = []
    unused: List[Finding] = []
    for state in states:
        state_findings, state_unused = _finalise(
            state, grouped.get(state.path, []), warn_suppressions,
            active)
        findings.extend(state_findings)
        unused.extend(state_unused)
    findings.sort(key=Finding.sort_key)
    unused.sort(key=Finding.sort_key)
    grandfathered: List[Finding] = []
    if baseline is not None:
        findings, grandfathered = baseline.filter(findings)
    return LintResult(findings=findings,
                      grandfathered=grandfathered,
                      files_checked=len(files),
                      unused_suppressions=unused)


def count_by_rule(findings: Sequence[Finding]
                  ) -> List[Tuple[str, int]]:
    """(rule id, count) pairs, sorted by rule id."""
    counts: dict = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return sorted(counts.items())
