"""The fingerprint- and serialization-discipline family (FPR001..FPR008).

Every caching claim in the testbed -- bit-identical campaigns served
from the CACHE_FORMAT v5 artifact store, crash-invariant queue folds,
salted variation caches -- reduces to one convention: every
behavior-affecting field of a frozen config reaches its fingerprint
and survives ``to_dict``/``from_dict`` unchanged.  A field that leaks
out of that loop produces the worst failure mode a cached engine has:
a *stale hit*, where two configs that behave differently share a
cache key and one silently serves the other's results.  The FPR rules
check the convention statically on top of the serialization dataflow
layer (:mod:`repro.analysis.interproc.serialization`); the runtime
fingerprint-sensitivity battery (``tests/test_fingerprint_battery``)
is their dynamic cross-check.

========  ==========================================================
FPR001    frozen-config dataclass field missing from a handwritten
          ``to_dict``: serialization silently drops the field, so a
          round-tripped config is not the config that ran
FPR002    ``from_dict`` drops or silently defaults a key that
          ``to_dict`` always emits (asymmetric round-trip): a stale
          or truncated payload is accepted as current instead of
          rejected
FPR003    field read on an execution path but absent from the
          fingerprint payload: two configs differing only in that
          field share a cache key (the stale-cache hazard)
FPR004    volatile, execution-irrelevant value (worker counts,
          output paths, ``tie_break``) folded into a fingerprint:
          cannot change results, so it only splits the cache
          (cache-busting churn)
FPR005    non-canonical serialization feeding a fingerprint:
          ``json.dumps`` without ``sort_keys=True`` or unsorted dict
          iteration makes equal payloads hash differently
FPR006    named-substream collision: two call sites can construct
          the same ``repro.sim.randomness`` substream name, so two
          "independent" streams draw identical values
FPR007    cache read path that parses a durable entry without
          verifying ``CACHE_FORMAT`` or the embedded digest: a stale
          or truncated entry is served as a hit
FPR008    enqueue/store key derived from anything other than the
          canonical fingerprint helper: ad-hoc keys break
          content-addressing and collide across configs
========  ==========================================================
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.effect_rules import _module_in
from repro.analysis.findings import Finding
from repro.analysis.interproc.effects import local_producer
from repro.analysis.interproc.project import ProjectContext
from repro.analysis.interproc.serialization import (
    COVERS_ALL,
    ClassSerialization,
    FingerprintUse,
    StreamSite,
)
from repro.analysis.interproc.symbols import FunctionSymbol, _dotted
from repro.analysis.schedule_rules import ProjectRule

#: Modules whose read paths face FPR007: the durable stores whose
#: entries carry a format tag and an embedded digest.
_DURABLE_MODULES = ("repro.core.artifacts", "repro.core.queue",
                    "repro.analysis.baseline")

#: Field names that never change execution results: folding one into
#: a fingerprint splits the cache without protecting anything
#: (FPR004).  Exact-name matching -- ``path_loss_exponent`` is
#: physics, not a path.
VOLATILE_FIELDS = frozenset((
    "tie_break", "workers", "n_workers", "num_workers", "max_workers",
    "cache_dir", "queue_dir", "output_dir", "output", "out_path",
    "path", "root", "tmpdir", "tmp_dir", "verbose", "progress",
    "log_level",
))

#: Callables that mark a function as fingerprint-feeding (FPR005):
#: anything serialized inside one ends up hashed.
_HASH_SINKS = frozenset((
    "spec_fingerprint", "canonical_json", "sha256", "sha1", "md5",
    "blake2b", "blake2s",
))


def _classes(project: ProjectContext) -> Iterator[ClassSerialization]:
    serialization = project.serialization
    for qname in sorted(serialization.classes):
        yield serialization.classes[qname]


def _call_name(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


class FingerprintRule(ProjectRule):
    """Base for the FPR family: anchors findings at dataflow sites."""

    def at(self, project: ProjectContext, symbol: FunctionSymbol,
           node: ast.AST, message: str) -> Finding:
        return self.finding(
            project, symbol.path, getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0) + 1, message)


class FieldMissingFromToDictRule(FingerprintRule):
    """FPR001: frozen-config field a handwritten to_dict drops."""

    rule_id = "FPR001"
    title = "frozen-config field missing from to_dict"
    rationale = (
        "A handwritten to_dict that skips a dataclass field makes "
        "serialization lossy: a config round-tripped through JSON is "
        "no longer the config that ran, and any consumer of the "
        "payload (queue meta, variation reports) sees a truncated "
        "spec.  Emit every field, or delegate to dataclasses.asdict "
        "so new fields cannot be forgotten.")

    def check_project(self, project: ProjectContext
                      ) -> Iterator[Finding]:
        for serial in _classes(project):
            if not (serial.is_dataclass and serial.frozen):
                continue
            if serial.to_dict is None or serial.to_dict_dynamic:
                continue
            emitted = serial.emitted
            for field in serial.fields:
                if field in emitted:
                    continue
                yield self.at(
                    project, serial.to_dict, serial.to_dict.node,
                    f"frozen config {serial.symbol.name} field "
                    f"'{field}' is missing from to_dict: the "
                    f"round-trip silently drops it -- emit every "
                    f"dataclass field or delegate to "
                    f"dataclasses.asdict")


class AsymmetricRoundTripRule(FingerprintRule):
    """FPR002: from_dict drops or defaults a key to_dict emits."""

    rule_id = "FPR002"
    title = "from_dict drops or defaults a key to_dict emits"
    rationale = (
        "to_dict and from_dict are one contract: every key the "
        "writer always emits, the reader must require.  A key read "
        "with a silent .get(key, default) accepts a payload from "
        "*before* the field existed as if it were current -- the "
        "exact shape of a stale-cache bug.  Read emitted keys "
        "strictly (data[key]) so absence is an error, and reject "
        "unknown keys so typos surface.")

    def check_project(self, project: ProjectContext
                      ) -> Iterator[Finding]:
        for serial in _classes(project):
            if serial.to_dict is None or serial.from_dict is None:
                continue
            if serial.to_dict_dynamic or serial.from_dict_dynamic:
                continue
            read_any = serial.reads_strict or serial.reads_defaulted
            if not read_any:
                # A fully delegating from_dict: nothing to judge.
                continue
            strict = set(serial.reads_strict)
            for key in serial.emits_always:
                if key in strict:
                    continue
                defaulted = serial.reads_defaulted.get(key)
                if defaulted is not None:
                    yield self.at(
                        project, serial.from_dict, defaulted,
                        f"{serial.symbol.name}.from_dict defaults "
                        f"key '{key}' that to_dict always emits: a "
                        f"payload missing it is silently accepted "
                        f"as current -- read it strictly "
                        f"(data[{key!r}]) so absence is an error")
                else:
                    yield self.at(
                        project, serial.from_dict,
                        serial.from_dict.node,
                        f"{serial.symbol.name}.from_dict never "
                        f"reads key '{key}' that to_dict emits: "
                        f"the round-trip silently drops it")


class FingerprintOmissionRule(FingerprintRule):
    """FPR003: a read field missing from the fingerprint payload."""

    rule_id = "FPR003"
    title = "field read on an execution path but not fingerprinted"
    rationale = (
        "A fingerprint must cover every field execution can observe: "
        "a field that is read but not hashed means two configs that "
        "behave differently share one cache key, and the second "
        "serves the first's results as a stale hit.  Cover the whole "
        "config (dataclasses.asdict / a complete to_dict), or "
        "document why the field cannot affect results.")

    def check_project(self, project: ProjectContext
                      ) -> Iterator[Finding]:
        classes = project.serialization.classes
        for use in project.serialization.fingerprints:
            for qname in sorted(use.coverage):
                covered = use.coverage[qname]
                if covered == COVERS_ALL:
                    continue
                serial = classes.get(qname)
                if serial is None or not serial.is_dataclass:
                    continue
                assert isinstance(covered, frozenset)
                missing = set(serial.fields) - covered
                for field in sorted(missing & serial.reads):
                    yield self.at(
                        project, use.symbol, use.node,
                        f"field {serial.symbol.name}.{field} is "
                        f"read on an execution path but absent from "
                        f"this fingerprint payload: two configs "
                        f"differing only in '{field}' share a cache "
                        f"key (stale-cache hazard)")


class VolatileFingerprintInputRule(FingerprintRule):
    """FPR004: execution-irrelevant value folded into a fingerprint."""

    rule_id = "FPR004"
    title = "volatile value folded into a fingerprint"
    rationale = (
        "Worker counts, output paths and tie-break labels cannot "
        "change what a run computes (the tie-audit proves policies "
        "bit-identical), so hashing them only splits the cache: "
        "identical work re-runs because an irrelevant knob moved.  "
        "Exclude volatile fields from the payload -- or, where a "
        "field is deliberately cache-separating, suppress with the "
        "reason written down.")

    def check_project(self, project: ProjectContext
                      ) -> Iterator[Finding]:
        classes = project.serialization.classes
        for use in project.serialization.fingerprints:
            for qname in sorted(use.coverage):
                serial = classes.get(qname)
                if serial is None or not serial.is_dataclass:
                    continue
                covered = use.coverage[qname]
                if covered == COVERS_ALL:
                    names = frozenset(serial.fields)
                else:
                    assert isinstance(covered, frozenset)
                    names = covered & frozenset(serial.fields)
                for field in sorted(names & VOLATILE_FIELDS):
                    yield self.at(
                        project, use.symbol, use.node,
                        f"volatile field {serial.symbol.name}."
                        f"{field} is folded into the fingerprint: "
                        f"it cannot change results, so hashing it "
                        f"only splits the cache -- exclude it from "
                        f"the payload or suppress with the reason "
                        f"written down")


class NonCanonicalSerializationRule(FingerprintRule):
    """FPR005: non-canonical serialization feeding a fingerprint."""

    rule_id = "FPR005"
    title = "non-canonical serialization feeds a fingerprint"
    rationale = (
        "Hashes are only stable over canonical bytes.  json.dumps "
        "without sort_keys=True serializes dicts in insertion order, "
        "and bare .items()/.keys()/.values() iteration feeding a "
        "digest does the same: two equal payloads built in different "
        "orders hash differently, so caches miss (or worse, a "
        "reordered payload is treated as new work).  Use "
        "canonical_json, or sort_keys=True and sorted() iteration.")

    def check_project(self, project: ProjectContext
                      ) -> Iterator[Finding]:
        functions = project.symbols.functions
        for qname in sorted(functions):
            symbol = functions[qname]
            if not self._feeds_hash(symbol):
                continue
            for node, message in self._violations(symbol):
                yield self.at(project, symbol, node, message)

    @staticmethod
    def _feeds_hash(symbol: FunctionSymbol) -> bool:
        for sub in ast.walk(symbol.node):
            if isinstance(sub, ast.Call) and \
                    _call_name(sub) in _HASH_SINKS:
                return True
        return False

    def _violations(self, symbol: FunctionSymbol
                    ) -> Iterator[Tuple[ast.AST, str]]:
        iters: List[ast.expr] = []
        for sub in ast.walk(symbol.node):
            if isinstance(sub, (ast.For, ast.AsyncFor)):
                iters.append(sub.iter)
            elif isinstance(sub, (ast.ListComp, ast.SetComp,
                                  ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in sub.generators)
            elif isinstance(sub, ast.Call):
                dotted = _dotted(sub.func)
                if dotted in ("json.dumps", "dumps") and \
                        not any(kw.arg == "sort_keys"
                                for kw in sub.keywords):
                    yield sub, (
                        "json.dumps without sort_keys=True feeds a "
                        "fingerprint: dicts serialize in insertion "
                        "order, so equal payloads can hash "
                        "differently -- use canonical_json or pass "
                        "sort_keys=True")
        for expr in iters:
            call = self._unsorted_view(expr)
            if call is not None:
                assert isinstance(call.func, ast.Attribute)
                yield call, (
                    f"unsorted .{call.func.attr}() iteration feeds "
                    f"a fingerprint: insertion order leaks into the "
                    f"digest -- wrap the iterable in sorted(...)")

    @staticmethod
    def _unsorted_view(expr: ast.expr) -> Optional[ast.Call]:
        """The bare dict-view call iterated, if not sorted()-wrapped."""
        target = expr
        if isinstance(target, ast.Call) and \
                isinstance(target.func, ast.Name) and \
                target.func.id in ("list", "tuple") and target.args:
            target = target.args[0]
        if isinstance(target, ast.Call) and \
                isinstance(target.func, ast.Attribute) and \
                target.func.attr in ("items", "keys", "values"):
            return target
        return None


class SubstreamCollisionRule(FingerprintRule):
    """FPR006: two call sites construct one substream name."""

    rule_id = "FPR006"
    title = "named-substream collision"
    rationale = (
        "RandomStreams.get(name) derives the stream seed from the "
        "name: two sites constructing the same name on the same "
        "streams object draw *identical* values, silently "
        "correlating what should be independent randomness.  Every "
        "substream name must be unique per consumer; scope shared "
        "prefixes with a per-consumer suffix.")

    def check_project(self, project: ProjectContext
                      ) -> Iterator[Finding]:
        groups: Dict[Tuple[str, str, str, str],
                     List[StreamSite]] = {}
        for site in project.serialization.streams:
            key = (site.symbol.module, site.symbol.cls or "",
                   site.receiver, site.name)
            groups.setdefault(key, []).append(site)
        for key in sorted(groups):
            sites = groups[key]
            first = sites[0]
            if all(site.symbol.qname == first.symbol.qname
                   for site in sites):
                continue
            for site in sites:
                if site.symbol.qname == first.symbol.qname:
                    continue
                yield self.at(
                    project, site.symbol, site.node,
                    f"substream name '{site.name}' on "
                    f"{site.receiver} is also constructed in "
                    f"{first.symbol.qname} ({first.symbol.path}:"
                    f"{first.node.lineno}): two streams with one "
                    f"name draw identical values (correlated "
                    f"draws) -- make the name unique per consumer")


class UnverifiedCacheReadRule(FingerprintRule):
    """FPR007: cache read that skips format/digest verification."""

    rule_id = "FPR007"
    title = "cache read without CACHE_FORMAT/digest verification"
    rationale = (
        "Durable-store entries carry a format tag and an embedded "
        "sha256 precisely so readers can reject stale or truncated "
        "bytes.  A read path that parses an entry without comparing "
        "either serves garbage as a hit after a crash or a format "
        "bump.  Verify the format tag and the digest before "
        "trusting the body (ArtifactStore.get is the template).")

    def check_project(self, project: ProjectContext
                      ) -> Iterator[Finding]:
        functions = project.symbols.functions
        for qname in sorted(functions):
            symbol = functions[qname]
            if not _module_in(symbol.module, _DURABLE_MODULES):
                continue
            load = self._unverified_load(symbol)
            if load is not None and \
                    not self._delegates_verification(project, symbol):
                yield self.at(
                    project, symbol, load,
                    "cache read parses a durable entry without "
                    "verifying CACHE_FORMAT or the embedded "
                    "digest: a stale or truncated entry is served "
                    "as a hit -- compare the format tag and sha256 "
                    "before trusting the body")

    @staticmethod
    def _delegates_verification(project: ProjectContext,
                                symbol: FunctionSymbol) -> bool:
        """Whether a direct same-module callee carries the checks.

        ``Baseline.load`` opens and parses, then hands the payload to
        ``from_dict`` which rejects a bad format tag: verification
        one call away still counts (depth 1 only -- deeper and the
        reader can no longer see the contract either).
        """
        functions = project.symbols.functions
        for sub in ast.walk(symbol.node):
            if not isinstance(sub, ast.Call):
                continue
            name = _call_name(sub)
            if name is None:
                continue
            for qname in (f"{symbol.module}.{name}",
                          f"{symbol.module}.{symbol.cls}.{name}"
                          if symbol.cls else ""):
                callee = functions.get(qname)
                if callee is not None and \
                        UnverifiedCacheReadRule._has_evidence(callee):
                    return True
        return False

    @staticmethod
    def _has_evidence(symbol: FunctionSymbol) -> bool:
        for sub in ast.walk(symbol.node):
            if isinstance(sub, ast.Name):
                name = sub.id
            elif isinstance(sub, ast.Attribute):
                name = sub.attr
            elif isinstance(sub, ast.Constant) and \
                    isinstance(sub.value, str):
                name = sub.value
            else:
                continue
            if name.endswith("_FORMAT") or "digest" in name.lower() \
                    or name in ("format", "sha256"):
                return True
        return False

    @staticmethod
    def _unverified_load(symbol: FunctionSymbol
                         ) -> Optional[ast.Call]:
        opens_for_read = False
        load: Optional[ast.Call] = None
        verified = False
        for sub in ast.walk(symbol.node):
            if isinstance(sub, ast.Call):
                dotted = _dotted(sub.func)
                if dotted == "open":
                    mode = None
                    if len(sub.args) > 1 and \
                            isinstance(sub.args[1], ast.Constant):
                        mode = sub.args[1].value
                    for kw in sub.keywords:
                        if kw.arg == "mode" and \
                                isinstance(kw.value, ast.Constant):
                            mode = kw.value.value
                    if mode is None or (isinstance(mode, str)
                                        and "r" in mode
                                        and "+" not in mode):
                        opens_for_read = True
                elif dotted in ("json.load", "json.loads") and \
                        load is None:
                    load = sub
            if isinstance(sub, ast.Name):
                name = sub.id
            elif isinstance(sub, ast.Attribute):
                name = sub.attr
            elif isinstance(sub, ast.Constant) and \
                    isinstance(sub.value, str):
                name = sub.value
            else:
                continue
            if name.endswith("_FORMAT") or "digest" in name.lower() \
                    or name in ("format", "sha256"):
                verified = True
        if opens_for_read and load is not None and not verified:
            return load
        return None


class AdHocStoreKeyRule(FingerprintRule):
    """FPR008: store/enqueue key not from the fingerprint helper."""

    rule_id = "FPR008"
    title = "store key derived outside the canonical fingerprint"
    rationale = (
        "Content-addressing only holds when every store and queue "
        "key comes from the canonical fingerprint helpers "
        "(spec_fingerprint and its wrappers): an ad-hoc key -- an "
        "f-string, str(seed), a raw hexdigest -- collides across "
        "configs or misses on identical work, and the crash-fold "
        "equality proof no longer covers it.  Derive the key from "
        "the config's fingerprint.")

    #: Value shapes that are definitely not fingerprint-derived.
    _BAD_CALLS = frozenset(("repr", "hash", "format", "id"))

    def check_project(self, project: ProjectContext
                      ) -> Iterator[Finding]:
        functions = project.symbols.functions
        for qname in sorted(functions):
            symbol = functions[qname]
            for node, value, what in self._key_sites(symbol):
                verdict = self._judge(symbol, value)
                if verdict is not None:
                    yield self.at(
                        project, symbol, node,
                        f"{what} derived from {verdict} instead of "
                        f"the canonical fingerprint helper: ad-hoc "
                        f"keys break content-addressing -- derive "
                        f"it from spec_fingerprint (or a wrapper "
                        f"like scenario_fingerprint)")

    @staticmethod
    def _key_sites(symbol: FunctionSymbol
                   ) -> Iterator[Tuple[ast.AST, ast.expr, str]]:
        for sub in ast.walk(symbol.node):
            if isinstance(sub, ast.Dict):
                for key, value in zip(sub.keys, sub.values):
                    if isinstance(key, ast.Constant) and \
                            key.value == "result_key":
                        yield key, value, "enqueue result_key"
            elif isinstance(sub, ast.Assign):
                for target in sub.targets:
                    if isinstance(target, ast.Subscript) and \
                            isinstance(target.slice, ast.Constant) \
                            and target.slice.value == "result_key":
                        yield target, sub.value, "enqueue result_key"
            elif isinstance(sub, ast.Call):
                for kw in sub.keywords:
                    if kw.arg == "result_key":
                        yield kw.value, kw.value, "enqueue result_key"
                func = sub.func
                if isinstance(func, ast.Attribute) and \
                        func.attr == "put" and sub.args:
                    receiver = _dotted(func.value) or ""
                    lowered = receiver.lower()
                    if "store" in lowered or "cache" in lowered:
                        yield sub.args[0], sub.args[0], \
                            f"{receiver}.put key"

    def _judge(self, symbol: FunctionSymbol,
               value: ast.expr) -> Optional[str]:
        """A description of the ad-hoc shape, or None when fine."""
        if isinstance(value, ast.Name):
            produced = local_producer(symbol, value.id)
            if produced is None:
                return None
            value = produced
        if isinstance(value, ast.Call) and \
                isinstance(value.func, ast.Name) and \
                value.func.id == "str" and value.args:
            # str() is a coercion: judge what it wraps (a Constant
            # seed is still ad-hoc; a propagated key is still fine).
            inner = value.args[0]
            if isinstance(inner, ast.Constant):
                return "a literal"
            if not isinstance(inner, ast.Name):
                return self._judge(symbol, inner)
            return None
        if isinstance(value, ast.Constant):
            return "a literal" if \
                isinstance(value.value, (str, int, float)) else None
        if isinstance(value, ast.JoinedStr):
            return "an f-string"
        if isinstance(value, ast.BinOp) and \
                isinstance(value.op, (ast.Add, ast.Mod)):
            for part in ast.walk(value):
                if isinstance(part, ast.Constant) and \
                        isinstance(part.value, str):
                    return "string concatenation"
            return None
        if isinstance(value, ast.Call):
            name = _call_name(value) or ""
            dotted = _dotted(value.func) or ""
            if "fingerprint" in name:
                return None
            if name in self._BAD_CALLS:
                return f"{name}(...)"
            if name == "hexdigest" or dotted.startswith("hashlib."):
                return "a raw hash digest"
            return None
        return None


_FINGERPRINT_RULES: Tuple[FingerprintRule, ...] = (
    FieldMissingFromToDictRule(),
    AsymmetricRoundTripRule(),
    FingerprintOmissionRule(),
    VolatileFingerprintInputRule(),
    NonCanonicalSerializationRule(),
    SubstreamCollisionRule(),
    UnverifiedCacheReadRule(),
    AdHocStoreKeyRule(),
)


def all_fingerprint_rules() -> Tuple[FingerprintRule, ...]:
    """Every FPR rule, sorted by rule id."""
    return tuple(sorted(_FINGERPRINT_RULES,
                        key=lambda rule: rule.rule_id))


def fingerprint_rule_ids() -> Tuple[str, ...]:
    """The registered FPR rule ids, sorted."""
    return tuple(rule.rule_id for rule in all_fingerprint_rules())


__all__ = [
    "VOLATILE_FIELDS",
    "AdHocStoreKeyRule",
    "AsymmetricRoundTripRule",
    "FieldMissingFromToDictRule",
    "FingerprintOmissionRule",
    "FingerprintRule",
    "NonCanonicalSerializationRule",
    "SubstreamCollisionRule",
    "UnverifiedCacheReadRule",
    "VolatileFingerprintInputRule",
    "all_fingerprint_rules",
    "fingerprint_rule_ids",
]
