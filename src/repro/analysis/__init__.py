"""Static analysis of the testbed's determinism invariants.

``repro.analysis`` is *detlint*: a custom AST linter that machine-
checks the contracts the whole reproduction rests on -- the
serial == parallel == instrumented bit-identity that the campaign
engine, the fault matrix and the golden traces all assume.  The
identity *tests* catch a violation after the fact; detlint catches
the code patterns that cause them (a stray ``time.time()``, an
unseeded ``random`` draw, an unsorted ``set`` feeding a canonical
exporter) at review time, before any campaign runs.

Entry points:

* ``repro-testbed lint src/`` (CLI subcommand);
* ``tools/detlint src/`` (standalone script, same engine);
* :func:`lint_paths` (library API).

Four rule families share one engine (and one registry,
:mod:`repro.analysis.registry`): the per-file determinism rules
(DET001..DET008, ARCHITECTURE.md §10), the interprocedural
schedule-race rules (SCH001..SCH003, §11), the effect-discipline
rules (EFF001..EFF008, §15) that check durable I/O, queue
transactions and RNG substream naming, and the fingerprint- and
serialization-discipline rules (FPR001..FPR008, §16) that prove
every config field reaches its fingerprint and survives the
``to_dict``/``from_dict`` round trip.  Per-statement suppressions
use ``# detlint: ignore[DET00x] -- reason``.
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline
from repro.analysis.effect_rules import (
    all_effect_rules,
    effect_rule_ids,
)
from repro.analysis.engine import (
    LintResult,
    UnknownRuleError,
    lint_paths,
)
from repro.analysis.findings import Finding
from repro.analysis.fingerprint_rules import (
    all_fingerprint_rules,
    fingerprint_rule_ids,
)
from repro.analysis.registry import (
    RuleFamily,
    registered_rule_ids,
    registered_rules,
    rule_families,
)
from repro.analysis.reporters import (
    render_json,
    render_sarif,
    render_text,
)
from repro.analysis.rules import Rule, all_rules, rule_ids

__all__ = [
    "Baseline",
    "Finding",
    "LintResult",
    "Rule",
    "RuleFamily",
    "UnknownRuleError",
    "all_effect_rules",
    "all_fingerprint_rules",
    "all_rules",
    "effect_rule_ids",
    "fingerprint_rule_ids",
    "lint_paths",
    "registered_rule_ids",
    "registered_rules",
    "render_json",
    "render_sarif",
    "render_text",
    "rule_families",
    "rule_ids",
]
