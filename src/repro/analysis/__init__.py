"""Static analysis of the testbed's determinism invariants.

``repro.analysis`` is *detlint*: a custom AST linter that machine-
checks the contracts the whole reproduction rests on -- the
serial == parallel == instrumented bit-identity that the campaign
engine, the fault matrix and the golden traces all assume.  The
identity *tests* catch a violation after the fact; detlint catches
the code patterns that cause them (a stray ``time.time()``, an
unseeded ``random`` draw, an unsorted ``set`` feeding a canonical
exporter) at review time, before any campaign runs.

Entry points:

* ``repro-testbed lint src/`` (CLI subcommand);
* ``tools/detlint src/`` (standalone script, same engine);
* :func:`lint_paths` (library API).

The rule catalogue (DET001..DET008) is documented in
ARCHITECTURE.md §10; per-line suppressions use
``# detlint: ignore[DET00x] -- reason``.
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline
from repro.analysis.engine import LintResult, lint_paths
from repro.analysis.findings import Finding
from repro.analysis.reporters import render_json, render_text
from repro.analysis.rules import Rule, all_rules, rule_ids

__all__ = [
    "Baseline",
    "Finding",
    "LintResult",
    "Rule",
    "all_rules",
    "lint_paths",
    "render_json",
    "render_text",
    "rule_ids",
]
