"""Decentralized Environmental Notification Message (EN 302 637-3).

The wire schema (:data:`DENM_PDU`) implements the full container
structure of Figure 2 of the paper: ITS PDU header, mandatory
Management container, and optional Situation / Location / À-la-carte
containers.  The paper's own testbed used only the mandatory part
("DENMs with the mandatory structure (Header and Management
Container)"); this reproduction implements the optional containers as
well -- the extension the paper left as future work -- and the
collision-avoidance application fills the Situation container with
cause code 97 (Collision Risk).
"""

from __future__ import annotations

import dataclasses
import functools
from typing import List, Optional, Tuple

from repro.asn1 import (
    Boolean,
    Enumerated,
    Field,
    Integer,
    Sequence,
    SequenceOf,
)
from repro.messages import cause_codes
from repro.messages.common import (
    HEADING,
    ITS_PDU_HEADER,
    MessageId,
    PATH_POINT,
    REFERENCE_POSITION,
    ReferencePosition,
    SPEED,
    SPEED_UNAVAILABLE,
    StationTypeType,
    TimestampItsType,
    heading_to_wire,
    speed_from_wire,
    speed_to_wire,
)

SequenceNumberType = Integer(0, 65535, "SequenceNumber")

ACTION_ID = Sequence("ActionID", [
    Field("originatingStationID", Integer(0, 4294967295, "StationID")),
    Field("sequenceNumber", SequenceNumberType),
])

TerminationType = Enumerated(
    ["isCancellation", "isNegation"], "Termination")
RelevanceDistanceType = Enumerated(
    [
        "lessThan50m", "lessThan100m", "lessThan200m", "lessThan500m",
        "lessThan1000m", "lessThan5km", "lessThan10km", "over10km",
    ],
    "RelevanceDistance",
)
RelevanceTrafficDirectionType = Enumerated(
    [
        "allTrafficDirections", "upstreamTraffic", "downstreamTraffic",
        "oppositeTraffic",
    ],
    "RelevanceTrafficDirection",
)
ValidityDurationType = Integer(0, 86400, "ValidityDuration")
TransmissionIntervalType = Integer(1, 10000, "TransmissionInterval")

MANAGEMENT_CONTAINER = Sequence("ManagementContainer", [
    Field("actionID", ACTION_ID),
    Field("detectionTime", TimestampItsType),
    Field("referenceTime", TimestampItsType),
    Field("termination", TerminationType, optional=True),
    Field("eventPosition", REFERENCE_POSITION),
    Field("relevanceDistance", RelevanceDistanceType, optional=True),
    Field("relevanceTrafficDirection", RelevanceTrafficDirectionType,
          optional=True),
    Field("validityDuration", ValidityDurationType, optional=True),
    Field("transmissionInterval", TransmissionIntervalType, optional=True),
    Field("stationType", StationTypeType),
], extensible=True)

InformationQualityType = Integer(0, 7, "InformationQuality")

CAUSE_CODE_SEQ = Sequence("CauseCode", [
    Field("causeCode", Integer(0, 255, "CauseCodeType")),
    Field("subCauseCode", Integer(0, 255, "SubCauseCodeType")),
], extensible=True)

SITUATION_CONTAINER = Sequence("SituationContainer", [
    Field("informationQuality", InformationQualityType),
    Field("eventType", CAUSE_CODE_SEQ),
    Field("linkedCause", CAUSE_CODE_SEQ, optional=True),
], extensible=True)

PATH_HISTORY = SequenceOf(PATH_POINT, 0, 40, "PathHistory")
TRACES = SequenceOf(PATH_HISTORY, 1, 7, "Traces")

RoadTypeType = Enumerated(
    [
        "urban-NoStructuralSeparationToOppositeLanes",
        "urban-WithStructuralSeparationToOppositeLanes",
        "nonUrban-NoStructuralSeparationToOppositeLanes",
        "nonUrban-WithStructuralSeparationToOppositeLanes",
    ],
    "RoadType",
)

LOCATION_CONTAINER = Sequence("LocationContainer", [
    Field("eventSpeed", SPEED, optional=True),
    Field("eventPositionHeading", HEADING, optional=True),
    Field("traces", TRACES),
    Field("roadType", RoadTypeType, optional=True),
], extensible=True)

LanePositionType = Integer(-1, 14, "LanePosition")
TemperatureType = Integer(-60, 67, "Temperature")

STATIONARY_VEHICLE_CONTAINER = Sequence("StationaryVehicleContainer", [
    Field("stationarySince", Enumerated(
        ["lessThan1Minute", "lessThan2Minutes", "lessThan15Minutes",
         "equalOrGreater15Minutes"], "StationarySince"), optional=True),
    Field("carryingDangerousGoods", Boolean(), optional=True),
    Field("numberOfOccupants", Integer(0, 127, "NumberOfOccupants"),
          optional=True),
], extensible=True)

ALACARTE_CONTAINER = Sequence("AlacarteContainer", [
    Field("lanePosition", LanePositionType, optional=True),
    Field("externalTemperature", TemperatureType, optional=True),
    Field("stationaryVehicle", STATIONARY_VEHICLE_CONTAINER, optional=True),
], extensible=True)

DENM_BODY = Sequence("DecentralizedEnvironmentalNotificationMessage", [
    Field("management", MANAGEMENT_CONTAINER),
    Field("situation", SITUATION_CONTAINER, optional=True),
    Field("location", LOCATION_CONTAINER, optional=True),
    Field("alacarte", ALACARTE_CONTAINER, optional=True),
])

#: Complete DENM PDU schema.
DENM_PDU = Sequence("DENM", [
    Field("header", ITS_PDU_HEADER),
    Field("denm", DENM_BODY),
])

#: DENM protocol version carried in the header.
DENM_PROTOCOL_VERSION = 2

#: Default validityDuration when the sender does not set one (s).
DEFAULT_VALIDITY_DURATION = 600


@dataclasses.dataclass(frozen=True)
class ActionId:
    """DENM ActionID: (originating station, sequence number)."""

    station_id: int
    sequence_number: int

    def to_asn(self) -> dict:
        """Wire-form dict for :data:`ACTION_ID`."""
        return {
            "originatingStationID": self.station_id,
            "sequenceNumber": self.sequence_number,
        }

    @staticmethod
    def from_asn(value: dict) -> "ActionId":
        """Build from a decoded :data:`ACTION_ID` dict."""
        return ActionId(value["originatingStationID"],
                        value["sequenceNumber"])


@dataclasses.dataclass(frozen=True)
class EventType:
    """(causeCode, subCauseCode) pair."""

    cause_code: int
    sub_cause_code: int = 0

    def describe(self) -> str:
        """Human-readable description via the cause-code registry."""
        return cause_codes.describe_event(self.cause_code,
                                          self.sub_cause_code)


@dataclasses.dataclass(frozen=True)
class Denm:
    """An SI-unit DENM.

    Only ``action_id``, ``detection_time``, ``reference_time``,
    ``event_position`` and ``station_type`` are mandatory (the
    Management container); the rest mirrors the optional containers.
    Times are ITS timestamps (ms since 2004-01-01 UTC).
    """

    action_id: ActionId
    detection_time: int
    reference_time: int
    event_position: ReferencePosition
    station_type: int
    termination: Optional[str] = None
    relevance_distance: Optional[str] = None
    relevance_traffic_direction: Optional[str] = None
    validity_duration: Optional[int] = DEFAULT_VALIDITY_DURATION
    transmission_interval_ms: Optional[int] = None
    # Situation container
    event_type: Optional[EventType] = None
    information_quality: int = 0
    linked_cause: Optional[EventType] = None
    # Location container
    event_speed: Optional[float] = None          # m/s
    event_heading: Optional[float] = None        # degrees
    traces: Tuple[Tuple[Tuple[float, float], ...], ...] = ()
    road_type: Optional[str] = None
    # À-la-carte container
    lane_position: Optional[int] = None
    external_temperature: Optional[int] = None
    stationary_vehicle: bool = False

    # ------------------------------------------------------------------
    # Constructors for the use-case
    # ------------------------------------------------------------------

    @staticmethod
    def collision_risk(
        action_id: ActionId,
        detection_time: int,
        event_position: ReferencePosition,
        station_type: int,
        sub_cause: int = cause_codes.CROSSING_COLLISION_RISK,
        information_quality: int = 3,
        event_speed: Optional[float] = None,
        event_heading: Optional[float] = None,
    ) -> "Denm":
        """A Collision Risk DENM (cause code 97), as the edge node issues."""
        return Denm(
            action_id=action_id,
            detection_time=detection_time,
            reference_time=detection_time,
            event_position=event_position,
            station_type=station_type,
            event_type=EventType(cause_codes.COLLISION_RISK, sub_cause),
            information_quality=information_quality,
            event_speed=event_speed,
            event_heading=event_heading,
            relevance_distance="lessThan50m",
            relevance_traffic_direction="allTrafficDirections",
            validity_duration=10,
        )

    @staticmethod
    def stationary_vehicle_warning(
        action_id: ActionId,
        detection_time: int,
        event_position: ReferencePosition,
        station_type: int,
        sub_cause: int = 2,
        information_quality: int = 3,
    ) -> "Denm":
        """A Stationary Vehicle DENM (cause code 94)."""
        return Denm(
            action_id=action_id,
            detection_time=detection_time,
            reference_time=detection_time,
            event_position=event_position,
            station_type=station_type,
            event_type=EventType(cause_codes.STATIONARY_VEHICLE, sub_cause),
            information_quality=information_quality,
            stationary_vehicle=True,
        )

    def terminate(self, reference_time: int,
                  termination: str = "isCancellation") -> "Denm":
        """A cancellation / negation DENM for this event."""
        return dataclasses.replace(
            self,
            reference_time=reference_time,
            termination=termination,
        )

    # ------------------------------------------------------------------
    # Wire form
    # ------------------------------------------------------------------

    def to_asn(self) -> dict:
        """Build the wire-form dict for :data:`DENM_PDU`."""
        management = {
            "actionID": self.action_id.to_asn(),
            "detectionTime": self.detection_time,
            "referenceTime": self.reference_time,
            "eventPosition": self.event_position.to_asn(),
            "stationType": self.station_type,
        }
        if self.termination is not None:
            management["termination"] = self.termination
        if self.relevance_distance is not None:
            management["relevanceDistance"] = self.relevance_distance
        if self.relevance_traffic_direction is not None:
            management["relevanceTrafficDirection"] = (
                self.relevance_traffic_direction)
        if self.validity_duration is not None:
            management["validityDuration"] = self.validity_duration
        if self.transmission_interval_ms is not None:
            management["transmissionInterval"] = self.transmission_interval_ms

        body: dict = {"management": management}

        if self.event_type is not None:
            situation = {
                "informationQuality": self.information_quality,
                "eventType": {
                    "causeCode": self.event_type.cause_code,
                    "subCauseCode": self.event_type.sub_cause_code,
                },
            }
            if self.linked_cause is not None:
                situation["linkedCause"] = {
                    "causeCode": self.linked_cause.cause_code,
                    "subCauseCode": self.linked_cause.sub_cause_code,
                }
            body["situation"] = situation

        if (self.event_speed is not None or self.event_heading is not None
                or self.traces):
            location: dict = {"traces": self._traces_to_asn()}
            if self.event_speed is not None:
                location["eventSpeed"] = {
                    "speedValue": speed_to_wire(self.event_speed),
                    "speedConfidence": 5,
                }
            if self.event_heading is not None:
                location["eventPositionHeading"] = {
                    "headingValue": heading_to_wire(self.event_heading),
                    "headingConfidence": 10,
                }
            if self.road_type is not None:
                location["roadType"] = self.road_type
            body["location"] = location

        if (self.lane_position is not None
                or self.external_temperature is not None
                or self.stationary_vehicle):
            alacarte: dict = {}
            if self.lane_position is not None:
                alacarte["lanePosition"] = self.lane_position
            if self.external_temperature is not None:
                alacarte["externalTemperature"] = self.external_temperature
            if self.stationary_vehicle:
                alacarte["stationaryVehicle"] = {
                    "stationarySince": "lessThan1Minute",
                }
            body["alacarte"] = alacarte

        return {
            "header": {
                "protocolVersion": DENM_PROTOCOL_VERSION,
                "messageID": MessageId.DENM,
                "stationID": self.action_id.station_id,
            },
            "denm": body,
        }

    def _traces_to_asn(self) -> List[List[dict]]:
        if not self.traces:
            # Traces is mandatory in the Location container with at
            # least one (possibly empty) path history.
            return [[]]
        out = []
        for trace in self.traces[:7]:
            path = []
            for d_lat, d_lon in trace[:40]:
                path.append({
                    "pathPosition": {
                        "deltaLatitude": _delta_wire(d_lat, 131071),
                        "deltaLongitude": _delta_wire(d_lon, 131071),
                        "deltaAltitude": 0,
                    },
                })
            out.append(path)
        return out

    def encode(self) -> bytes:
        """UPER-encode this DENM."""
        return DENM_PDU.to_bytes(self.to_asn())

    @staticmethod
    def from_asn(value: dict) -> "Denm":
        """Build a :class:`Denm` from a decoded :data:`DENM_PDU` dict."""
        body = value["denm"]
        management = body["management"]
        kwargs: dict = {
            "action_id": ActionId.from_asn(management["actionID"]),
            "detection_time": management["detectionTime"],
            "reference_time": management["referenceTime"],
            "event_position": ReferencePosition.from_asn(
                management["eventPosition"]),
            "station_type": management["stationType"],
            "termination": management.get("termination"),
            "relevance_distance": management.get("relevanceDistance"),
            "relevance_traffic_direction": management.get(
                "relevanceTrafficDirection"),
            "validity_duration": management.get("validityDuration"),
            "transmission_interval_ms": management.get(
                "transmissionInterval"),
        }
        situation = body.get("situation")
        if situation is not None:
            event = situation["eventType"]
            kwargs["event_type"] = EventType(
                event["causeCode"], event["subCauseCode"])
            kwargs["information_quality"] = situation["informationQuality"]
            linked = situation.get("linkedCause")
            if linked is not None:
                kwargs["linked_cause"] = EventType(
                    linked["causeCode"], linked["subCauseCode"])
        location = body.get("location")
        if location is not None:
            speed = location.get("eventSpeed")
            if speed is not None and speed["speedValue"] != SPEED_UNAVAILABLE:
                kwargs["event_speed"] = speed_from_wire(speed["speedValue"])
            heading = location.get("eventPositionHeading")
            if heading is not None:
                kwargs["event_heading"] = heading["headingValue"] / 10.0
            kwargs["road_type"] = location.get("roadType")
            traces = []
            for path in location["traces"]:
                trace = tuple(
                    (point["pathPosition"]["deltaLatitude"] / 1e7,
                     point["pathPosition"]["deltaLongitude"] / 1e7)
                    for point in path
                )
                traces.append(trace)
            # A single empty path history is the "no traces" placeholder.
            if traces != [()]:
                kwargs["traces"] = tuple(traces)
        alacarte = body.get("alacarte")
        if alacarte is not None:
            kwargs["lane_position"] = alacarte.get("lanePosition")
            kwargs["external_temperature"] = alacarte.get(
                "externalTemperature")
            kwargs["stationary_vehicle"] = "stationaryVehicle" in alacarte
        return Denm(**kwargs)

    @staticmethod
    def decode(data: bytes) -> "Denm":
        """Decode a UPER-encoded DENM.

        Memoised by payload (decoding is pure, :class:`Denm` is
        immutable): every in-range receiver of one broadcast DENM
        shares a single decode.
        """
        return _decode_denm_cached(data)

    @property
    def is_termination(self) -> bool:
        """Whether this DENM cancels or negates an earlier event."""
        return self.termination is not None

    def describe(self) -> str:
        """Human-readable summary of the advertised event."""
        if self.event_type is None:
            return "DENM without situation container"
        return self.event_type.describe()


@functools.lru_cache(maxsize=4096)
def _decode_denm_cached(data: bytes) -> Denm:
    return Denm.from_asn(DENM_PDU.from_bytes(data))


def _delta_wire(delta_degrees: float, bound: int) -> int:
    wire = round(delta_degrees * 1e7)
    return int(max(-bound, min(bound, wire)))
