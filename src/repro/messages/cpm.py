"""Collective Perception Message (TS 103 324, simplified).

The paper motivates V2X by cooperative perception: "expand the
situational awareness of the vehicle".  DENMs warn about *events*;
CPMs go further and share the sensor picture itself -- each perceived
object with position, velocity and classification -- so receivers see
road users their own sensors cannot.  The blind-corner extension
compares this proactive channel against the reactive DENM.

The schema is a hand-reduced subset of the CPM: station data container
(originating position) plus the perceived-object container.  Offsets
are metres relative to the originating station, as in the standard's
xDistance/yDistance (here at 0.01 m resolution).
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

from repro.asn1 import Enumerated, Field, Integer, Sequence, SequenceOf
from repro.messages.common import (
    ITS_PDU_HEADER,
    REFERENCE_POSITION,
    ReferencePosition,
    StationTypeType,
)

#: CPM uses message id 14 in recent releases; the exact number only
#: needs to be distinct within this stack.
CPM_MESSAGE_ID = 14

ObjectIdType = Integer(0, 65535, "Identifier")
DistanceValueType = Integer(-132768, 132767, "DistanceValue")  # 0.01 m
SpeedValueCpmType = Integer(-16383, 16383, "SpeedValueExtended")  # 0.01 m/s
ObjectConfidenceType = Integer(0, 101, "ObjectConfidence")
TimeOfMeasurementType = Integer(-1500, 1500, "TimeOfMeasurement")  # ms

ObjectClassType = Enumerated(
    [
        "unknown", "pedestrian", "cyclist", "moped", "motorcycle",
        "passengerCar", "bus", "lightTruck", "heavyTruck", "trailer",
        "specialVehicle", "tram", "roadSideUnit", "animal", "other",
    ],
    "ObjectClass",
)

PERCEIVED_OBJECT = Sequence("PerceivedObject", [
    Field("objectID", ObjectIdType),
    Field("timeOfMeasurement", TimeOfMeasurementType),
    Field("xDistance", DistanceValueType),
    Field("yDistance", DistanceValueType),
    Field("xSpeed", SpeedValueCpmType),
    Field("ySpeed", SpeedValueCpmType),
    Field("objectConfidence", ObjectConfidenceType),
    Field("classification", ObjectClassType, optional=True),
], extensible=True)

STATION_DATA_CONTAINER = Sequence("OriginatingStationData", [
    Field("stationType", StationTypeType),
    Field("referencePosition", REFERENCE_POSITION),
], extensible=True)

CPM_BODY = Sequence("CollectivePerceptionMessage", [
    Field("generationDeltaTime", Integer(0, 65535,
                                         "GenerationDeltaTime")),
    Field("stationData", STATION_DATA_CONTAINER),
    Field("perceivedObjects", SequenceOf(PERCEIVED_OBJECT, 0, 128,
                                         "PerceivedObjectContainer")),
])

#: Complete CPM PDU.
CPM_PDU = Sequence("CPM", [
    Field("header", ITS_PDU_HEADER),
    Field("cpm", CPM_BODY),
])


@dataclasses.dataclass(frozen=True)
class PerceivedObject:
    """One shared perception, relative to the originating station.

    Offsets/speeds are in the station's local ENU frame: ``x`` east,
    ``y`` north, metres and metres/second.
    """

    object_id: int
    x_offset: float
    y_offset: float
    x_speed: float = 0.0
    y_speed: float = 0.0
    confidence: float = 0.5          # 0..1
    classification: str = "unknown"
    #: Measurement age relative to CPM generation (s; negative = older).
    measurement_delta: float = 0.0

    @property
    def speed(self) -> float:
        """Ground speed (m/s)."""
        return (self.x_speed ** 2 + self.y_speed ** 2) ** 0.5


@dataclasses.dataclass(frozen=True)
class Cpm:
    """An SI-unit Collective Perception Message."""

    station_id: int
    station_type: int
    generation_delta_time: int
    reference_position: ReferencePosition
    perceived_objects: Tuple[PerceivedObject, ...] = ()

    def to_asn(self) -> dict:
        """Wire-form dict for :data:`CPM_PDU`."""
        return {
            "header": {
                "protocolVersion": 2,
                "messageID": CPM_MESSAGE_ID,
                "stationID": self.station_id,
            },
            "cpm": {
                "generationDeltaTime": self.generation_delta_time,
                "stationData": {
                    "stationType": self.station_type,
                    "referencePosition":
                        self.reference_position.to_asn(),
                },
                "perceivedObjects": [
                    {
                        "objectID": obj.object_id,
                        "timeOfMeasurement": _millis(
                            obj.measurement_delta, 1500),
                        "xDistance": _centi(obj.x_offset, 132767),
                        "yDistance": _centi(obj.y_offset, 132767),
                        "xSpeed": _centi(obj.x_speed, 16383),
                        "ySpeed": _centi(obj.y_speed, 16383),
                        "objectConfidence": int(round(
                            min(1.0, max(0.0, obj.confidence)) * 100)),
                        "classification": obj.classification,
                    }
                    for obj in self.perceived_objects[:128]
                ],
            },
        }

    def encode(self) -> bytes:
        """UPER-encode this CPM."""
        return CPM_PDU.to_bytes(self.to_asn())

    @staticmethod
    def from_asn(value: dict) -> "Cpm":
        """Build from a decoded :data:`CPM_PDU` dict."""
        body = value["cpm"]
        station = body["stationData"]
        objects = tuple(
            PerceivedObject(
                object_id=obj["objectID"],
                x_offset=obj["xDistance"] / 100.0,
                y_offset=obj["yDistance"] / 100.0,
                x_speed=obj["xSpeed"] / 100.0,
                y_speed=obj["ySpeed"] / 100.0,
                confidence=obj["objectConfidence"] / 100.0,
                classification=obj.get("classification", "unknown"),
                measurement_delta=obj["timeOfMeasurement"] / 1000.0,
            )
            for obj in body["perceivedObjects"]
        )
        return Cpm(
            station_id=value["header"]["stationID"],
            station_type=station["stationType"],
            generation_delta_time=body["generationDeltaTime"],
            reference_position=ReferencePosition.from_asn(
                station["referencePosition"]),
            perceived_objects=objects,
        )

    @staticmethod
    def decode(data: bytes) -> "Cpm":
        """Decode a UPER-encoded CPM."""
        return Cpm.from_asn(CPM_PDU.from_bytes(data))


def _centi(value: float, bound: int) -> int:
    wire = round(value * 100.0)
    return int(max(-bound, min(bound, wire)))


def _millis(value: float, bound: int) -> int:
    wire = round(value * 1000.0)
    return int(max(-bound, min(bound, wire)))
