"""SPATEM / MAPEM: signal phase & timing and intersection topology.

The LDM "builds a digital map of all dynamic objects and road
details, such as traffic lights" (paper, Section II-B).  These are the
messages that feed it: MAPEM describes an intersection's geometry
(lanes and their signal groups), SPATEM broadcasts the live state of
each signal group.  The schemas below are simplified from
ISO/TS 19091 to the elements the red-light-assist application needs,
but are genuine UPER on the wire like CAM/DENM.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from repro.asn1 import Enumerated, Field, Integer, Sequence, SequenceOf
from repro.messages.common import (
    ITS_PDU_HEADER,
    MessageId,
    REFERENCE_POSITION,
    ReferencePosition,
)

IntersectionIdType = Integer(0, 65535, "IntersectionID")
SignalGroupIdType = Integer(0, 255, "SignalGroupID")
LaneIdType = Integer(0, 255, "LaneID")

#: MovementPhaseState (SAE J2735 subset).
EventStateType = Enumerated(
    [
        "unavailable",
        "dark",
        "stop-Then-Proceed",
        "stop-And-Remain",
        "pre-Movement",
        "permissive-Movement-Allowed",
        "protected-Movement-Allowed",
        "permissive-clearance",
        "protected-clearance",
        "caution-Conflicting-Traffic",
    ],
    "MovementPhaseState",
)

#: Time marks are tenths of a second in the current/next hour
#: (0..36001); we use tenths-of-second countdowns for simplicity.
TimeMarkType = Integer(0, 36001, "TimeMark")

MOVEMENT_EVENT = Sequence("MovementEvent", [
    Field("eventState", EventStateType),
    Field("minEndTime", TimeMarkType),
    Field("likelyTime", TimeMarkType, optional=True),
], extensible=True)

MOVEMENT_STATE = Sequence("MovementState", [
    Field("signalGroup", SignalGroupIdType),
    Field("stateTimeSpeed", SequenceOf(MOVEMENT_EVENT, 1, 3,
                                       "MovementEventList")),
], extensible=True)

INTERSECTION_STATE = Sequence("IntersectionState", [
    Field("id", IntersectionIdType),
    Field("revision", Integer(0, 127, "MsgCount")),
    Field("moy", Integer(0, 527040, "MinuteOfTheYear"), optional=True),
    Field("timeStamp", Integer(0, 65535, "DSecond"), optional=True),
    Field("states", SequenceOf(MOVEMENT_STATE, 1, 32,
                               "MovementList")),
], extensible=True)

#: Complete SPATEM PDU.
SPATEM_PDU = Sequence("SPATEM", [
    Field("header", ITS_PDU_HEADER),
    Field("spat", Sequence("SPAT", [
        Field("intersections", SequenceOf(INTERSECTION_STATE, 1, 8,
                                          "IntersectionStateList")),
    ])),
])

LaneDirectionType = Enumerated(["ingress", "egress"], "LaneDirection")

GENERIC_LANE = Sequence("GenericLane", [
    Field("laneID", LaneIdType),
    Field("direction", LaneDirectionType),
    Field("signalGroup", SignalGroupIdType, optional=True),
    #: Approach bearing (0.1 deg) a vehicle on this lane drives.
    Field("approachBearing", Integer(0, 3600, "ApproachBearing")),
], extensible=True)

INTERSECTION_GEOMETRY = Sequence("IntersectionGeometry", [
    Field("id", IntersectionIdType),
    Field("revision", Integer(0, 127, "MsgCount")),
    Field("refPoint", REFERENCE_POSITION),
    Field("lanes", SequenceOf(GENERIC_LANE, 1, 32, "LaneList")),
], extensible=True)

#: Complete MAPEM PDU.
MAPEM_PDU = Sequence("MAPEM", [
    Field("header", ITS_PDU_HEADER),
    Field("map", Sequence("MapData", [
        Field("intersections", SequenceOf(INTERSECTION_GEOMETRY, 1, 8,
                                          "IntersectionGeometryList")),
    ])),
])

#: Phases that allow movement.
GO_STATES = frozenset({
    "permissive-Movement-Allowed",
    "protected-Movement-Allowed",
})

#: Phases that demand a stop.
STOP_STATES = frozenset({
    "stop-Then-Proceed",
    "stop-And-Remain",
    "dark",
})


@dataclasses.dataclass(frozen=True)
class MovementState:
    """One signal group's live state in SI units."""

    signal_group: int
    event_state: str
    #: Seconds until this state can end at the earliest.
    min_end_seconds: float
    likely_seconds: Optional[float] = None

    @property
    def is_go(self) -> bool:
        """Whether vehicles on this signal group may proceed."""
        return self.event_state in GO_STATES

    @property
    def is_stop(self) -> bool:
        """Whether vehicles on this signal group must stop."""
        return self.event_state in STOP_STATES


@dataclasses.dataclass(frozen=True)
class Spatem:
    """A decoded signal-phase-and-timing message (one intersection)."""

    station_id: int
    intersection_id: int
    revision: int
    movements: Tuple[MovementState, ...]

    def state_of(self, signal_group: int) -> Optional[MovementState]:
        """The movement state for *signal_group*, or None."""
        for movement in self.movements:
            if movement.signal_group == signal_group:
                return movement
        return None

    def to_asn(self) -> dict:
        """Wire-form dict for :data:`SPATEM_PDU`."""
        return {
            "header": {
                "protocolVersion": 2,
                "messageID": MessageId.SPAT,
                "stationID": self.station_id,
            },
            "spat": {
                "intersections": [{
                    "id": self.intersection_id,
                    "revision": self.revision,
                    "states": [
                        {
                            "signalGroup": m.signal_group,
                            "stateTimeSpeed": [{
                                "eventState": m.event_state,
                                "minEndTime": _time_mark(
                                    m.min_end_seconds),
                                **({"likelyTime": _time_mark(
                                    m.likely_seconds)}
                                   if m.likely_seconds is not None
                                   else {}),
                            }],
                        }
                        for m in self.movements
                    ],
                }],
            },
        }

    def encode(self) -> bytes:
        """UPER-encode this SPATEM."""
        return SPATEM_PDU.to_bytes(self.to_asn())

    @staticmethod
    def decode(data: bytes) -> "Spatem":
        """Decode a UPER-encoded SPATEM (first intersection)."""
        value = SPATEM_PDU.from_bytes(data)
        intersection = value["spat"]["intersections"][0]
        movements = []
        for state in intersection["states"]:
            event = state["stateTimeSpeed"][0]
            likely = event.get("likelyTime")
            movements.append(MovementState(
                signal_group=state["signalGroup"],
                event_state=event["eventState"],
                min_end_seconds=event["minEndTime"] / 10.0,
                likely_seconds=None if likely is None else likely / 10.0,
            ))
        return Spatem(
            station_id=value["header"]["stationID"],
            intersection_id=intersection["id"],
            revision=intersection["revision"],
            movements=tuple(movements),
        )


@dataclasses.dataclass(frozen=True)
class Lane:
    """One lane of a mapped intersection."""

    lane_id: int
    direction: str               # "ingress" | "egress"
    approach_bearing: float      # degrees a vehicle on it drives
    signal_group: Optional[int] = None


@dataclasses.dataclass(frozen=True)
class Mapem:
    """A decoded intersection topology message."""

    station_id: int
    intersection_id: int
    revision: int
    reference_position: ReferencePosition
    lanes: Tuple[Lane, ...]

    def ingress_lane_for_bearing(self, bearing: float,
                                 tolerance: float = 45.0,
                                 ) -> Optional[Lane]:
        """The ingress lane whose approach matches *bearing* degrees."""
        best = None
        best_error = tolerance
        for lane in self.lanes:
            if lane.direction != "ingress":
                continue
            error = abs((lane.approach_bearing - bearing + 180.0)
                        % 360.0 - 180.0)
            if error <= best_error:
                best = lane
                best_error = error
        return best

    def to_asn(self) -> dict:
        """Wire-form dict for :data:`MAPEM_PDU`."""
        return {
            "header": {
                "protocolVersion": 2,
                "messageID": MessageId.MAP,
                "stationID": self.station_id,
            },
            "map": {
                "intersections": [{
                    "id": self.intersection_id,
                    "revision": self.revision,
                    "refPoint": self.reference_position.to_asn(),
                    "lanes": [
                        {
                            "laneID": lane.lane_id,
                            "direction": lane.direction,
                            "approachBearing": int(round(
                                (lane.approach_bearing % 360.0) * 10.0)),
                            **({"signalGroup": lane.signal_group}
                               if lane.signal_group is not None else {}),
                        }
                        for lane in self.lanes
                    ],
                }],
            },
        }

    def encode(self) -> bytes:
        """UPER-encode this MAPEM."""
        return MAPEM_PDU.to_bytes(self.to_asn())

    @staticmethod
    def decode(data: bytes) -> "Mapem":
        """Decode a UPER-encoded MAPEM (first intersection)."""
        value = MAPEM_PDU.from_bytes(data)
        intersection = value["map"]["intersections"][0]
        lanes = tuple(
            Lane(
                lane_id=lane["laneID"],
                direction=lane["direction"],
                approach_bearing=lane["approachBearing"] / 10.0,
                signal_group=lane.get("signalGroup"),
            )
            for lane in intersection["lanes"]
        )
        return Mapem(
            station_id=value["header"]["stationID"],
            intersection_id=intersection["id"],
            revision=intersection["revision"],
            reference_position=ReferencePosition.from_asn(
                intersection["refPoint"]),
            lanes=lanes,
        )


def _time_mark(seconds: float) -> int:
    return int(max(0, min(36001, round(seconds * 10.0))))
