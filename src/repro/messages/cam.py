"""Cooperative Awareness Message (EN 302 637-2).

The wire schema (:data:`CAM_PDU`) covers the basic container and the
vehicle / RSU high-frequency containers; :class:`Cam` is the SI-unit
dataclass used by application code.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Optional, Tuple

from repro.asn1 import (
    BitString,
    Choice,
    Enumerated,
    Field,
    Integer,
    Sequence,
    SequenceOf,
)
from repro.messages.common import (
    HEADING,
    PATH_POINT,
    HEADING_UNAVAILABLE,
    ITS_PDU_HEADER,
    MessageId,
    REFERENCE_POSITION,
    ReferencePosition,
    SPEED,
    StationTypeType,
    heading_from_wire,
    heading_to_wire,
    speed_from_wire,
    speed_to_wire,
)

GenerationDeltaTimeType = Integer(0, 65535, "GenerationDeltaTime")

BASIC_CONTAINER = Sequence("BasicContainer", [
    Field("stationType", StationTypeType),
    Field("referencePosition", REFERENCE_POSITION),
])

DriveDirectionType = Enumerated(
    ["forward", "backward", "unavailable"], "DriveDirection")
VehicleLengthValueType = Integer(1, 1023, "VehicleLengthValue")
VehicleLengthConfidenceType = Enumerated(
    [
        "noTrailerPresent", "trailerPresentWithKnownLength",
        "trailerPresentWithUnknownLength", "trailerPresenceIsUnknown",
        "unavailable",
    ],
    "VehicleLengthConfidenceIndication",
)
VehicleWidthType = Integer(1, 62, "VehicleWidth")
LongitudinalAccelerationValueType = Integer(
    -160, 161, "LongitudinalAccelerationValue")
AccelerationConfidenceType = Integer(0, 102, "AccelerationConfidence")
CurvatureValueType = Integer(-1023, 1023, "CurvatureValue")
CurvatureConfidenceType = Enumerated(
    [
        "onePerMeter-0-00002", "onePerMeter-0-0001", "onePerMeter-0-0005",
        "onePerMeter-0-002", "onePerMeter-0-01", "onePerMeter-0-1",
        "outOfRange", "unavailable",
    ],
    "CurvatureConfidence",
)
CurvatureCalculationModeType = Enumerated(
    ["yawRateUsed", "yawRateNotUsed", "unavailable"],
    "CurvatureCalculationMode",
)
YawRateValueType = Integer(-32766, 32767, "YawRateValue")
YawRateConfidenceType = Enumerated(
    [
        "degSec-000-01", "degSec-000-05", "degSec-000-10", "degSec-001-00",
        "degSec-005-00", "degSec-010-00", "degSec-100-00", "outOfRange",
        "unavailable",
    ],
    "YawRateConfidence",
)

VEHICLE_LENGTH = Sequence("VehicleLength", [
    Field("vehicleLengthValue", VehicleLengthValueType),
    Field("vehicleLengthConfidenceIndication", VehicleLengthConfidenceType),
])

LONGITUDINAL_ACCELERATION = Sequence("LongitudinalAcceleration", [
    Field("longitudinalAccelerationValue", LongitudinalAccelerationValueType),
    Field("longitudinalAccelerationConfidence", AccelerationConfidenceType),
])

CURVATURE = Sequence("Curvature", [
    Field("curvatureValue", CurvatureValueType),
    Field("curvatureConfidence", CurvatureConfidenceType),
])

YAW_RATE = Sequence("YawRate", [
    Field("yawRateValue", YawRateValueType),
    Field("yawRateConfidence", YawRateConfidenceType),
])

BASIC_VEHICLE_CONTAINER_HF = Sequence(
    "BasicVehicleContainerHighFrequency",
    [
        Field("heading", HEADING),
        Field("speed", SPEED),
        Field("driveDirection", DriveDirectionType),
        Field("vehicleLength", VEHICLE_LENGTH),
        Field("vehicleWidth", VehicleWidthType),
        Field("longitudinalAcceleration", LONGITUDINAL_ACCELERATION),
        Field("curvature", CURVATURE),
        Field("curvatureCalculationMode", CurvatureCalculationModeType),
        Field("yawRate", YAW_RATE),
    ],
)

RSU_CONTAINER_HF = Sequence("RSUContainerHighFrequency", [], extensible=True)

HIGH_FREQUENCY_CONTAINER = Choice(
    "HighFrequencyContainer",
    [
        ("basicVehicleContainerHighFrequency", BASIC_VEHICLE_CONTAINER_HF),
        ("rsuContainerHighFrequency", RSU_CONTAINER_HF),
    ],
    extensible=True,
)

VehicleRoleType = Enumerated(
    [
        "default", "publicTransport", "specialTransport",
        "dangerousGoods", "roadWork", "rescue", "emergency", "safetyCar",
        "agriculture", "commercial", "military", "roadOperator", "taxi",
        "reserved1", "reserved2", "reserved3",
    ],
    "VehicleRole",
)

#: DE_ExteriorLights: 8-bit map (lowBeam, highBeam, leftTurn,
#: rightTurn, daytime, reverse, fog, parking).
ExteriorLightsType = BitString(8, name="ExteriorLights")

PATH_HISTORY_CAM = SequenceOf(PATH_POINT, 0, 40, "PathHistory")

BASIC_VEHICLE_CONTAINER_LF = Sequence(
    "BasicVehicleContainerLowFrequency",
    [
        Field("vehicleRole", VehicleRoleType),
        Field("exteriorLights", ExteriorLightsType),
        Field("pathHistory", PATH_HISTORY_CAM),
    ],
)

LOW_FREQUENCY_CONTAINER = Choice(
    "LowFrequencyContainer",
    [("basicVehicleContainerLowFrequency", BASIC_VEHICLE_CONTAINER_LF)],
    extensible=True,
)

CAM_PARAMETERS = Sequence("CamParameters", [
    Field("basicContainer", BASIC_CONTAINER),
    Field("highFrequencyContainer", HIGH_FREQUENCY_CONTAINER),
    Field("lowFrequencyContainer", LOW_FREQUENCY_CONTAINER,
          optional=True),
], extensible=True)

COOP_AWARENESS = Sequence("CoopAwareness", [
    Field("generationDeltaTime", GenerationDeltaTimeType),
    Field("camParameters", CAM_PARAMETERS),
])

#: Complete CAM PDU schema (header + CoopAwareness).
CAM_PDU = Sequence("CAM", [
    Field("header", ITS_PDU_HEADER),
    Field("cam", COOP_AWARENESS),
])

#: CAM protocol version carried in the header.
CAM_PROTOCOL_VERSION = 2

#: Modulo for generationDeltaTime (EN 302 637-2: TimestampIts mod 65536).
GENERATION_DELTA_TIME_MOD = 65536


@dataclasses.dataclass(frozen=True)
class Cam:
    """An SI-unit Cooperative Awareness Message.

    Attributes mirror the fields a vehicle station fills from its own
    state vector; :meth:`encode` / :meth:`decode` translate to/from the
    UPER wire form.
    """

    station_id: int
    station_type: int
    generation_delta_time: int
    position: ReferencePosition
    heading: float = 0.0                 # degrees clockwise from north
    speed: float = 0.0                   # m/s
    drive_direction: str = "forward"
    vehicle_length: float = 0.53         # metres (the 1/10-scale car)
    vehicle_width: float = 0.30          # metres
    longitudinal_acceleration: float = 0.0  # m/s^2
    curvature: Optional[float] = None    # 1/m, None when unavailable
    yaw_rate: float = 0.0                # deg/s
    is_rsu: bool = False
    # Low-frequency container (included when path_history or
    # exterior_lights is set).
    vehicle_role: str = "default"
    exterior_lights: Optional[Tuple[int, ...]] = None
    path_history: Tuple[Tuple[float, float], ...] = ()

    def to_asn(self) -> dict:
        """Build the wire-form dict for :data:`CAM_PDU`."""
        basic = {
            "stationType": self.station_type,
            "referencePosition": self.position.to_asn(),
        }
        if self.is_rsu:
            high_frequency = ("rsuContainerHighFrequency", {})
        else:
            curvature_value = (
                1023 if self.curvature is None
                else max(-1022, min(1022, round(self.curvature * 10000.0)))
            )
            high_frequency = ("basicVehicleContainerHighFrequency", {
                "heading": {
                    "headingValue": heading_to_wire(self.heading),
                    "headingConfidence": 10,
                },
                "speed": {
                    "speedValue": speed_to_wire(self.speed),
                    "speedConfidence": 5,
                },
                "driveDirection": self.drive_direction,
                "vehicleLength": {
                    "vehicleLengthValue": _decimetres(self.vehicle_length),
                    "vehicleLengthConfidenceIndication": "noTrailerPresent",
                },
                "vehicleWidth": _decimetres(self.vehicle_width, hi=62),
                "longitudinalAcceleration": {
                    "longitudinalAccelerationValue": _accel_wire(
                        self.longitudinal_acceleration),
                    "longitudinalAccelerationConfidence": 2,
                },
                "curvature": {
                    "curvatureValue": curvature_value,
                    "curvatureConfidence": (
                        "unavailable" if self.curvature is None
                        else "onePerMeter-0-002"
                    ),
                },
                "curvatureCalculationMode": "yawRateUsed",
                "yawRate": {
                    "yawRateValue": _yaw_rate_wire(self.yaw_rate),
                    "yawRateConfidence": "degSec-001-00",
                },
            })
        parameters = {
            "basicContainer": basic,
            "highFrequencyContainer": high_frequency,
        }
        if not self.is_rsu and (self.path_history
                                or self.exterior_lights is not None):
            lights = self.exterior_lights or (0,) * 8
            parameters["lowFrequencyContainer"] = (
                "basicVehicleContainerLowFrequency", {
                    "vehicleRole": self.vehicle_role,
                    "exteriorLights": tuple(lights),
                    "pathHistory": [
                        {
                            "pathPosition": {
                                "deltaLatitude": _delta_wire(d_lat),
                                "deltaLongitude": _delta_wire(d_lon),
                                "deltaAltitude": 0,
                            },
                        }
                        for d_lat, d_lon in self.path_history[:40]
                    ],
                })
        return {
            "header": {
                "protocolVersion": CAM_PROTOCOL_VERSION,
                "messageID": MessageId.CAM,
                "stationID": self.station_id,
            },
            "cam": {
                "generationDeltaTime": self.generation_delta_time,
                "camParameters": parameters,
            },
        }

    def encode(self) -> bytes:
        """UPER-encode this CAM."""
        return CAM_PDU.to_bytes(self.to_asn())

    @staticmethod
    def from_asn(value: dict) -> "Cam":
        """Build a :class:`Cam` from a decoded :data:`CAM_PDU` dict."""
        header = value["header"]
        coop = value["cam"]
        params = coop["camParameters"]
        basic = params["basicContainer"]
        alt, hf = params["highFrequencyContainer"]
        position = ReferencePosition.from_asn(basic["referencePosition"])
        if alt == "rsuContainerHighFrequency":
            return Cam(
                station_id=header["stationID"],
                station_type=basic["stationType"],
                generation_delta_time=coop["generationDeltaTime"],
                position=position,
                is_rsu=True,
            )
        heading_wire = hf["heading"]["headingValue"]
        curvature_wire = hf["curvature"]["curvatureValue"]
        vehicle_role = "default"
        exterior_lights = None
        path_history: Tuple[Tuple[float, float], ...] = ()
        low_frequency = params.get("lowFrequencyContainer")
        if low_frequency is not None:
            _alt, lf = low_frequency
            vehicle_role = lf["vehicleRole"]
            exterior_lights = tuple(lf["exteriorLights"])
            path_history = tuple(
                (point["pathPosition"]["deltaLatitude"] / 1e7,
                 point["pathPosition"]["deltaLongitude"] / 1e7)
                for point in lf["pathHistory"]
            )
        return Cam(
            station_id=header["stationID"],
            station_type=basic["stationType"],
            generation_delta_time=coop["generationDeltaTime"],
            position=position,
            heading=(0.0 if heading_wire == HEADING_UNAVAILABLE
                     else heading_from_wire(heading_wire)),
            speed=speed_from_wire(hf["speed"]["speedValue"]),
            drive_direction=hf["driveDirection"],
            vehicle_length=hf["vehicleLength"]["vehicleLengthValue"] / 10.0,
            vehicle_width=hf["vehicleWidth"] / 10.0,
            longitudinal_acceleration=(
                hf["longitudinalAcceleration"]
                ["longitudinalAccelerationValue"] / 10.0),
            curvature=(None if curvature_wire == 1023
                       else curvature_wire / 10000.0),
            yaw_rate=hf["yawRate"]["yawRateValue"] / 100.0,
            vehicle_role=vehicle_role,
            exterior_lights=exterior_lights,
            path_history=path_history,
        )

    @staticmethod
    def decode(data: bytes) -> "Cam":
        """Decode a UPER-encoded CAM.

        Decoding is pure and :class:`Cam` is immutable, so identical
        payloads are memoised: one broadcast CAM is decoded by every
        receiver in range, and at fleet scale the memo turns N
        per-receiver decodes of the same frame into one.
        """
        return _decode_cam_cached(data)


@functools.lru_cache(maxsize=4096)
def _decode_cam_cached(data: bytes) -> Cam:
    return Cam.from_asn(CAM_PDU.from_bytes(data))


def generation_delta_time(its_timestamp_ms: int) -> int:
    """generationDeltaTime for a TimestampIts (EN 302 637-2 B.3)."""
    return its_timestamp_ms % GENERATION_DELTA_TIME_MOD


def _decimetres(metres: float, hi: int = 1023) -> int:
    return int(max(1, min(hi, round(metres * 10.0))))


def _accel_wire(mps2: float) -> int:
    return int(max(-160, min(160, round(mps2 * 10.0))))


def _yaw_rate_wire(deg_per_s: float) -> int:
    return int(max(-32766, min(32766, round(deg_per_s * 100.0))))


def _delta_wire(delta_degrees: float) -> int:
    wire = round(delta_degrees * 1e7)
    return int(max(-131071, min(131072, wire)))
