"""ETSI ITS message types: CAM and DENM.

The ASN.1 schemas are translated by hand from EN 302 637-2 (CAM),
EN 302 637-3 (DENM) and the common data dictionary TS 102 894-2, using
the :mod:`repro.asn1` UPER codec.  A convenience dataclass layer
(:class:`~repro.messages.cam.Cam`, :class:`~repro.messages.denm.Denm`)
offers SI-unit constructors, mirroring how OpenC2X applications build
messages.
"""

from repro.messages.cause_codes import (
    CauseCode,
    CAUSE_CODE_REGISTRY,
    SubCause,
    describe_event,
    lookup_cause,
)
from repro.messages.common import (
    ItsPduHeader,
    MessageId,
    ReferencePosition,
    StationType,
    its_timestamp,
    from_its_timestamp,
)
from repro.messages.cam import CAM_PDU, Cam
from repro.messages.denm import DENM_PDU, ActionId, Denm, EventType
from repro.messages.spat import (
    Lane,
    MAPEM_PDU,
    Mapem,
    MovementState,
    SPATEM_PDU,
    Spatem,
)

__all__ = [
    "ActionId",
    "CAM_PDU",
    "Cam",
    "Lane",
    "MAPEM_PDU",
    "Mapem",
    "MovementState",
    "SPATEM_PDU",
    "Spatem",
    "CauseCode",
    "CAUSE_CODE_REGISTRY",
    "DENM_PDU",
    "Denm",
    "EventType",
    "ItsPduHeader",
    "MessageId",
    "ReferencePosition",
    "StationType",
    "SubCause",
    "describe_event",
    "lookup_cause",
    "its_timestamp",
    "from_its_timestamp",
]
