"""DENM cause-code registry (EN 302 637-3, Table 10; paper's Table I).

The registry carries the *direct cause codes* and, for the codes the
paper highlights (Table I), their sub-cause tables.  The collision
avoidance application uses:

* code 94 ``stationaryVehicle`` -- a stopped vehicle detected on the road;
* code 10 ``hazardousLocation-ObstacleOnTheRoad`` -- an obstacle that can
  include a stopped vehicle;
* code 97 ``collisionRisk`` -- imminent collision (the DENM our edge
  node issues when the protagonist keeps approaching);
* code 99 ``dangerousSituation`` -- e.g. emergency electronic brake
  lights / AEB activated.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple


@dataclasses.dataclass(frozen=True)
class SubCause:
    """One row of a sub-cause table."""

    code: int
    description: str


@dataclasses.dataclass(frozen=True)
class CauseCode:
    """A direct cause code with its sub-cause table."""

    code: int
    name: str
    description: str
    sub_causes: Tuple[SubCause, ...] = ()

    def sub_cause(self, sub_code: int) -> Optional[SubCause]:
        """The :class:`SubCause` for *sub_code*, or None if unlisted."""
        for sub in self.sub_causes:
            if sub.code == sub_code:
                return sub
        return None


_UNAVAILABLE = SubCause(0, "Unavailable")


def _cc(code: int, name: str, description: str,
        subs: Tuple[SubCause, ...] = ()) -> CauseCode:
    return CauseCode(code, name, description, (_UNAVAILABLE,) + subs)


#: All direct cause codes of EN 302 637-3 Table 10 relevant to the
#: basic set of applications, keyed by numeric code.
CAUSE_CODE_REGISTRY: Dict[int, CauseCode] = {
    cc.code: cc
    for cc in (
        _cc(0, "reserved", "Reserved for future usage"),
        _cc(1, "trafficCondition", "Traffic condition", (
            SubCause(1, "Increased volume of traffic"),
            SubCause(2, "Traffic jam slowly increasing"),
            SubCause(3, "Traffic jam increasing"),
            SubCause(4, "Traffic jam strongly increasing"),
            SubCause(5, "Traffic stationary"),
            SubCause(6, "Traffic jam slightly decreasing"),
            SubCause(7, "Traffic jam decreasing"),
            SubCause(8, "Traffic jam strongly decreasing"),
        )),
        _cc(2, "accident", "Accident", (
            SubCause(1, "Multi-vehicle accident"),
            SubCause(2, "Heavy accident"),
            SubCause(3, "Accident involving lorry"),
            SubCause(4, "Accident involving bus"),
            SubCause(5, "Accident involving hazardous materials"),
            SubCause(6, "Accident on opposite lane"),
            SubCause(7, "Unsecured accident"),
            SubCause(8, "Assistance requested"),
        )),
        _cc(3, "roadworks", "Roadworks", (
            SubCause(1, "Major roadworks"),
            SubCause(2, "Road marking work"),
            SubCause(3, "Slow moving road maintenance"),
            SubCause(4, "Short-term stationary roadworks"),
            SubCause(5, "Street cleaning"),
            SubCause(6, "Winter service"),
        )),
        _cc(6, "adverseWeatherCondition-Adhesion",
            "Adverse weather condition - adhesion"),
        _cc(9, "hazardousLocation-SurfaceCondition",
            "Hazardous location - Surface condition", tuple(
                SubCause(i, f"As specified in tec109 of clause 9.18 in "
                            f"TISA TAWG11071 (value {i})")
                for i in range(1, 10)
            )),
        _cc(10, "hazardousLocation-ObstacleOnTheRoad",
            "Hazardous location - Obstacle on the road", tuple(
                SubCause(i, f"As specified in tec110 of clause 9.19 in "
                            f"TISA TAWG11071 (value {i})")
                for i in range(1, 8)
            )),
        _cc(11, "hazardousLocation-AnimalOnTheRoad",
            "Hazardous location - Animal on the road", (
                SubCause(1, "Wild animals"),
                SubCause(2, "Herd of animals"),
                SubCause(3, "Small animals"),
                SubCause(4, "Large animals"),
            )),
        _cc(12, "humanPresenceOnTheRoad", "Human presence on the road", (
            SubCause(1, "Children on roadway"),
            SubCause(2, "Cyclist on roadway"),
            SubCause(3, "Motorcyclist on roadway"),
        )),
        _cc(14, "wrongWayDriving", "Wrong way driving", (
            SubCause(1, "Wrong lane driving"),
            SubCause(2, "Wrong direction driving"),
        )),
        _cc(15, "rescueAndRecoveryWorkInProgress",
            "Rescue and recovery work in progress", (
                SubCause(1, "Emergency vehicles"),
                SubCause(2, "Rescue helicopter landing"),
                SubCause(3, "Police activity ongoing"),
                SubCause(4, "Medical emergency ongoing"),
                SubCause(5, "Child abduction in progress"),
            )),
        _cc(17, "adverseWeatherCondition-ExtremeWeatherCondition",
            "Adverse weather condition - extreme weather", (
                SubCause(1, "Strong winds"),
                SubCause(2, "Damaging hail"),
                SubCause(3, "Hurricane"),
                SubCause(4, "Thunderstorm"),
                SubCause(5, "Tornado"),
                SubCause(6, "Blizzard"),
            )),
        _cc(18, "adverseWeatherCondition-Visibility",
            "Adverse weather condition - visibility", (
                SubCause(1, "Fog"),
                SubCause(2, "Smoke"),
                SubCause(3, "Heavy snowfall"),
                SubCause(4, "Heavy rain"),
                SubCause(5, "Heavy hail"),
                SubCause(6, "Low sun glare"),
                SubCause(7, "Sandstorms"),
                SubCause(8, "Swarms of insects"),
            )),
        _cc(19, "adverseWeatherCondition-Precipitation",
            "Adverse weather condition - precipitation", (
                SubCause(1, "Heavy rain"),
                SubCause(2, "Heavy snowfall"),
                SubCause(3, "Soft hail"),
            )),
        _cc(26, "slowVehicle", "Slow vehicle", (
            SubCause(1, "Maintenance vehicle"),
            SubCause(2, "Vehicles slowing to look at accident"),
            SubCause(3, "Abnormal load"),
            SubCause(4, "Abnormal wide load"),
            SubCause(5, "Convoy"),
            SubCause(6, "Snowplough"),
            SubCause(7, "Deicing"),
            SubCause(8, "Salting vehicles"),
        )),
        _cc(27, "dangerousEndOfQueue", "Dangerous end of queue", (
            SubCause(1, "Sudden end of queue"),
            SubCause(2, "Queue over hill"),
            SubCause(3, "Queue around bend"),
            SubCause(4, "Queue in tunnel"),
        )),
        _cc(91, "vehicleBreakdown", "Vehicle breakdown", (
            SubCause(1, "Lack of fuel"),
            SubCause(2, "Lack of battery power"),
            SubCause(3, "Engine problem"),
            SubCause(4, "Transmission problem"),
            SubCause(5, "Engine cooling problem"),
            SubCause(6, "Braking system problem"),
            SubCause(7, "Steering problem"),
            SubCause(8, "Tyre puncture"),
        )),
        _cc(92, "postCrash", "Post crash", (
            SubCause(1, "Accident without e-call triggered"),
            SubCause(2, "Accident with e-call manually triggered"),
            SubCause(3, "Accident with e-call automatically triggered"),
            SubCause(4, "Accident with e-call triggered, no access to "
                        "cellular network"),
        )),
        _cc(93, "humanProblem", "Human problem", (
            SubCause(1, "Glycemia problem"),
            SubCause(2, "Heart problem"),
        )),
        _cc(94, "stationaryVehicle", "Stationary vehicle", (
            SubCause(1, "Human problem"),
            SubCause(2, "Vehicle breakdown"),
            SubCause(3, "Post crash"),
            SubCause(4, "Public transport stop"),
            SubCause(5, "Carrying dangerous goods"),
        )),
        _cc(95, "emergencyVehicleApproaching",
            "Emergency vehicle approaching", (
                SubCause(1, "Emergency vehicle approaching"),
                SubCause(2, "Prioritized vehicle approaching"),
            )),
        _cc(96, "hazardousLocation-DangerousCurve",
            "Hazardous location - Dangerous curve", (
                SubCause(1, "Dangerous left turn curve"),
                SubCause(2, "Dangerous right turn curve"),
                SubCause(3, "Multiple curves starting with unknown turning "
                            "direction"),
                SubCause(4, "Multiple curves starting with left turn"),
                SubCause(5, "Multiple curves starting with right turn"),
            )),
        _cc(97, "collisionRisk", "Collision Risk", (
            SubCause(1, "Longitudinal collision risk"),
            SubCause(2, "Crossing collision risk"),
            SubCause(3, "Lateral collision risk"),
            SubCause(4, "Collision risk involving vulnerable road-user"),
        )),
        _cc(98, "signalViolation", "Signal violation", (
            SubCause(1, "Stop sign violation"),
            SubCause(2, "Traffic light violation"),
            SubCause(3, "Turning regulation violation"),
        )),
        _cc(99, "dangerousSituation", "Dangerous Situation", (
            SubCause(1, "Emergency electronic brake lights"),
            SubCause(2, "Pre-crash system activated"),
            SubCause(3, "ESP (Electronic Stability Program) activated"),
            SubCause(4, "ABS (Anti-lock braking system) activated"),
            SubCause(5, "AEB (Automatic Emergency Braking) activated"),
            SubCause(6, "Brake warning activated"),
            SubCause(7, "Collision risk warning activated"),
        )),
    )
}

#: Codes the collision avoidance application emits.
COLLISION_RISK = 97
STATIONARY_VEHICLE = 94
OBSTACLE_ON_ROAD = 10
DANGEROUS_SITUATION = 99

#: Sub-causes used by the use-case.
CROSSING_COLLISION_RISK = 2
LONGITUDINAL_COLLISION_RISK = 1


def lookup_cause(code: int) -> Optional[CauseCode]:
    """The :class:`CauseCode` for *code*, or None if unregistered."""
    return CAUSE_CODE_REGISTRY.get(code)


def describe_event(cause_code: int, sub_cause_code: int = 0) -> str:
    """Human-readable description of a (causeCode, subCauseCode) pair."""
    cause = lookup_cause(cause_code)
    if cause is None:
        return f"Unknown cause code {cause_code}"
    sub = cause.sub_cause(sub_cause_code)
    if sub is None:
        return f"{cause.description} (sub-cause {sub_cause_code} unlisted)"
    return f"{cause.description}: {sub.description}"
