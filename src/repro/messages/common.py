"""Common ITS data elements (TS 102 894-2) and the ITS PDU header.

Only the elements used by CAM/DENM are defined.  Ranges follow the
data dictionary; unit helpers convert between SI and wire units:

* latitude/longitude: 0.1 micro-degree steps;
* speed: 0.01 m/s steps;
* heading: 0.1 degree steps;
* ITS timestamps: milliseconds since the ITS epoch (2004-01-01 UTC).
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

from repro.asn1 import Enumerated, Field, Integer, Sequence

# ---------------------------------------------------------------------------
# Wire-level type objects (ASN.1 schema fragments)
# ---------------------------------------------------------------------------

StationIdType = Integer(0, 4294967295, "StationID")
ProtocolVersionType = Integer(0, 255, "protocolVersion")
MessageIdType = Integer(0, 255, "messageID")

ITS_PDU_HEADER = Sequence("ItsPduHeader", [
    Field("protocolVersion", ProtocolVersionType),
    Field("messageID", MessageIdType),
    Field("stationID", StationIdType),
])

LatitudeType = Integer(-900000000, 900000001, "Latitude")
LongitudeType = Integer(-1800000000, 1800000001, "Longitude")
AltitudeValueType = Integer(-100000, 800001, "AltitudeValue")
AltitudeConfidenceType = Enumerated(
    [
        "alt-000-01", "alt-000-02", "alt-000-05", "alt-000-10",
        "alt-000-20", "alt-000-50", "alt-001-00", "alt-002-00",
        "alt-005-00", "alt-010-00", "alt-020-00", "alt-050-00",
        "alt-100-00", "alt-200-00", "outOfRange", "unavailable",
    ],
    "AltitudeConfidence",
)
SemiAxisLengthType = Integer(0, 4095, "SemiAxisLength")
HeadingValueType = Integer(0, 3601, "HeadingValue")
HeadingConfidenceType = Integer(1, 127, "HeadingConfidence")
SpeedValueType = Integer(0, 16383, "SpeedValue")
SpeedConfidenceType = Integer(1, 127, "SpeedConfidence")
TimestampItsType = Integer(0, 4398046511103, "TimestampIts")
DeltaTimeSecondType = Integer(0, 65535, "DeltaTimeSecond")

POS_CONFIDENCE_ELLIPSE = Sequence("PosConfidenceEllipse", [
    Field("semiMajorConfidence", SemiAxisLengthType),
    Field("semiMinorConfidence", SemiAxisLengthType),
    Field("semiMajorOrientation", HeadingValueType),
])

ALTITUDE = Sequence("Altitude", [
    Field("altitudeValue", AltitudeValueType),
    Field("altitudeConfidence", AltitudeConfidenceType),
])

REFERENCE_POSITION = Sequence("ReferencePosition", [
    Field("latitude", LatitudeType),
    Field("longitude", LongitudeType),
    Field("positionConfidenceEllipse", POS_CONFIDENCE_ELLIPSE),
    Field("altitude", ALTITUDE),
])

HEADING = Sequence("Heading", [
    Field("headingValue", HeadingValueType),
    Field("headingConfidence", HeadingConfidenceType),
])

SPEED = Sequence("Speed", [
    Field("speedValue", SpeedValueType),
    Field("speedConfidence", SpeedConfidenceType),
])

StationTypeType = Integer(0, 255, "StationType")

DeltaLatitudeType = Integer(-131071, 131072, "DeltaLatitude")
DeltaLongitudeType = Integer(-131071, 131072, "DeltaLongitude")
DeltaAltitudeType = Integer(-12700, 12800, "DeltaAltitude")
PathDeltaTimeType = Integer(1, 65535, "PathDeltaTime")

DELTA_REFERENCE_POSITION = Sequence("DeltaReferencePosition", [
    Field("deltaLatitude", DeltaLatitudeType),
    Field("deltaLongitude", DeltaLongitudeType),
    Field("deltaAltitude", DeltaAltitudeType),
])

PATH_POINT = Sequence("PathPoint", [
    Field("pathPosition", DELTA_REFERENCE_POSITION),
    Field("pathDeltaTime", PathDeltaTimeType, optional=True),
])


# ---------------------------------------------------------------------------
# Python-side constants and dataclasses
# ---------------------------------------------------------------------------


class MessageId:
    """ITS message identifiers (TS 102 894-2 DE_ItsPduHeader)."""

    DENM = 1
    CAM = 2
    POI = 3
    SPAT = 4
    MAP = 5
    IVI = 6
    EV_RSR = 7


class StationType:
    """DE_StationType values."""

    UNKNOWN = 0
    PEDESTRIAN = 1
    CYCLIST = 2
    MOPED = 3
    MOTORCYCLE = 4
    PASSENGER_CAR = 5
    BUS = 6
    LIGHT_TRUCK = 7
    HEAVY_TRUCK = 8
    TRAILER = 9
    SPECIAL_VEHICLE = 10
    TRAM = 11
    ROAD_SIDE_UNIT = 15


#: Seconds between the Unix epoch and the ITS epoch (2004-01-01T00:00:00Z).
ITS_EPOCH_UNIX = 1072915200.0

#: Sentinel wire values meaning "unavailable".
LATITUDE_UNAVAILABLE = 900000001
LONGITUDE_UNAVAILABLE = 1800000001
ALTITUDE_UNAVAILABLE = 800001
HEADING_UNAVAILABLE = 3601
SPEED_UNAVAILABLE = 16383
SEMI_AXIS_UNAVAILABLE = 4095


def its_timestamp(unix_seconds: float) -> int:
    """Milliseconds since the ITS epoch for a Unix time in seconds."""
    millis = round((unix_seconds - ITS_EPOCH_UNIX) * 1000.0)
    if millis < 0:
        raise ValueError(f"time {unix_seconds} predates the ITS epoch")
    return millis


def from_its_timestamp(millis: int) -> float:
    """Unix time in seconds for an ITS timestamp in milliseconds."""
    return ITS_EPOCH_UNIX + millis / 1000.0


def latitude_to_wire(degrees: float) -> int:
    """Degrees -> 0.1 micro-degree wire units (clamped to range)."""
    return int(max(-900000000, min(900000000, round(degrees * 1e7))))


def latitude_from_wire(value: int) -> float:
    """0.1 micro-degree wire units -> degrees."""
    return value / 1e7


def longitude_to_wire(degrees: float) -> int:
    """Degrees -> 0.1 micro-degree wire units (clamped to range)."""
    return int(max(-1800000000, min(1800000000, round(degrees * 1e7))))


def longitude_from_wire(value: int) -> float:
    """0.1 micro-degree wire units -> degrees."""
    return value / 1e7


def speed_to_wire(mps: float) -> int:
    """Metres/second -> 0.01 m/s wire units (clamped to valid range)."""
    return int(max(0, min(16382, round(mps * 100.0))))


def speed_from_wire(value: int) -> float:
    """0.01 m/s wire units -> metres/second."""
    return value / 100.0


def heading_to_wire(degrees: float) -> int:
    """Degrees clockwise from north -> 0.1 degree wire units."""
    return int(round((degrees % 360.0) * 10.0)) % 3600


def heading_from_wire(value: int) -> float:
    """0.1 degree wire units -> degrees."""
    return value / 10.0


@dataclasses.dataclass(frozen=True)
class ItsPduHeader:
    """Decoded ITS PDU header."""

    protocol_version: int
    message_id: int
    station_id: int

    def to_asn(self) -> dict:
        """The wire-form dict for :data:`ITS_PDU_HEADER`."""
        return {
            "protocolVersion": self.protocol_version,
            "messageID": self.message_id,
            "stationID": self.station_id,
        }

    @staticmethod
    def from_asn(value: dict) -> "ItsPduHeader":
        """Build from a decoded :data:`ITS_PDU_HEADER` dict."""
        return ItsPduHeader(
            protocol_version=value["protocolVersion"],
            message_id=value["messageID"],
            station_id=value["stationID"],
        )


@dataclasses.dataclass(frozen=True)
class ReferencePosition:
    """A geographic position in SI units (degrees / metres)."""

    latitude: float
    longitude: float
    altitude: float = 0.0
    semi_major_confidence: float = 1.0  # metres
    semi_minor_confidence: float = 1.0  # metres

    def to_asn(self) -> dict:
        """The wire-form dict for :data:`REFERENCE_POSITION`."""
        return {
            "latitude": latitude_to_wire(self.latitude),
            "longitude": longitude_to_wire(self.longitude),
            "positionConfidenceEllipse": {
                "semiMajorConfidence": _confidence_cm(
                    self.semi_major_confidence),
                "semiMinorConfidence": _confidence_cm(
                    self.semi_minor_confidence),
                "semiMajorOrientation": 0,
            },
            "altitude": {
                "altitudeValue": _altitude_cm(self.altitude),
                "altitudeConfidence": "unavailable",
            },
        }

    @staticmethod
    def from_asn(value: dict) -> "ReferencePosition":
        """Build from a decoded :data:`REFERENCE_POSITION` dict."""
        ellipse = value["positionConfidenceEllipse"]
        return ReferencePosition(
            latitude=latitude_from_wire(value["latitude"]),
            longitude=longitude_from_wire(value["longitude"]),
            altitude=value["altitude"]["altitudeValue"] / 100.0,
            semi_major_confidence=ellipse["semiMajorConfidence"] / 100.0,
            semi_minor_confidence=ellipse["semiMinorConfidence"] / 100.0,
        )

    def as_tuple(self) -> Tuple[float, float]:
        """(latitude, longitude) in degrees."""
        return (self.latitude, self.longitude)


def _confidence_cm(metres: float) -> int:
    return int(max(0, min(4094, round(metres * 100.0))))


def _altitude_cm(metres: float) -> int:
    return int(max(-100000, min(800000, round(metres * 100.0))))
