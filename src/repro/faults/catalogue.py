"""Built-in fault plans: the default fault-matrix campaign.

Windows are tuned to the default scenario's timeline (start 6 m out
at ~1.45 m/s): the vehicle crosses the Action Point around t=3.1 s,
the DENM goes on the air around t=3.2 s and the happy-path halt lands
around t=4 s.  A [2 s, 6 s] window therefore brackets the entire
critical phase of the chain of action.

Expected verdicts at the default seeds are tabulated in
``EXPERIMENTS.md`` (section "Fault matrix").
"""

from __future__ import annotations

from typing import Dict, List

from repro.faults.plan import (
    ActuationFault,
    CameraBlackout,
    CameraFrameDrops,
    ClockFault,
    FaultPlan,
    HttpDegradation,
    Jamming,
    NodeOutage,
    PacketLossBurst,
    SpuriousDenm,
)

#: Start of the default injection window (s): before the Action Point.
WINDOW_START = 2.0
#: End of the default injection window (s): after the happy-path halt.
WINDOW_END = 6.0
_DURATION = WINDOW_END - WINDOW_START


def builtin_plans() -> List[FaultPlan]:
    """The default fault matrix, baseline first."""
    return [
        FaultPlan.empty("baseline"),
        FaultPlan("rsu_outage", (
            NodeOutage(start=WINDOW_START, duration=_DURATION,
                       target="rsu"),)),
        FaultPlan("camera_blackout", (
            CameraBlackout(start=WINDOW_START),)),
        FaultPlan("camera_frame_drops", (
            CameraFrameDrops(start=WINDOW_START, duration=_DURATION,
                             drop_probability=0.6),)),
        FaultPlan("packet_loss", (
            PacketLossBurst(start=WINDOW_START, duration=_DURATION,
                            loss_probability=1.0),)),
        FaultPlan("jamming", (
            Jamming(start=WINDOW_START, duration=_DURATION,
                    interference_dbm=-30.0),)),
        FaultPlan("obu_http_degraded", (
            HttpDegradation(start=WINDOW_START, duration=_DURATION,
                            target="obu", extra_service_delay=0.05,
                            drop_probability=0.9),)),
        FaultPlan("edge_clock_step", (
            ClockFault(start=WINDOW_START, target="edge",
                       step_seconds=0.05),)),
        FaultPlan("actuation_stuck", (
            ActuationFault(start=WINDOW_START, duration=_DURATION,
                           mode="stuck"),)),
        FaultPlan("weak_brakes", (
            ActuationFault(mode="limited", brake_factor=0.3),)),
        FaultPlan("spurious_denm", (
            SpuriousDenm(start=WINDOW_START),)),
    ]


def plans_by_name() -> Dict[str, FaultPlan]:
    """Name -> plan for the built-in catalogue."""
    return {plan.name: plan for plan in builtin_plans()}
