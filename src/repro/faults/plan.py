"""Declarative fault plans: typed fault models with activation windows.

A :class:`FaultPlan` is a frozen, JSON-serialisable description of
*what goes wrong and when* during one run -- the dependability
analogue of :class:`~repro.core.scenario.EmergencyBrakeScenario`.
Each fault is a frozen dataclass with an activation window
(``start``/``duration`` in simulated seconds) plus type-specific
parameters; :mod:`repro.faults.injector` maps each type onto the
seams of the assembled testbed.

Plans serialise canonically (``to_dict``/``from_dict`` like
:class:`~repro.core.measurement.RunMeasurement`), so they can be
folded into the campaign cache fingerprint, stored in experiment
files, and compared bit for bit: two plans are *the same plan* iff
their ``to_dict()`` forms compare equal.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, ClassVar, Dict, Optional, Tuple, Type


@dataclasses.dataclass(frozen=True)
class Fault:
    """One fault with an activation window.

    ``start`` is when the fault activates (simulated seconds);
    ``duration`` how long it stays active.  A fault that should last
    for the rest of the run uses an infinite duration (serialised as
    the string ``"inf"``).
    """

    KIND: ClassVar[str] = ""

    start: float = 0.0
    duration: float = math.inf

    @property
    def end(self) -> float:
        """When the fault deactivates (may be +inf)."""
        return self.start + self.duration

    def active(self, now: float) -> bool:
        """Whether the fault is active at time *now*."""
        return self.start <= now < self.end

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-serialisable form (kind + every field)."""
        data: Dict[str, Any] = {"kind": self.KIND}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if isinstance(value, float) and math.isinf(value):
                value = "inf"
            data[field.name] = value
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Fault":
        """Rebuild a fault serialised by :meth:`to_dict`.

        Dispatches on ``data["kind"]`` via :func:`fault_from_dict`;
        calling it on a concrete subclass additionally checks the
        rebuilt fault really is of that subclass.
        """
        fault = fault_from_dict(data)
        if not isinstance(fault, cls):
            raise ValueError(
                f"fault kind {data.get('kind')!r} deserialises to "
                f"{type(fault).__name__}, not {cls.__name__}")
        return fault

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"fault start must be >= 0, got {self.start}")
        if self.duration < 0:
            raise ValueError(
                f"fault duration must be >= 0, got {self.duration}")


@dataclasses.dataclass(frozen=True)
class NodeOutage(Fault):
    """A component crashes for the window, then restarts.

    Targets:

    * ``"rsu"`` -- the whole RSU board: its OpenC2X web service stops
      answering (requests are dropped; clients see timeouts) and its
      radio neither transmits nor receives;
    * ``"rsu_radio"`` -- only the RSU's 802.11p radio is down (the web
      service keeps accepting ``/trigger_denm``, so queued DEN
      repetitions resume on the air after the restart);
    * ``"edge"`` -- the edge node: the road-side camera stops
      producing frames, so no detections and no hazard triggers.
    """

    KIND: ClassVar[str] = "node_outage"

    target: str = "rsu"

    VALID_TARGETS: ClassVar[Tuple[str, ...]] = ("rsu", "rsu_radio", "edge")

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.target not in self.VALID_TARGETS:
            raise ValueError(
                f"unknown outage target {self.target!r}; "
                f"expected one of {self.VALID_TARGETS}")


@dataclasses.dataclass(frozen=True)
class CameraBlackout(Fault):
    """The road-side camera produces no frames during the window."""

    KIND: ClassVar[str] = "camera_blackout"


@dataclasses.dataclass(frozen=True)
class CameraFrameDrops(Fault):
    """A burst of dropped camera frames (each frame lost i.i.d.)."""

    KIND: ClassVar[str] = "camera_frame_drops"

    drop_probability: float = 0.5

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.drop_probability <= 1.0:
            raise ValueError(
                f"drop_probability must be in [0, 1], "
                f"got {self.drop_probability}")


@dataclasses.dataclass(frozen=True)
class PacketLossBurst(Fault):
    """Frames on the wireless medium are lost during the window.

    With ``station`` set, only receptions *at* that NIC are affected
    (a localised fade around one antenna); otherwise every receiver
    on the channel suffers.
    """

    KIND: ClassVar[str] = "packet_loss"

    loss_probability: float = 1.0
    station: Optional[str] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.loss_probability <= 1.0:
            raise ValueError(
                f"loss_probability must be in [0, 1], "
                f"got {self.loss_probability}")


@dataclasses.dataclass(frozen=True)
class Jamming(Fault):
    """Broadband interference raises the noise floor at every receiver.

    ``interference_dbm`` is the jammer power as seen at the victim
    receivers; it adds to the interference term of the SINR, driving
    up the packet error rate of the 802.11p PHY.
    """

    KIND: ClassVar[str] = "jamming"

    interference_dbm: float = -85.0


@dataclasses.dataclass(frozen=True)
class HttpDegradation(Fault):
    """The OpenC2X web service of one unit slows down / times out.

    ``extra_service_delay`` is added to the server's mean service
    time during the window; ``drop_probability`` makes requests or
    responses vanish in transit (clients need timeouts to survive).
    """

    KIND: ClassVar[str] = "http_degradation"

    target: str = "obu"
    extra_service_delay: float = 0.0
    drop_probability: float = 0.0

    VALID_TARGETS: ClassVar[Tuple[str, ...]] = ("rsu", "obu")

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.target not in self.VALID_TARGETS:
            raise ValueError(
                f"unknown http target {self.target!r}; "
                f"expected one of {self.VALID_TARGETS}")
        if not 0.0 <= self.drop_probability <= 1.0:
            raise ValueError(
                f"drop_probability must be in [0, 1], "
                f"got {self.drop_probability}")


@dataclasses.dataclass(frozen=True)
class ClockFault(Fault):
    """One device's NTP-disciplined clock steps and/or drifts.

    At ``start`` the clock jumps by ``step_seconds`` and picks up an
    additional frequency error of ``drift_ppm``; at the window end
    the extra drift is removed (the step stays until the next NTP
    correction re-pulls the offset, exactly like a real clock upset).
    Affects the device-clock timestamps (Table II methodology), not
    the physical simulation.
    """

    KIND: ClassVar[str] = "clock_fault"

    target: str = "edge"
    step_seconds: float = 0.0
    drift_ppm: float = 0.0

    VALID_TARGETS: ClassVar[Tuple[str, ...]] = (
        "edge", "rsu", "obu", "vehicle")

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.target not in self.VALID_TARGETS:
            raise ValueError(
                f"unknown clock target {self.target!r}; "
                f"expected one of {self.VALID_TARGETS}")


@dataclasses.dataclass(frozen=True)
class ActuationFault(Fault):
    """The vehicle's actuation path degrades.

    * ``"stuck"`` -- commands sent during the window never reach the
      ESC/servo (a wedged Teensy): an emergency stop commanded while
      stuck is silently lost;
    * ``"limited"`` -- braking force is reduced to ``brake_factor``
      of nominal (worn tyres / weak drag brake), so the vehicle
      still stops, but much later.
    """

    KIND: ClassVar[str] = "actuation"

    mode: str = "stuck"
    brake_factor: float = 0.25

    VALID_MODES: ClassVar[Tuple[str, ...]] = ("stuck", "limited")

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.mode not in self.VALID_MODES:
            raise ValueError(
                f"unknown actuation mode {self.mode!r}; "
                f"expected one of {self.VALID_MODES}")
        if self.brake_factor <= 0:
            raise ValueError(
                f"brake_factor must be > 0, got {self.brake_factor}")


@dataclasses.dataclass(frozen=True)
class SpuriousDenm(Fault):
    """A ghost DENM appears in the OBU's queue at ``start``.

    Models a replayed / forged / mis-addressed warning reaching the
    vehicle with no physical hazard behind it -- the fault that
    produces SPURIOUS_STOP verdicts (stopping when nothing required
    it is itself a safety and availability failure).
    """

    KIND: ClassVar[str] = "spurious_denm"

    cause_code: int = 97


#: kind string -> fault class, for deserialisation.
FAULT_TYPES: Dict[str, Type[Fault]] = {
    cls.KIND: cls
    for cls in (NodeOutage, CameraBlackout, CameraFrameDrops,
                PacketLossBurst, Jamming, HttpDegradation, ClockFault,
                ActuationFault, SpuriousDenm)
}


def fault_from_dict(data: Dict[str, Any]) -> Fault:
    """Rebuild one fault serialised by :meth:`Fault.to_dict`."""
    kind = data.get("kind")
    cls = FAULT_TYPES.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown fault kind {kind!r}; known kinds: "
            f"{sorted(FAULT_TYPES)}")
    kwargs = {}
    for field in dataclasses.fields(cls):
        if field.name not in data:
            continue
        value = data[field.name]
        if value == "inf":
            value = math.inf
        kwargs[field.name] = value
    unknown = set(data) - {"kind"} - {f.name for f in
                                      dataclasses.fields(cls)}
    if unknown:
        raise ValueError(
            f"unknown field(s) {sorted(unknown)} for fault kind "
            f"{kind!r}")
    return cls(**kwargs)


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A named, ordered collection of faults for one run."""

    name: str = "baseline"
    faults: Tuple[Fault, ...] = ()

    def __post_init__(self) -> None:
        # Accept any iterable of faults, store canonically as a tuple.
        if not isinstance(self.faults, tuple):
            object.__setattr__(self, "faults", tuple(self.faults))

    @property
    def is_empty(self) -> bool:
        """Whether this plan injects nothing (the baseline)."""
        return not self.faults

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-serialisable form of the whole plan."""
        return {
            "name": self.name,
            "faults": [fault.to_dict() for fault in self.faults],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        """Rebuild a plan serialised by :meth:`to_dict`.

        Strict by design: both keys ``to_dict`` emits are required
        and unknown keys are rejected, so a truncated or mistyped
        plan payload fails loudly instead of silently running the
        baseline.
        """
        unknown = set(data) - {"name", "faults"}
        if unknown:
            raise ValueError(
                f"unknown fault-plan field(s) {sorted(unknown)}")
        return cls(
            name=str(data["name"]),
            faults=tuple(fault_from_dict(entry)
                         for entry in data["faults"]),
        )

    @staticmethod
    def empty(name: str = "baseline") -> "FaultPlan":
        """The no-fault plan (runs reproduce the happy path exactly)."""
        return FaultPlan(name=name)
