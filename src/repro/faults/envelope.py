"""Dependability verdicts: did the safety function do its job?

The paper's happy-path metrics (Table II latencies, Table III braking
distances) presume the chain of action completes.  Under injected
faults the interesting question is categorical: classify each run by
*what the warning chain achieved*:

* ``SAFE_STOP`` -- the vehicle stopped with at least the safety
  margin left before the camera (the scale testbed's "obstacle");
* ``LATE_STOP`` -- it stopped, but inside the margin (or past the
  camera): the warning arrived / acted too late;
* ``NO_STOP`` -- the emergency stop never completed within the run
  timeout: the warning was lost, or actuation failed;
* ``SPURIOUS_STOP`` -- the vehicle stopped although no hazard had
  been detected (a ghost warning): an availability failure.

The default margin is one vehicle length of the 1/10-scale car
(0.53 m, the paper's Traxxas platform) -- stopping closer than your
own length to the obstacle is counted as a near-miss.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Dict, Optional

from repro.core.measurement import RunMeasurement, Steps

SAFE_STOP = "SAFE_STOP"
LATE_STOP = "LATE_STOP"
NO_STOP = "NO_STOP"
SPURIOUS_STOP = "SPURIOUS_STOP"

#: All verdicts, in severity order (best first).
VERDICTS = (SAFE_STOP, LATE_STOP, NO_STOP, SPURIOUS_STOP)


@dataclasses.dataclass(frozen=True)
class SafetyEnvelope:
    """The classification thresholds.

    Attributes:
        safe_stop_margin: minimum camera-to-halt distance (m) for a
            stop to count as safe; default one vehicle length.
    """

    safe_stop_margin: float = 0.53


@dataclasses.dataclass
class DependabilityVerdict:
    """One run's classification plus the diagnostics behind it."""

    verdict: str
    #: Signed distance (m) left between halt point and camera
    #: (negative: stopped past the camera); None if never halted.
    stop_margin: Optional[float] = None
    #: Metres travelled beyond the Action Point before halting.
    distance_beyond_action_point: Optional[float] = None
    #: Whether the DENM reached the OBU (step 4).
    denm_delivered: bool = False
    #: Whether the hazard was detected (step 2).
    detected: bool = False
    #: Whether the stop command reached the actuators (step 5).
    actuated: bool = False
    #: Whether the vehicle came to a halt (step 6).
    halted: bool = False
    #: Step 2 -> 5 total delay (ms, ground truth); None if incomplete.
    total_delay_ms: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-serialisable form."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DependabilityVerdict":
        """Rebuild a verdict serialised by :meth:`to_dict`."""
        return cls(**data)


def evaluate(measurement: RunMeasurement,
             envelope: Optional[SafetyEnvelope] = None,
             ) -> DependabilityVerdict:
    """Classify one run against the envelope.

    Pure function of the measurement: the same (scenario, plan, seed)
    run always yields the same verdict, so verdicts inherit the
    campaign engine's bit-reproducibility.
    """
    env = envelope or SafetyEnvelope()
    timeline = measurement.timeline
    detection = timeline.get(Steps.DETECTION)
    actuators = timeline.get(Steps.ACTUATORS)
    halted_record = timeline.get(Steps.HALTED)
    detected = detection is not None
    actuated = actuators is not None
    halted = halted_record is not None
    denm_delivered = timeline.has(Steps.OBU_RECEIVED)

    total_delay = measurement.total_delay(use_clock=False)
    total_delay_ms = None if total_delay is None else total_delay * 1000.0

    stop_margin: Optional[float] = None
    beyond_action: Optional[float] = None
    if halted:
        halt_x = halted_record.detail.get("x")
        if halt_x is not None:
            # Camera at the origin, vehicle approaching along +x:
            # the halt abscissa *is* the signed margin.
            stop_margin = float(halt_x)
        else:
            stop_margin = measurement.final_distance_to_camera
        beyond_action = measurement.distance_from_action_point

    verdict = NO_STOP
    if actuated and (not detected
                     or actuators.sim_time < detection.sim_time):
        # Stopped on a warning that preceded any real detection: a
        # ghost DENM did this, not the safety chain.
        verdict = SPURIOUS_STOP
    elif not actuated or not halted:
        verdict = NO_STOP
    elif stop_margin is not None and not math.isnan(stop_margin) \
            and stop_margin >= env.safe_stop_margin:
        verdict = SAFE_STOP
    else:
        verdict = LATE_STOP

    return DependabilityVerdict(
        verdict=verdict,
        stop_margin=stop_margin,
        distance_beyond_action_point=beyond_action,
        denm_delivered=denm_delivered,
        detected=detected,
        actuated=actuated,
        halted=halted,
        total_delay_ms=total_delay_ms,
    )
