"""Fault-matrix campaigns: N plans x M seeds, one table out.

Crosses a list of :class:`~repro.faults.plan.FaultPlan` with a seed
population: every plan runs the same *runs* seeds through the
parallel campaign engine (:func:`repro.core.campaign.
run_campaign_parallel`), every run is classified by the
:mod:`~repro.faults.envelope`, and each plan aggregates into one row
of availability / safety statistics.

Because each (scenario, plan, seed) run is deterministic and plans
fold into the cache fingerprint, the matrix is bit-reproducible:
``workers=4`` yields exactly the rows of ``workers=1``, and a warm
cache replays them without simulating.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.campaign import run_campaign_parallel
from repro.core.scenario import EmergencyBrakeScenario, scenario_from_dict
from repro.faults.envelope import (
    DependabilityVerdict,
    SAFE_STOP,
    SafetyEnvelope,
    VERDICTS,
    evaluate,
)
from repro.faults.plan import FaultPlan

#: Called after each plan's campaign: ``progress(plan_name, i, total)``.
MatrixProgress = Callable[[str, int, int], None]


@dataclasses.dataclass
class FaultMatrixRow:
    """One plan's aggregated outcome over the seed population."""

    plan: FaultPlan
    #: Per-run verdicts, ordered by run_id.
    verdicts: List[DependabilityVerdict]

    @property
    def name(self) -> str:
        return self.plan.name

    @property
    def runs(self) -> int:
        return len(self.verdicts)

    def count(self, verdict: str) -> int:
        """How many runs were classified *verdict*."""
        return sum(1 for v in self.verdicts if v.verdict == verdict)

    @property
    def counts(self) -> Dict[str, int]:
        """Verdict -> run count, every verdict present."""
        return {verdict: self.count(verdict) for verdict in VERDICTS}

    @property
    def availability(self) -> float:
        """Fraction of runs in which the safety function succeeded."""
        if not self.verdicts:
            return float("nan")
        return self.count(SAFE_STOP) / len(self.verdicts)

    @property
    def denm_delivery_rate(self) -> float:
        """Fraction of runs in which the DENM reached the OBU."""
        if not self.verdicts:
            return float("nan")
        delivered = sum(1 for v in self.verdicts if v.denm_delivered)
        return delivered / len(self.verdicts)

    @property
    def mean_stop_margin(self) -> Optional[float]:
        """Mean signed stop margin (m) over the halted runs."""
        margins = [v.stop_margin for v in self.verdicts
                   if v.stop_margin is not None]
        if not margins:
            return None
        return sum(margins) / len(margins)

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-serialisable form (the equivalence oracle)."""
        return {
            "plan": self.plan.to_dict(),
            "verdicts": [v.to_dict() for v in self.verdicts],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultMatrixRow":
        """Rebuild a row serialised by :meth:`to_dict`."""
        return cls(
            plan=FaultPlan.from_dict(data["plan"]),
            verdicts=[DependabilityVerdict.from_dict(entry)
                      for entry in data["verdicts"]],
        )


@dataclasses.dataclass
class FaultMatrixResult:
    """The whole matrix: one row per plan, shared scenario + seeds."""

    scenario: EmergencyBrakeScenario
    envelope: SafetyEnvelope
    base_seed: int
    rows: List[FaultMatrixRow]

    def row(self, name: str) -> FaultMatrixRow:
        """The row for the plan called *name* (raises if absent)."""
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(name)

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-serialisable form of every row."""
        return {
            "base_seed": self.base_seed,
            "envelope": dataclasses.asdict(self.envelope),
            "rows": [row.to_dict() for row in self.rows],
            "scenario": dataclasses.asdict(self.scenario),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultMatrixResult":
        """Rebuild a matrix serialised by :meth:`to_dict`."""
        return cls(
            scenario=scenario_from_dict(data["scenario"]),
            envelope=SafetyEnvelope(**data["envelope"]),
            base_seed=int(data["base_seed"]),
            rows=[FaultMatrixRow.from_dict(entry)
                  for entry in data["rows"]],
        )


def run_fault_matrix(
    scenario: Optional[EmergencyBrakeScenario] = None,
    plans: Sequence[FaultPlan] = (),
    runs: int = 5,
    base_seed: int = 1,
    workers: int = 1,
    cache_dir: Optional[str] = None,
    envelope: Optional[SafetyEnvelope] = None,
    progress: Optional[MatrixProgress] = None,
    cache_salt: Optional[str] = None,
    backend: str = "pool",
    queue_dir: Optional[str] = None,
) -> FaultMatrixResult:
    """Run every plan over the same seed population and classify.

    Plans execute in the given order; within one plan the runs shard
    over *workers* exactly like an ordinary campaign (``workers=0``
    auto-sizes).  Rows come back in plan order with verdicts ordered
    by run_id, so the result is invariant to scheduling.  A
    *cache_salt* is forwarded into every run's cache fingerprint (the
    variation engine namespaces its points this way); it never changes
    what is simulated.

    *backend*/*queue_dir* forward to the campaign engine: with
    ``backend="queue"`` each plan's population runs on the durable
    work queue (per-plan queue state under ``queue_dir/plan-<i>``),
    surviving worker loss without changing any verdict.
    """
    scenario = scenario or EmergencyBrakeScenario()
    envelope = envelope or SafetyEnvelope()
    rows: List[FaultMatrixRow] = []
    for index, plan in enumerate(plans):
        plan_queue_dir = None
        if queue_dir is not None:
            import os

            plan_queue_dir = os.path.join(queue_dir, f"plan-{index}")
        result = run_campaign_parallel(
            scenario, runs=runs, base_seed=base_seed, workers=workers,
            cache_dir=cache_dir, fault_plan=plan,
            cache_salt=cache_salt, backend=backend,
            queue_dir=plan_queue_dir)
        verdicts = [evaluate(measurement, envelope)
                    for measurement in result.runs]
        rows.append(FaultMatrixRow(plan=plan, verdicts=verdicts))
        if progress is not None:
            progress(plan.name, index + 1, len(plans))
    return FaultMatrixResult(scenario=scenario, envelope=envelope,
                             base_seed=base_seed, rows=rows)
