"""Render fault-matrix results as a markdown table."""

from __future__ import annotations

from typing import List

from repro.faults.envelope import VERDICTS
from repro.faults.matrix import FaultMatrixResult

#: Verdict -> column heading.
_HEADINGS = {
    "SAFE_STOP": "safe",
    "LATE_STOP": "late",
    "NO_STOP": "no stop",
    "SPURIOUS_STOP": "spurious",
}


def render_matrix(result: FaultMatrixResult) -> str:
    """The aggregated per-fault availability/safety table."""
    header = (["plan", "runs"]
              + [_HEADINGS[verdict] for verdict in VERDICTS]
              + ["availability", "DENM delivery", "mean margin (m)"])
    lines: List[str] = [
        "| " + " | ".join(header) + " |",
        "|" + "|".join("---" for _ in header) + "|",
    ]
    for row in result.rows:
        margin = row.mean_stop_margin
        cells = [row.name, str(row.runs)]
        cells += [str(row.count(verdict)) for verdict in VERDICTS]
        cells += [
            f"{row.availability:.2f}",
            f"{row.denm_delivery_rate:.2f}",
            "-" if margin is None else f"{margin:+.3f}",
        ]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)
