"""Deterministic fault injection and dependability verdicts.

The subsystem has four parts:

* :mod:`repro.faults.plan` -- declarative, serialisable
  :class:`FaultPlan` descriptions (what goes wrong, when);
* :mod:`repro.faults.injector` -- maps a plan onto the seams of a
  live :class:`~repro.core.testbed.ScaleTestbed`;
* :mod:`repro.faults.envelope` -- classifies each run's outcome
  (SAFE_STOP / LATE_STOP / NO_STOP / SPURIOUS_STOP);
* :mod:`repro.faults.matrix` -- crosses plans with seed populations
  through the parallel campaign engine and aggregates the
  availability/safety table (rendered by :mod:`repro.faults.report`).
"""

from repro.faults.envelope import (
    DependabilityVerdict,
    LATE_STOP,
    NO_STOP,
    SAFE_STOP,
    SPURIOUS_STOP,
    SafetyEnvelope,
    VERDICTS,
    evaluate,
)
from repro.faults.injector import (
    ChannelFaultBank,
    FaultInjector,
    install_faults,
)
from repro.faults.matrix import (
    FaultMatrixResult,
    FaultMatrixRow,
    run_fault_matrix,
)
from repro.faults.plan import (
    ActuationFault,
    CameraBlackout,
    CameraFrameDrops,
    ClockFault,
    FAULT_TYPES,
    Fault,
    FaultPlan,
    HttpDegradation,
    Jamming,
    NodeOutage,
    PacketLossBurst,
    SpuriousDenm,
    fault_from_dict,
)

__all__ = [
    "ActuationFault",
    "CameraBlackout",
    "CameraFrameDrops",
    "ChannelFaultBank",
    "ClockFault",
    "DependabilityVerdict",
    "FAULT_TYPES",
    "Fault",
    "FaultInjector",
    "FaultMatrixResult",
    "FaultMatrixRow",
    "FaultPlan",
    "HttpDegradation",
    "Jamming",
    "LATE_STOP",
    "NO_STOP",
    "NodeOutage",
    "PacketLossBurst",
    "SAFE_STOP",
    "SPURIOUS_STOP",
    "SafetyEnvelope",
    "SpuriousDenm",
    "VERDICTS",
    "evaluate",
    "fault_from_dict",
    "install_faults",
    "run_fault_matrix",
]
