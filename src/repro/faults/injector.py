"""Maps a :class:`~repro.faults.plan.FaultPlan` onto a live testbed.

Each fault kind attaches to a purpose-built seam of the assembled
:class:`~repro.core.testbed.ScaleTestbed`:

======================  ==============================================
fault kind              seam
======================  ==============================================
``node_outage``         ``rsu.http.online`` + channel blackout of the
                        RSU NIC; ``edge`` outages disable the camera
``camera_blackout``     ``edge.camera.enabled``
``camera_frame_drops``  ``edge.camera.drop_filter``
``packet_loss``         ``medium.impairment`` (drop receptions)
``jamming``             ``medium.impairment`` (raise the noise floor)
``http_degradation``    swap the server's frozen ``HttpConfig``
``clock_fault``         ``DeviceClock.apply_step`` / ``apply_drift``
``actuation``           ``vehicle.actuation.blocked`` or reduced
                        ``brake_deceleration``
``spurious_denm``       ``obu.inject_denm``
======================  ==============================================

Every transition is scheduled on the simulation kernel at install
time, in plan order, so two runs of the same (scenario, plan, seed)
triple interleave identically.  All fault randomness comes from
dedicated ``faults.*`` :class:`~repro.sim.randomness.RandomStreams`
substreams; installing an *empty* plan touches nothing, keeping the
baseline bit-identical to a run with no injector at all.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Dict, List, Optional

import numpy as np

from repro.faults.plan import (
    ActuationFault,
    CameraBlackout,
    CameraFrameDrops,
    ClockFault,
    Fault,
    FaultPlan,
    HttpDegradation,
    Jamming,
    NodeOutage,
    PacketLossBurst,
    SpuriousDenm,
)
from repro.net.medium import ChannelImpairment
from repro.net.propagation import dbm_to_mw

#: Originating station ID stamped on ghost DENMs, far outside the
#: testbed's real station IDs (OBU 101, RSU 900).
GHOST_STATION_ID = 0xDEAD


class ChannelFaultBank(ChannelImpairment):
    """All RF faults of one plan, evaluated against ``sim.now``.

    Window checks are stateless (pure functions of the current time),
    so the bank needs no per-window scheduling; probabilistic drops
    draw from the dedicated ``faults.channel`` substream only while a
    loss window is active.
    """

    def __init__(self, rng: np.random.Generator):
        self._rng = rng
        #: (station name, start, end): the NIC neither sends nor hears.
        self.blackouts: List[tuple] = []
        self.losses: List[PacketLossBurst] = []
        self.jammers: List[Jamming] = []

    @property
    def is_empty(self) -> bool:
        return not (self.blackouts or self.losses or self.jammers)

    def add_blackout(self, station: str, start: float, end: float) -> None:
        self.blackouts.append((station, start, end))

    def tx_blocked(self, sender_name: str, now: float) -> bool:
        return any(station == sender_name and start <= now < end
                   for station, start, end in self.blackouts)

    def drop_rx(self, receiver_name: str, now: float) -> bool:
        if self.tx_blocked(receiver_name, now):
            return True
        for fault in self.losses:
            if not fault.active(now):
                continue
            if fault.station is not None and fault.station != receiver_name:
                continue
            if self._rng.random() < fault.loss_probability:
                return True
        return False

    def extra_interference_mw(self, receiver_name: str, now: float) -> float:
        return sum(dbm_to_mw(fault.interference_dbm)
                   for fault in self.jammers if fault.active(now))


class FaultInjector:
    """Installs one plan's faults onto one testbed (see module doc)."""

    def __init__(self, testbed, plan: FaultPlan):
        self.testbed = testbed
        self.plan = plan
        self.sim = testbed.sim
        #: (sim_time, fault kind, transition) log, for diagnostics.
        self.transitions: List[tuple] = []
        self._bank: Optional[ChannelFaultBank] = None

    # ------------------------------------------------------------------
    # Install
    # ------------------------------------------------------------------

    def install(self) -> None:
        """Attach every fault of the plan (no-op for an empty plan)."""
        for fault in self.plan.faults:
            handler = self._DISPATCH[type(fault)]
            handler(self, fault)
        if self._bank is not None and not self._bank.is_empty:
            self.testbed.medium.impairment = self._bank

    def _log(self, fault: Fault, transition: str) -> None:
        self.transitions.append((self.sim.now, fault.KIND, transition))

    def _at(self, when: float, action) -> None:
        """Schedule *action* at absolute sim time *when* (if finite)."""
        if not math.isfinite(when):
            return
        self.sim.schedule(max(0.0, when - self.sim.now), action)

    def _bank_for_plan(self) -> ChannelFaultBank:
        if self._bank is None:
            self._bank = ChannelFaultBank(
                self.testbed.streams.get("faults.channel"))
        return self._bank

    # ------------------------------------------------------------------
    # Per-kind handlers
    # ------------------------------------------------------------------

    def _install_node_outage(self, fault: NodeOutage) -> None:
        if fault.target in ("rsu", "rsu_radio"):
            # The radio is down for the window either way.
            self._bank_for_plan().add_blackout("rsu", fault.start, fault.end)
        if fault.target == "rsu":
            server = self.testbed.rsu.http

            def crash() -> None:
                server.online = False
                self._log(fault, "activate")

            def restart() -> None:
                server.online = True
                self._log(fault, "deactivate")

            self._at(fault.start, crash)
            self._at(fault.end, restart)
        elif fault.target == "edge":
            camera = self.testbed.edge.camera

            def crash() -> None:
                camera.enabled = False
                self._log(fault, "activate")

            def restart() -> None:
                camera.enabled = True
                self._log(fault, "deactivate")

            self._at(fault.start, crash)
            self._at(fault.end, restart)
        else:
            self._at(fault.start, lambda: self._log(fault, "activate"))
            self._at(fault.end, lambda: self._log(fault, "deactivate"))

    def _install_camera_blackout(self, fault: CameraBlackout) -> None:
        camera = self.testbed.edge.camera

        def activate() -> None:
            camera.enabled = False
            self._log(fault, "activate")

        def deactivate() -> None:
            camera.enabled = True
            self._log(fault, "deactivate")

        self._at(fault.start, activate)
        self._at(fault.end, deactivate)

    def _install_camera_frame_drops(self, fault: CameraFrameDrops) -> None:
        camera = self.testbed.edge.camera
        rng = self.testbed.streams.get("faults.camera")
        previous = camera.drop_filter

        def drop(frame) -> bool:
            if previous is not None and previous(frame):
                return True
            return (fault.active(self.sim.now)
                    and rng.random() < fault.drop_probability)

        camera.drop_filter = drop
        self._at(fault.start, lambda: self._log(fault, "activate"))
        self._at(fault.end, lambda: self._log(fault, "deactivate"))

    def _install_packet_loss(self, fault: PacketLossBurst) -> None:
        self._bank_for_plan().losses.append(fault)
        self._at(fault.start, lambda: self._log(fault, "activate"))
        self._at(fault.end, lambda: self._log(fault, "deactivate"))

    def _install_jamming(self, fault: Jamming) -> None:
        self._bank_for_plan().jammers.append(fault)
        self._at(fault.start, lambda: self._log(fault, "activate"))
        self._at(fault.end, lambda: self._log(fault, "deactivate"))

    def _install_http_degradation(self, fault: HttpDegradation) -> None:
        server = (self.testbed.rsu.http if fault.target == "rsu"
                  else self.testbed.obu.http)
        healthy = server.config

        def degrade() -> None:
            server.config = dataclasses.replace(
                healthy,
                service_mean=(healthy.service_mean
                              + fault.extra_service_delay),
                drop_probability=min(1.0, healthy.drop_probability
                                     + fault.drop_probability),
            )
            self._log(fault, "activate")

        def recover() -> None:
            server.config = healthy
            self._log(fault, "deactivate")

        self._at(fault.start, degrade)
        self._at(fault.end, recover)

    #: clock-fault target -> DeviceClock path on the testbed.
    _CLOCKS = {
        "edge": lambda tb: tb.edge.clock,
        "rsu": lambda tb: tb.rsu.station.clock,
        "obu": lambda tb: tb.obu.station.clock,
        "vehicle": lambda tb: tb.vehicle.clock,
    }

    def _install_clock_fault(self, fault: ClockFault) -> None:
        clock = self._CLOCKS[fault.target](self.testbed)

        def upset() -> None:
            if fault.step_seconds:
                clock.apply_step(fault.step_seconds)
            if fault.drift_ppm:
                clock.apply_drift(fault.drift_ppm)
            self._log(fault, "activate")

        def settle() -> None:
            # The extra drift ends with the window; the step persists
            # until the next NTP correction, like a real excursion.
            if fault.drift_ppm:
                clock.apply_drift(-fault.drift_ppm)
            self._log(fault, "deactivate")

        self._at(fault.start, upset)
        self._at(fault.end, settle)

    def _install_actuation(self, fault: ActuationFault) -> None:
        if fault.mode == "stuck":
            actuation = self.testbed.vehicle.actuation

            def wedge() -> None:
                actuation.blocked = True
                self._log(fault, "activate")

            def unwedge() -> None:
                actuation.blocked = False
                self._log(fault, "deactivate")

            self._at(fault.start, wedge)
            self._at(fault.end, unwedge)
        else:  # "limited"
            dynamics = self.testbed.vehicle.dynamics
            healthy = dynamics.params

            def weaken() -> None:
                dynamics.params = dataclasses.replace(
                    healthy,
                    brake_deceleration=(healthy.brake_deceleration
                                        * fault.brake_factor))
                self._log(fault, "activate")

            def restore() -> None:
                dynamics.params = healthy
                self._log(fault, "deactivate")

            self._at(fault.start, weaken)
            self._at(fault.end, restore)

    def _install_spurious_denm(self, fault: SpuriousDenm) -> None:
        obu = self.testbed.obu

        def inject() -> None:
            self._log(fault, "activate")
            obu.inject_denm({
                "actionId": {"originatingStationID": GHOST_STATION_ID,
                             "sequenceNumber": 0},
                "situation": {"causeCode": fault.cause_code,
                              "subCauseCode": 0},
                "termination": None,
            })

        self._at(fault.start, inject)

    _DISPATCH: Dict[type, Any] = {
        NodeOutage: _install_node_outage,
        CameraBlackout: _install_camera_blackout,
        CameraFrameDrops: _install_camera_frame_drops,
        PacketLossBurst: _install_packet_loss,
        Jamming: _install_jamming,
        HttpDegradation: _install_http_degradation,
        ClockFault: _install_clock_fault,
        ActuationFault: _install_actuation,
        SpuriousDenm: _install_spurious_denm,
    }


def install_faults(testbed, plan: Optional[FaultPlan]) -> Optional[
        FaultInjector]:
    """Install *plan* on *testbed*; returns the injector, or ``None``
    for a missing/empty plan (nothing is touched in that case, so the
    run stays bit-identical to one without any fault machinery)."""
    if plan is None or plan.is_empty:
        return None
    injector = FaultInjector(testbed, plan)
    injector.install()
    return injector
