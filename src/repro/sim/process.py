"""Generator-based simulated processes.

A process is a Python generator that yields *waitables*:

* ``Timeout(dt)`` or any :class:`~repro.sim.kernel.Event` -- resume when
  it fires, receiving its value;
* another :class:`Process` -- resume when that process returns;
* ``AllOf([...])`` / ``AnyOf([...])`` -- barrier / first-of combinators.

Example::

    def courier(sim, mailbox):
        yield Timeout(0.5)
        mailbox.append(sim.now)

    sim = Simulator()
    Process(sim, courier(sim, box))
    sim.run()

This mirrors how the original testbed's components are naturally
expressed (pollers, periodic beacons, state machines with delays).
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, List, Optional

from repro.sim.kernel import Event, SimulationError, Simulator


class Timeout:
    """Sugar for "sleep *delay* simulated seconds" inside a process."""

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout {delay!r}")
        self.delay = delay
        self.value = value


class Waiter(Event):
    """An externally-triggered event with convenience trigger methods.

    A ``Waiter`` is just an :class:`Event` that application code keeps a
    reference to, e.g. a "message arrived" notification slot.
    """


class AllOf:
    """Yieldable barrier: resumes when every child event has fired."""

    __slots__ = ("events",)

    def __init__(self, events: Iterable[Event]):
        self.events = list(events)


class AnyOf:
    """Yieldable race: resumes when the first child event fires."""

    __slots__ = ("events",)

    def __init__(self, events: Iterable[Event]):
        self.events = list(events)


class Interrupt(Exception):
    """Raised inside a process that another process interrupted."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """Drives a generator as a simulated process.

    The process object itself is an :class:`Event` that succeeds with the
    generator's return value, so processes can wait on each other.
    """

    def __init__(self, sim: Simulator, generator: Generator, name: str = ""):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise TypeError("Process requires a generator")
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self._alive = True
        sim.schedule(0.0, lambda: self._resume(None, None))

    @property
    def is_alive(self) -> bool:
        """Whether the underlying generator has not yet finished."""
        return self._alive

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its wait point."""
        if not self._alive:
            return
        waiting, self._waiting_on = self._waiting_on, None
        self.sim.schedule(0.0, lambda: self._resume(None, Interrupt(cause)))
        # The event we were waiting on may still fire later; _resume
        # ignores stale wakeups via the _waiting_on handshake.
        if waiting is not None:
            self._detach_token = waiting  # kept for introspection only

    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        if not self._alive:
            return
        try:
            if exc is not None:
                target = self._generator.throw(exc)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self._alive = False
            self.succeed(getattr(stop, "value", None))
            return
        except BaseException as failure:  # noqa: BLE001 - process crashed
            self._alive = False
            self.fail(failure)
            return
        try:
            self._wait_on(target)
        except SimulationError as failure:
            self._generator.close()
            self._alive = False
            self.fail(failure)

    def _wait_on(self, target: Any) -> None:
        event = self._as_event(target)
        self._waiting_on = event

        def wake(ev: Event, expected: Event = event) -> None:
            if self._waiting_on is not expected:
                return  # stale wakeup after an interrupt
            self._waiting_on = None
            if ev.ok:
                self._resume(ev.value, None)
            else:
                ev.defuse()
                self._resume(None, ev.value)

        event.add_callback(wake)

    def _as_event(self, target: Any) -> Event:
        if isinstance(target, Event):
            return target
        if isinstance(target, Timeout):
            return self.sim.timeout(target.delay, target.value)
        if isinstance(target, AllOf):
            return _all_of(self.sim, target.events)
        if isinstance(target, AnyOf):
            return _any_of(self.sim, target.events)
        raise SimulationError(
            f"process {self.name!r} yielded non-waitable {target!r}"
        )


def _all_of(sim: Simulator, events: List[Event]) -> Event:
    gate = sim.event()
    remaining = [len(events)]
    values: List[Any] = [None] * len(events)
    if not events:
        sim.schedule(0.0, lambda: gate.succeed([]))
        return gate

    def arm(index: int, event: Event) -> None:
        def on_fire(ev: Event) -> None:
            if gate.triggered:
                return
            if not ev.ok:
                ev.defuse()
                gate.fail(ev.value)
                return
            values[index] = ev.value
            remaining[0] -= 1
            if remaining[0] == 0:
                gate.succeed(list(values))

        event.add_callback(on_fire)

    for i, ev in enumerate(events):
        arm(i, ev)
    return gate


def _any_of(sim: Simulator, events: List[Event]) -> Event:
    gate = sim.event()
    if not events:
        sim.schedule(0.0, lambda: gate.succeed(None))
        return gate

    def on_fire(ev: Event) -> None:
        if gate.triggered:
            if not ev.ok:
                ev.defuse()
            return
        if ev.ok:
            gate.succeed(ev.value)
        else:
            ev.defuse()
            gate.fail(ev.value)

    for ev in events:
        ev.add_callback(on_fire)
    return gate
