"""Structured event tracing.

A :class:`Tracer` collects timestamped records from any subsystem
(``tracer.log("mac", "tx_start", frame=7)``), keeps them in a bounded
ring buffer, and exports CSV/JSONL for offline analysis -- the
simulation counterpart of the log files the paper's devices produced.

Categories can be filtered at runtime so a hot path (e.g. per-frame
MAC events) only pays the cost when someone asked for it.
"""

from __future__ import annotations

import csv
import dataclasses
import json
from collections import deque
from typing import Any, Deque, Dict, Iterable, List, Optional, Set

from repro.sim.kernel import Simulator


@dataclasses.dataclass(frozen=True)
class TraceRecord:
    """One traced event."""

    time: float
    category: str
    event: str
    fields: Dict[str, Any]

    def as_flat_dict(self) -> Dict[str, Any]:
        """Record flattened for CSV export."""
        out: Dict[str, Any] = {
            "time": self.time,
            "category": self.category,
            "event": self.event,
        }
        out.update(self.fields)
        return out


class Tracer:
    """A bounded, filterable event log on the simulation clock."""

    def __init__(self, sim: Simulator, capacity: int = 100_000,
                 categories: Optional[Iterable[str]] = None):
        self.sim = sim
        self._records: Deque[TraceRecord] = deque(maxlen=capacity)
        self._categories: Optional[Set[str]] = (
            set(categories) if categories is not None else None)
        self.dropped = 0
        self.logged = 0

    def wants(self, category: str) -> bool:
        """Whether *category* is currently recorded."""
        return self._categories is None or category in self._categories

    def enable(self, category: str) -> None:
        """Start recording *category* (switches to explicit filtering)."""
        if self._categories is None:
            self._categories = set()
        self._categories.add(category)

    def disable(self, category: str) -> None:
        """Stop recording *category*."""
        if self._categories is None:
            # Everything was enabled: keep everything except this one
            # by materialising the current categories seen so far.
            self._categories = {r.category for r in self._records}
        self._categories.discard(category)

    def log(self, category: str, event: str, **fields: Any) -> None:
        """Record one event at the current simulated time."""
        if not self.wants(category):
            self.dropped += 1
            return
        self.logged += 1
        self._records.append(TraceRecord(
            time=self.sim.now, category=category, event=event,
            fields=fields))

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def records(self, category: Optional[str] = None,
                event: Optional[str] = None,
                since: float = 0.0) -> List[TraceRecord]:
        """Records matching the filters, in time order."""
        out = []
        for record in self._records:
            if record.time < since:
                continue
            if category is not None and record.category != category:
                continue
            if event is not None and record.event != event:
                continue
            out.append(record)
        return out

    def __len__(self) -> int:
        return len(self._records)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_csv(self, path: str) -> int:
        """Write all records as CSV; returns the row count."""
        rows = [record.as_flat_dict() for record in self._records]
        field_names: List[str] = ["time", "category", "event"]
        for row in rows:
            for key in row:
                if key not in field_names:
                    field_names.append(key)
        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.DictWriter(handle, fieldnames=field_names)
            writer.writeheader()
            writer.writerows(rows)
        return len(rows)

    def to_jsonl(self, path: str) -> int:
        """Write all records as JSON lines; returns the row count."""
        count = 0
        with open(path, "w", encoding="utf-8") as handle:
            for record in self._records:
                handle.write(json.dumps(record.as_flat_dict(),
                                        default=str) + "\n")
                count += 1
        return count

    def to_canonical_jsonl_text(self) -> str:
        """All records as canonical JSON lines.

        Sorted keys, compact separators and Python's exact float
        reprs, so the same deterministic run always yields the same
        bytes -- the format of the golden-trace fixtures under
        ``tests/golden/``.
        """
        lines = [
            json.dumps(record.as_flat_dict(), sort_keys=True,
                       separators=(",", ":"), default=str)
            for record in self._records
        ]
        return "\n".join(lines) + ("\n" if lines else "")
