"""Per-device clocks with NTP discipline.

The paper's end-to-end latency measurement (Table II) relies on
timestamps collected on four different devices (edge node, RSU, OBU,
vehicle ECU), "connected to a Network Time Protocol server to reliably
collect timestamps".  NTP over a LAN typically disciplines clocks to
within a fraction of a millisecond but leaves a small residual offset
and jitter; intervals computed across two devices inherit that error.

:class:`DeviceClock` models exactly this: each device has

* a residual *offset* from true (simulated) time, drawn once per device
  from a zero-mean normal distribution;
* a frequency *drift* (ppm) that slowly moves the offset between NTP
  corrections;
* periodic NTP *correction* events that re-pull the offset towards zero
  with some remaining error;
* optional per-read *jitter* modelling timestamping granularity.

A perfectly synchronised clock is obtained with ``NtpModel.ideal()``.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.sim.kernel import Simulator


@dataclasses.dataclass(frozen=True)
class NtpModel:
    """Parameters of the clock-synchronisation model.

    Attributes:
        initial_offset_std: std-dev (s) of the residual offset right
            after an NTP correction.  LAN NTP: ~0.2 ms.
        drift_ppm_std: std-dev of the per-device frequency error, in
            parts-per-million.
        poll_interval: seconds between NTP corrections.
        read_jitter_std: std-dev (s) of per-read timestamp noise
            (scheduler/timestamping granularity).
    """

    initial_offset_std: float = 0.2e-3
    drift_ppm_std: float = 5.0
    poll_interval: float = 64.0
    read_jitter_std: float = 0.05e-3

    @staticmethod
    def ideal() -> "NtpModel":
        """A model with zero offset, drift and jitter (true-time clock)."""
        return NtpModel(0.0, 0.0, 64.0, 0.0)

    @staticmethod
    def lan_default() -> "NtpModel":
        """Typical LAN NTP residuals, matching the paper's setup."""
        return NtpModel()


class DeviceClock:
    """A device's view of wall time, as disciplined by NTP.

    Call :meth:`now` to obtain the device-local timestamp for the
    current simulated instant.  True simulated time is always available
    as ``sim.now``; the difference is the measurement error the paper's
    methodology inherits.
    """

    def __init__(
        self,
        sim: Simulator,
        rng: np.random.Generator,
        model: Optional[NtpModel] = None,
        name: str = "clock",
    ):
        self.sim = sim
        self.name = name
        self.model = model or NtpModel.ideal()
        self._rng = rng
        self._offset = float(rng.normal(0.0, self.model.initial_offset_std)) \
            if self.model.initial_offset_std > 0 else 0.0
        self._drift = float(rng.normal(0.0, self.model.drift_ppm_std)) * 1e-6 \
            if self.model.drift_ppm_std > 0 else 0.0
        self._last_correction = sim.now
        if self.model.poll_interval > 0 and (
            self.model.initial_offset_std > 0 or self.model.drift_ppm_std > 0
        ):
            self._schedule_correction()

    @property
    def offset(self) -> float:
        """Current total offset (s) of this clock from true time."""
        elapsed = self.sim.now - self._last_correction
        return self._offset + self._drift * elapsed

    def now(self) -> float:
        """Device-local timestamp for the current simulated instant."""
        reading = self.sim.now + self.offset
        if self.model.read_jitter_std > 0:
            reading += float(self._rng.normal(0.0, self.model.read_jitter_std))
        return reading

    # ------------------------------------------------------------------
    # Fault-injection seams (see repro.faults)
    # ------------------------------------------------------------------

    def apply_step(self, seconds: float) -> None:
        """Jump the clock by *seconds* (an NTP step / upset).

        The step persists until the next NTP correction re-pulls the
        offset towards zero, exactly like a real clock excursion.
        """
        self._offset += seconds

    def apply_drift(self, ppm: float) -> None:
        """Add *ppm* of frequency error from now on.

        The accumulated offset so far is rebased first, so changing
        the drift never rewrites history; pass a negative value to
        remove a previously injected drift.
        """
        elapsed = self.sim.now - self._last_correction
        self._offset += self._drift * elapsed
        self._last_correction = self.sim.now
        self._drift += ppm * 1e-6

    def _schedule_correction(self) -> None:
        self.sim.schedule(self.model.poll_interval, self._correct)

    def _correct(self) -> None:
        # NTP steers the clock back towards true time, leaving a fresh
        # residual error.
        self._offset = float(
            self._rng.normal(0.0, self.model.initial_offset_std)
        )
        self._last_correction = self.sim.now
        self._schedule_correction()
