"""Named, reproducible random substreams.

Every stochastic element of the testbed (radio fading, detector
inference time, clock offsets, HTTP service time, ...) draws from its
own named substream so that

* a whole experiment is reproducible from a single integer seed, and
* adding randomness to one subsystem does not perturb another
  (the streams are independent by construction).
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


class RandomStreams:
    """A factory of independent :class:`numpy.random.Generator` streams.

    Streams are keyed by name; asking twice for the same name returns
    the *same* generator object, so state advances consistently.

    Example::

        streams = RandomStreams(seed=42)
        fading = streams.get("net.fading")
        yolo = streams.get("roadside.yolo")
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for *name*, creating it on first use."""
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self.seed}:{name}".encode("utf-8")
            ).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            self._streams[name] = np.random.default_rng(child_seed)
        return self._streams[name]

    def spawn(self, prefix: str) -> "ScopedStreams":
        """A view that prefixes every requested name with *prefix*."""
        return ScopedStreams(self, prefix)


class ScopedStreams:
    """A :class:`RandomStreams` view with a fixed name prefix."""

    def __init__(self, parent: RandomStreams, prefix: str):
        self._parent = parent
        self._prefix = prefix

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``<prefix>.<name>``."""
        return self._parent.get(f"{self._prefix}.{name}")

    def spawn(self, prefix: str) -> "ScopedStreams":
        """Nest another prefix level."""
        return ScopedStreams(self._parent, f"{self._prefix}.{prefix}")
