"""Discrete-event simulation kernel.

The kernel is a classic calendar-queue event loop: callbacks are
scheduled at absolute simulated times and executed in (time, tie-break)
order.  All simulated subsystems -- radios, HTTP servers, vehicle
dynamics integrators, camera frame clocks -- hang off a single
:class:`Simulator` instance, which guarantees a total order of events
and therefore full determinism for a given seed.

Two events scheduled for the *same* simulated time are ordered by the
:class:`EventQueue`'s **tie-break policy**:

* ``"fifo"`` (the default) -- insertion order, the behaviour every
  build of this kernel has always had;
* ``"lifo"`` -- reverse insertion order among tied events;
* ``"seeded"`` -- a random permutation drawn from a dedicated
  ``tie_break.*`` substream, deterministic per seed.

A run whose results are a pure function of the scenario and seed must
be *bit-identical under all three policies*: any divergence means an
ordering assumption between same-time events has leaked into results.
The ``tie-audit`` workflow (``repro.core.tieaudit``, rule family
SCH001..SCH003 in ``repro.analysis``) permutes the policy and pins
divergences to the scheduling sites involved; the
:class:`~repro.sim.tie_audit.TieAudit` seam on :class:`Simulator`
records every runtime tie with the static site ids of both events.
"""

from __future__ import annotations

import heapq
import math
import sys
from time import perf_counter
from typing import Any, Callable, List, Optional, Tuple

from repro.sim.tie_audit import UNKNOWN_SITE, TieAudit

#: The recognised tie-break policies, in canonical order.
TIE_BREAK_POLICIES = ("fifo", "lifo", "seeded")


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, etc.)."""


#: Path fragments that anchor a site id: everything before the anchor
#: is machine-specific and stripped, so the same source line yields
#: the same site id on every host and from every working directory.
_SITE_ANCHORS = ("/src/", "/tests/", "/benchmarks/", "/examples/")

_KERNEL_FILE = __file__


def _normalise_site_path(path: str) -> str:
    """Repo-anchored, forward-slash form of a code object's filename."""
    path = path.replace("\\", "/")
    for anchor in _SITE_ANCHORS:
        index = path.rfind(anchor)
        if index >= 0:
            return path[index + 1:]
    return path


def _caller_site() -> str:
    """``path:line`` of the nearest non-kernel frame on the stack.

    This is the *static site id* of a scheduling call -- the same
    identifier the interprocedural analysis assigns to the call site
    -- captured only while a :class:`TieAudit` is installed (site
    capture costs a frame walk per ``schedule``).
    """
    try:
        frame = sys._getframe(2)
    except ValueError:  # pragma: no cover - impossibly shallow stack
        return UNKNOWN_SITE
    while frame is not None and frame.f_code.co_filename == _KERNEL_FILE:
        frame = frame.f_back
    if frame is None:
        return UNKNOWN_SITE
    return (f"{_normalise_site_path(frame.f_code.co_filename)}"
            f":{frame.f_lineno}")


class EventQueue:
    """The kernel's pending-event heap with a pluggable tie-break.

    Entries are ordered by ``(time, key, seq)`` where *seq* is the
    insertion counter and *key* depends on the policy: under ``fifo``
    the key is the counter itself (insertion order, the historical
    behaviour, bit for bit), under ``lifo`` it is the negated counter
    (reverse insertion order among ties), and under ``seeded`` it is a
    uniform draw from the supplied RNG (a deterministic shuffle of
    every tie).  Distinct timestamps are *never* reordered by any
    policy -- time always dominates the key.
    """

    __slots__ = ("tie_break", "_rng", "_heap", "_count")

    def __init__(self, tie_break: str = "fifo",
                 rng: Optional[Any] = None):
        if tie_break not in TIE_BREAK_POLICIES:
            raise SimulationError(
                f"unknown tie_break policy {tie_break!r}; expected "
                f"one of {', '.join(TIE_BREAK_POLICIES)}")
        if tie_break == "seeded" and rng is None:
            raise SimulationError(
                "tie_break='seeded' needs an rng (draw it from a "
                "'tie_break.*' substream so the shuffle is "
                "reproducible per seed)")
        self.tie_break = tie_break
        self._rng = rng
        self._heap: List[Tuple[float, float, int,
                               Callable[[], None],
                               Optional[str]]] = []
        self._count = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, when: float, callback: Callable[[], None],
             site: Optional[str] = None) -> None:
        """Enqueue *callback* at absolute time *when*."""
        seq = self._count
        self._count = seq + 1
        if self.tie_break == "fifo":
            key = float(seq)
        elif self.tie_break == "lifo":
            key = float(-seq)
        else:
            key = float(self._rng.random())
        heapq.heappush(self._heap, (when, key, seq, callback, site))

    def pop(self) -> Tuple[float, Callable[[], None], Optional[str]]:
        """Dequeue the next event as ``(when, callback, site)``."""
        when, _key, _seq, callback, site = heapq.heappop(self._heap)
        return when, callback, site

    def peek_time(self) -> float:
        """Time of the next event, or +inf when empty."""
        return self._heap[0][0] if self._heap else math.inf

    def peek_site(self) -> str:
        """Site id of the next event (:data:`UNKNOWN_SITE` fallback)."""
        if not self._heap:
            return UNKNOWN_SITE
        site = self._heap[0][4]
        return site if site is not None else UNKNOWN_SITE


def build_simulator(tie_break: str = "fifo",
                    streams: Optional[Any] = None) -> "Simulator":
    """A :class:`Simulator` with *tie_break*, seeded from *streams*.

    The ``"seeded"`` policy draws its shuffle keys from the
    ``tie_break.shuffle`` substream of *streams* (a
    :class:`~repro.sim.randomness.RandomStreams`), so the permutation
    is a pure function of the scenario seed and perturbs no other
    subsystem's draws.  ``fifo``/``lifo`` need no RNG.
    """
    rng = None
    if tie_break == "seeded":
        if streams is None:
            raise SimulationError(
                "tie_break='seeded' needs a RandomStreams to draw "
                "the tie_break.shuffle substream from")
        rng = streams.get("tie_break.shuffle")
    return Simulator(tie_break=tie_break, tie_rng=rng)


class Event:
    """A one-shot occurrence that callbacks and processes can wait on.

    An :class:`Event` starts *pending*; it is either *succeeded* (with an
    optional value) or *failed* (with an exception).  Callbacks attached
    via :meth:`add_callback` run when the event fires.  Events are the
    synchronisation primitive used by :mod:`repro.sim.process`.
    """

    __slots__ = ("sim", "_callbacks", "_ok", "_value", "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._ok: Optional[bool] = None
        self._value: Any = None
        self._defused = False

    @property
    def triggered(self) -> bool:
        """Whether the event has fired (successfully or not)."""
        return self._ok is not None

    @property
    def ok(self) -> bool:
        """Whether the event fired successfully.  False while pending."""
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The event's value (or exception, if it failed)."""
        return self._value

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Attach *callback*; runs immediately if the event already fired."""
        if self._callbacks is None:
            # Already dispatched: run on next kernel step to preserve
            # event ordering guarantees.
            self.sim.schedule(0.0, lambda: callback(self))
        else:
            self._callbacks.append(callback)

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event successfully, delivering *value* to waiters."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self._dispatch()
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Fire the event with *exception*; waiters will see it raised."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._dispatch()
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel will not re-raise."""
        self._defused = True

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, None
        assert callbacks is not None
        for callback in callbacks:
            self.sim.schedule(0.0, lambda cb=callback: cb(self))
        if self._ok is False and not callbacks and not self._defused:
            # Nobody is listening for the failure: surface it.
            self.sim._pending_failures.append(self._value)


class Simulator:
    """The discrete-event loop.

    Typical use::

        sim = Simulator()
        sim.schedule(1.5, lambda: print("fires at t=1.5"))
        sim.run_until(10.0)

    Time is a float in **seconds**.  Events scheduled at the same time
    run in *tie-break* order: insertion order under the default
    ``"fifo"`` policy; see :class:`EventQueue` for ``"lifo"`` and
    ``"seeded"``.  A result that depends on the policy depends on
    schedule order -- the ``tie-audit`` workflow exists to catch that.
    """

    def __init__(self, tie_break: str = "fifo",
                 tie_rng: Optional[Any] = None) -> None:
        self._now = 0.0
        self._queue = EventQueue(tie_break, tie_rng)
        self._running = False
        self._pending_failures: List[BaseException] = []
        self._stopped = False
        #: Observability seam (:class:`repro.obs.ObsContext`).  None by
        #: default; every instrumented subsystem checks this before
        #: recording, so an unobserved run pays one attribute read per
        #: site and stays bit-identical to pre-observability builds.
        self.obs: Optional[Any] = None
        #: Tie-audit seam (:class:`repro.sim.tie_audit.TieAudit`).
        #: None by default -- same no-op-when-unset contract as
        #: ``obs``: an unaudited run captures no sites and pays one
        #: attribute read per schedule/step.
        self.tie_audit: Optional[TieAudit] = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def tie_break(self) -> str:
        """The active tie-break policy (``fifo``/``lifo``/``seeded``)."""
        return self._queue.tie_break

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run *callback* after *delay* seconds of simulated time."""
        if delay < 0 or math.isnan(delay):
            raise SimulationError(f"cannot schedule with delay {delay!r}")
        self.schedule_at(self._now + delay, callback)

    def schedule_at(self, when: float, callback: Callable[[], None]) -> None:
        """Run *callback* at absolute simulated time *when*."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at t={when} (now is t={self._now})"
            )
        site = None
        audit = self.tie_audit
        if audit is not None:
            site = _caller_site()
        self._queue.push(when, callback, site)

    def event(self) -> Event:
        """Create a fresh pending :class:`Event` bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that succeeds after *delay* seconds."""
        ev = Event(self)
        self.schedule(delay, lambda: ev.succeed(value))
        return ev

    def stop(self) -> None:
        """Stop the run loop after the current event finishes."""
        self._stopped = True

    def step(self) -> bool:
        """Execute the next scheduled event.  Returns False if none left."""
        if not self._queue:
            return False
        when, callback, site = self._queue.pop()
        audit = self.tie_audit
        if audit is not None and self._queue.peek_time() == when:
            audit.record(when,
                         site if site is not None else UNKNOWN_SITE,
                         self._queue.peek_site())
        self._now = when
        obs = self.obs
        if obs is None:
            callback()
        else:
            begin = perf_counter()
            callback()
            obs.kernel_step(perf_counter() - begin)
        if self._pending_failures:
            failure = self._pending_failures.pop(0)
            self._pending_failures.clear()
            raise failure
        return True

    def run(self, max_events: int = 10_000_000) -> None:
        """Run until the event queue drains (or *max_events* executed)."""
        self._stopped = False
        executed = 0
        while not self._stopped and self.step():
            executed += 1
            if executed >= max_events:
                raise SimulationError(
                    f"run() exceeded {max_events} events; likely a livelock"
                )

    def run_until(self, until: float, max_events: int = 10_000_000) -> None:
        """Run events with time <= *until*, then set time to *until*."""
        if until < self._now:
            raise SimulationError(
                f"run_until({until}) but now is t={self._now}"
            )
        self._stopped = False
        executed = 0
        while not self._stopped and self._queue and \
                self._queue.peek_time() <= until:
            self.step()
            executed += 1
            if executed >= max_events:
                raise SimulationError(
                    f"run_until() exceeded {max_events} events; likely a livelock"
                )
        if not self._stopped:
            self._now = until

    def peek(self) -> float:
        """Time of the next event, or +inf if the queue is empty."""
        return self._queue.peek_time()
