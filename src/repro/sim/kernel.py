"""Discrete-event simulation kernel.

The kernel is a classic calendar-queue event loop: callbacks are
scheduled at absolute simulated times and executed in (time, insertion
order) order.  All simulated subsystems -- radios, HTTP servers, vehicle
dynamics integrators, camera frame clocks -- hang off a single
:class:`Simulator` instance, which guarantees a total order of events
and therefore full determinism for a given seed.
"""

from __future__ import annotations

import heapq
import itertools
import math
from time import perf_counter
from typing import Any, Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, etc.)."""


class Event:
    """A one-shot occurrence that callbacks and processes can wait on.

    An :class:`Event` starts *pending*; it is either *succeeded* (with an
    optional value) or *failed* (with an exception).  Callbacks attached
    via :meth:`add_callback` run when the event fires.  Events are the
    synchronisation primitive used by :mod:`repro.sim.process`.
    """

    __slots__ = ("sim", "_callbacks", "_ok", "_value", "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._ok: Optional[bool] = None
        self._value: Any = None
        self._defused = False

    @property
    def triggered(self) -> bool:
        """Whether the event has fired (successfully or not)."""
        return self._ok is not None

    @property
    def ok(self) -> bool:
        """Whether the event fired successfully.  False while pending."""
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The event's value (or exception, if it failed)."""
        return self._value

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Attach *callback*; runs immediately if the event already fired."""
        if self._callbacks is None:
            # Already dispatched: run on next kernel step to preserve
            # event ordering guarantees.
            self.sim.schedule(0.0, lambda: callback(self))
        else:
            self._callbacks.append(callback)

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event successfully, delivering *value* to waiters."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self._dispatch()
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Fire the event with *exception*; waiters will see it raised."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._dispatch()
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel will not re-raise."""
        self._defused = True

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, None
        assert callbacks is not None
        for callback in callbacks:
            self.sim.schedule(0.0, lambda cb=callback: cb(self))
        if self._ok is False and not callbacks and not self._defused:
            # Nobody is listening for the failure: surface it.
            self.sim._pending_failures.append(self._value)


class Simulator:
    """The discrete-event loop.

    Typical use::

        sim = Simulator()
        sim.schedule(1.5, lambda: print("fires at t=1.5"))
        sim.run_until(10.0)

    Time is a float in **seconds**.  Events scheduled at the same time
    run in insertion order.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._running = False
        self._pending_failures: List[BaseException] = []
        self._stopped = False
        #: Observability seam (:class:`repro.obs.ObsContext`).  None by
        #: default; every instrumented subsystem checks this before
        #: recording, so an unobserved run pays one attribute read per
        #: site and stays bit-identical to pre-observability builds.
        self.obs: Optional[Any] = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run *callback* after *delay* seconds of simulated time."""
        if delay < 0 or math.isnan(delay):
            raise SimulationError(f"cannot schedule with delay {delay!r}")
        self.schedule_at(self._now + delay, callback)

    def schedule_at(self, when: float, callback: Callable[[], None]) -> None:
        """Run *callback* at absolute simulated time *when*."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at t={when} (now is t={self._now})"
            )
        heapq.heappush(self._queue, (when, next(self._counter), callback))

    def event(self) -> Event:
        """Create a fresh pending :class:`Event` bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that succeeds after *delay* seconds."""
        ev = Event(self)
        self.schedule(delay, lambda: ev.succeed(value))
        return ev

    def stop(self) -> None:
        """Stop the run loop after the current event finishes."""
        self._stopped = True

    def step(self) -> bool:
        """Execute the next scheduled event.  Returns False if none left."""
        if not self._queue:
            return False
        when, _seq, callback = heapq.heappop(self._queue)
        self._now = when
        obs = self.obs
        if obs is None:
            callback()
        else:
            begin = perf_counter()
            callback()
            obs.kernel_step(perf_counter() - begin)
        if self._pending_failures:
            failure = self._pending_failures.pop(0)
            self._pending_failures.clear()
            raise failure
        return True

    def run(self, max_events: int = 10_000_000) -> None:
        """Run until the event queue drains (or *max_events* executed)."""
        self._stopped = False
        executed = 0
        while not self._stopped and self.step():
            executed += 1
            if executed >= max_events:
                raise SimulationError(
                    f"run() exceeded {max_events} events; likely a livelock"
                )

    def run_until(self, until: float, max_events: int = 10_000_000) -> None:
        """Run events with time <= *until*, then set time to *until*."""
        if until < self._now:
            raise SimulationError(
                f"run_until({until}) but now is t={self._now}"
            )
        self._stopped = False
        executed = 0
        while not self._stopped and self._queue and self._queue[0][0] <= until:
            self.step()
            executed += 1
            if executed >= max_events:
                raise SimulationError(
                    f"run_until() exceeded {max_events} events; likely a livelock"
                )
        if not self._stopped:
            self._now = until

    def peek(self) -> float:
        """Time of the next event, or +inf if the queue is empty."""
        return self._queue[0][0] if self._queue else math.inf
