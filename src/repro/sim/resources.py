"""Synchronisation primitives for simulated processes.

Complement to :mod:`repro.sim.process`:

* :class:`Resource` -- a counted capacity (a CPU, a radio front-end, a
  worker pool); processes ``yield resource.acquire()`` and must
  ``release()`` when done;
* :class:`Store` -- an unbounded or bounded FIFO of items; producers
  ``put``, consumers ``yield store.get()``.

Both hand out plain :class:`~repro.sim.kernel.Event` objects, so they
compose with ``AllOf``/``AnyOf`` and timeouts.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional

from repro.sim.kernel import Event, SimulationError, Simulator


class Resource:
    """A counted resource with FIFO acquisition order."""

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(
                f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        self.acquired_total = 0

    @property
    def in_use(self) -> int:
        """Units currently held."""
        return self._in_use

    @property
    def available(self) -> int:
        """Units free right now."""
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        """Processes waiting to acquire."""
        return len(self._waiters)

    def acquire(self) -> Event:
        """An event that fires when a unit is granted to the caller."""
        grant = self.sim.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            self.acquired_total += 1
            self.sim.schedule(0.0, lambda: grant.succeed(self))
        else:
            self._waiters.append(grant)
        return grant

    def release(self) -> None:
        """Return one unit; the longest waiter (if any) gets it."""
        if self._in_use <= 0:
            raise SimulationError("release() without a matching acquire")
        if self._waiters:
            grant = self._waiters.popleft()
            self.acquired_total += 1
            self.sim.schedule(0.0, lambda: grant.succeed(self))
        else:
            self._in_use -= 1


class Store:
    """A FIFO of items with optional capacity.

    ``put`` never blocks on an unbounded store; on a bounded store it
    returns False (and drops the item) when full -- a deliberate
    drop-tail semantic that suits network queues.  ``get`` returns an
    event that fires with the oldest item.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise SimulationError(
                f"capacity must be >= 1 or None, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self.put_total = 0
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> bool:
        """Add *item*; False if a bounded store dropped it."""
        if self._getters:
            getter = self._getters.popleft()
            self.put_total += 1
            self.sim.schedule(0.0, lambda: getter.succeed(item))
            return True
        if self.capacity is not None and len(self._items) >= self.capacity:
            self.dropped += 1
            return False
        self._items.append(item)
        self.put_total += 1
        return True

    def get(self) -> Event:
        """An event that fires with the next item (FIFO)."""
        event = self.sim.event()
        if self._items:
            item = self._items.popleft()
            self.sim.schedule(0.0, lambda: event.succeed(item))
        else:
            self._getters.append(event)
        return event

    def peek_all(self) -> List[Any]:
        """Snapshot of queued items (oldest first), for inspection."""
        return list(self._items)
