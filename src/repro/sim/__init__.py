"""Discrete-event simulation kernel.

This package replaces the physical time base of the original testbed
(four NTP-synchronised devices) with a deterministic discrete-event
simulator.  It provides:

* :class:`~repro.sim.kernel.Simulator` -- the event loop;
* :class:`~repro.sim.process.Process` -- generator-based simulated
  processes (a small simpy-like facility);
* :class:`~repro.sim.clock.DeviceClock` -- per-device clocks with offset,
  drift and NTP discipline, so that cross-device timestamping exhibits
  the same artefacts as the paper's measurement setup;
* :class:`~repro.sim.randomness.RandomStreams` -- named, reproducible
  random substreams.
"""

from repro.sim.kernel import (
    TIE_BREAK_POLICIES,
    Event,
    EventQueue,
    SimulationError,
    Simulator,
)
from repro.sim.process import Process, Timeout, Waiter, AllOf, AnyOf
from repro.sim.clock import DeviceClock, NtpModel
from repro.sim.randomness import RandomStreams
from repro.sim.resources import Resource, Store
from repro.sim.tie_audit import TieAudit

__all__ = [
    "TIE_BREAK_POLICIES",
    "Event",
    "EventQueue",
    "Simulator",
    "SimulationError",
    "TieAudit",
    "Process",
    "Timeout",
    "Waiter",
    "AllOf",
    "AnyOf",
    "DeviceClock",
    "NtpModel",
    "RandomStreams",
    "Resource",
    "Store",
]
