"""Dynamic tie auditing: which scheduling sites collide in sim-time.

Two events scheduled for the *same* simulated timestamp are ordered by
the kernel's tie-break policy (see :class:`repro.sim.kernel.EventQueue`),
which means any behavioural difference between policies is evidence
that schedule order leaks into results.  A :class:`TieAudit` is the
no-op-when-unset seam that records every such tie together with the
*static site ids* (``path:line`` of the ``schedule()`` call) of both
events involved, so a statically flagged pair (rule SCH001) can be
pinned to, or cleared of, an actual runtime collision.

The audit is observational only: installing it never changes event
order, RNG draws or measurements, so an audited run stays
bit-identical to an unaudited one.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

#: Site id used when a scheduling site could not be captured (the
#: audit was installed mid-run, or the frame was unavailable).
UNKNOWN_SITE = "<unknown>"


class TieAudit:
    """Records same-timestamp ties between scheduling sites.

    One tie is one adjacent pair of events popped at the same
    simulated time: when the kernel executes an event and the next
    queue head carries the identical timestamp, the (unordered) pair
    of their scheduling sites is counted.  ``n`` events tied at one
    timestamp therefore record ``n - 1`` adjacent pairs -- enough to
    name every site participating in the collision.
    """

    def __init__(self) -> None:
        #: unordered site pair -> number of ties observed.
        self.pairs: Dict[Tuple[str, str], int] = {}
        #: total number of ties observed.
        self.ties = 0
        #: first simulated time at which each pair tied.
        self.first_seen: Dict[Tuple[str, str], float] = {}

    def record(self, when: float, site_a: str, site_b: str) -> None:
        """Count one tie at time *when* between two sites."""
        pair = (site_a, site_b) if site_a <= site_b else (site_b, site_a)
        self.ties += 1
        self.pairs[pair] = self.pairs.get(pair, 0) + 1
        if pair not in self.first_seen:
            self.first_seen[pair] = when

    @property
    def distinct_pairs(self) -> int:
        """How many distinct site pairs ever tied."""
        return len(self.pairs)

    def top_pairs(self, limit: int = 10) -> List[Tuple[str, str, int]]:
        """The most frequent site pairs, ``(site_a, site_b, count)``.

        Sorted by descending count, then by site pair, so the listing
        is deterministic.
        """
        ranked = sorted(self.pairs.items(),
                        key=lambda item: (-item[1], item[0]))
        return [(a, b, count) for (a, b), count in ranked[:limit]]

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-serialisable form (pairs in sorted order)."""
        return {
            "ties": self.ties,
            "pairs": [
                {
                    "site_a": pair[0],
                    "site_b": pair[1],
                    "count": self.pairs[pair],
                    "first_seen": self.first_seen[pair],
                }
                for pair in sorted(self.pairs)
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TieAudit":
        """Rebuild an audit serialised by :meth:`to_dict`."""
        audit = cls()
        audit.ties = int(data["ties"])
        for entry in data["pairs"]:
            pair = (str(entry["site_a"]), str(entry["site_b"]))
            audit.pairs[pair] = int(entry["count"])
            audit.first_seen[pair] = float(entry["first_seen"])
        return audit
