"""A small ASN.1 Unaligned PER (UPER) codec.

ETSI ITS messages (CAM, DENM) are specified in ASN.1 and transmitted
with unaligned Packed Encoding Rules.  OpenC2X ships the ``.asn``
modules and compiles them with ``asn1c``; here we implement the subset
of UPER needed for the CAM/DENM schemas directly:

* constrained / semi-constrained / unconstrained INTEGERs,
* BOOLEAN, ENUMERATED, BIT STRING, OCTET STRING, IA5String,
* SEQUENCE with OPTIONAL/DEFAULT components and extension markers,
* SEQUENCE OF with constrained or unconstrained length,
* CHOICE.

Values are plain Python objects: ints, bools, bytes, strings, dicts for
SEQUENCEs, ``(alternative_name, value)`` tuples for CHOICEs and lists
for SEQUENCE OF.  Encoding a message and decoding the bits yields an
equal value (round-trip property, covered by hypothesis tests).
"""

from repro.asn1.per import BitReader, BitWriter, Asn1Error
from repro.asn1.types import (
    Asn1Type,
    Boolean,
    BitString,
    Choice,
    Enumerated,
    Field,
    IA5String,
    Integer,
    Null,
    OctetString,
    Sequence,
    SequenceOf,
)

__all__ = [
    "Asn1Error",
    "Asn1Type",
    "BitReader",
    "BitWriter",
    "Boolean",
    "BitString",
    "Choice",
    "Enumerated",
    "Field",
    "IA5String",
    "Integer",
    "Null",
    "OctetString",
    "Sequence",
    "SequenceOf",
]
