"""Bit-level primitives for unaligned PER.

:class:`BitWriter` and :class:`BitReader` move whole unsigned integers
of arbitrary bit width in and out of a byte buffer with no alignment,
which is all UPER requires.  Length determinants follow X.691 10.9:

* constrained lengths within a range are encoded like a constrained
  integer;
* unconstrained lengths use the general form (single byte < 128,
  two bytes with the top bits ``10`` up to 16K; fragmentation beyond
  16K is not needed for ITS messages and raises).
"""

from __future__ import annotations

from typing import List


class Asn1Error(ValueError):
    """Raised on malformed values or truncated encodings."""


class BitWriter:
    """Accumulates an unaligned bit stream, MSB first."""

    def __init__(self) -> None:
        self._bits: List[int] = []

    def __len__(self) -> int:
        return len(self._bits)

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        self._bits.append(1 if bit else 0)

    def write_uint(self, value: int, width: int) -> None:
        """Append *value* as an unsigned integer of *width* bits."""
        if width < 0:
            raise Asn1Error(f"negative width {width}")
        if value < 0 or (width < 64 and value >> width):
            raise Asn1Error(f"value {value} does not fit in {width} bits")
        for shift in range(width - 1, -1, -1):
            self._bits.append((value >> shift) & 1)

    def write_bytes(self, data: bytes) -> None:
        """Append raw octets, unaligned."""
        for byte in data:
            self.write_uint(byte, 8)

    def write_length(self, length: int) -> None:
        """Append an unconstrained length determinant (X.691 10.9.3)."""
        if length < 0:
            raise Asn1Error(f"negative length {length}")
        if length < 128:
            self.write_uint(length, 8)
        elif length < 16384:
            self.write_uint(0b10, 2)
            self.write_uint(length, 14)
        else:
            raise Asn1Error(
                f"length {length} requires fragmentation (unsupported)"
            )

    def to_bytes(self) -> bytes:
        """The stream padded with zero bits to a whole number of octets."""
        out = bytearray()
        acc = 0
        count = 0
        for bit in self._bits:
            acc = (acc << 1) | bit
            count += 1
            if count == 8:
                out.append(acc)
                acc = 0
                count = 0
        if count:
            out.append(acc << (8 - count))
        return bytes(out)

    @property
    def bit_length(self) -> int:
        """Number of bits written so far."""
        return len(self._bits)


class BitReader:
    """Consumes an unaligned bit stream produced by :class:`BitWriter`."""

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0
        self._limit = len(data) * 8

    @property
    def position(self) -> int:
        """Current bit offset."""
        return self._pos

    @property
    def remaining(self) -> int:
        """Bits left in the buffer (including any final padding)."""
        return self._limit - self._pos

    def read_bit(self) -> int:
        """Read one bit."""
        if self._pos >= self._limit:
            raise Asn1Error("bit stream exhausted")
        byte = self._data[self._pos >> 3]
        bit = (byte >> (7 - (self._pos & 7))) & 1
        self._pos += 1
        return bit

    def read_uint(self, width: int) -> int:
        """Read an unsigned integer of *width* bits."""
        if width < 0:
            raise Asn1Error(f"negative width {width}")
        if self._pos + width > self._limit:
            raise Asn1Error(
                f"need {width} bits at offset {self._pos}, "
                f"only {self.remaining} remain"
            )
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value

    def read_bytes(self, count: int) -> bytes:
        """Read *count* raw octets, unaligned."""
        return bytes(self.read_uint(8) for _ in range(count))

    def read_length(self) -> int:
        """Read an unconstrained length determinant (X.691 10.9.3)."""
        first = self.read_uint(8)
        if first < 128:
            return first
        if (first >> 6) == 0b10:
            return ((first & 0x3F) << 8) | self.read_uint(8)
        raise Asn1Error("fragmented lengths unsupported")
