"""ASN.1 type objects with UPER encode/decode.

Each type object is immutable and reusable; ``encode``/``decode``
operate on :class:`~repro.asn1.per.BitWriter` / ``BitReader``.  The
top-level helpers :meth:`Asn1Type.to_bytes` and :meth:`Asn1Type.from_bytes`
wrap a whole PDU.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence as Seq, Tuple

from repro.asn1.per import Asn1Error, BitReader, BitWriter


def _bits_for_range(span: int) -> int:
    """Minimum bits to represent ``span`` distinct values (span >= 1)."""
    if span <= 1:
        return 0
    return (span - 1).bit_length()


class Asn1Type:
    """Base class for all type objects."""

    def encode(self, writer: BitWriter, value: Any) -> None:
        """Append *value*'s UPER encoding to *writer*."""
        raise NotImplementedError

    def decode(self, reader: BitReader) -> Any:
        """Read one value of this type from *reader*."""
        raise NotImplementedError

    def validate(self, value: Any) -> None:
        """Raise :class:`Asn1Error` if *value* is not encodable."""
        writer = BitWriter()
        self.encode(writer, value)

    def to_bytes(self, value: Any) -> bytes:
        """Encode *value* as a padded octet string (a whole PDU)."""
        writer = BitWriter()
        self.encode(writer, value)
        return writer.to_bytes()

    def from_bytes(self, data: bytes) -> Any:
        """Decode a whole PDU from *data* (trailing pad bits ignored)."""
        reader = BitReader(data)
        return self.decode(reader)


class Boolean(Asn1Type):
    """ASN.1 BOOLEAN: one bit."""

    def encode(self, writer: BitWriter, value: Any) -> None:
        if not isinstance(value, bool):
            raise Asn1Error(f"BOOLEAN requires bool, got {value!r}")
        writer.write_bit(1 if value else 0)

    def decode(self, reader: BitReader) -> bool:
        return bool(reader.read_bit())


class Null(Asn1Type):
    """ASN.1 NULL: zero bits."""

    def encode(self, writer: BitWriter, value: Any) -> None:
        if value is not None:
            raise Asn1Error(f"NULL requires None, got {value!r}")

    def decode(self, reader: BitReader) -> None:
        return None


class Integer(Asn1Type):
    """ASN.1 INTEGER, constrained / semi-constrained / unconstrained.

    * both bounds given -> constrained whole number (fixed bit width);
    * only ``lo`` given -> semi-constrained (length + offset octets);
    * no bounds -> unconstrained (length + two's-complement octets).
    """

    def __init__(self, lo: Optional[int] = None, hi: Optional[int] = None,
                 name: str = "INTEGER"):
        if lo is not None and hi is not None and hi < lo:
            raise Asn1Error(f"{name}: empty range [{lo}, {hi}]")
        self.lo = lo
        self.hi = hi
        self.name = name

    def __repr__(self) -> str:
        return f"Integer({self.lo}, {self.hi})"

    def encode(self, writer: BitWriter, value: Any) -> None:
        if not isinstance(value, int) or isinstance(value, bool):
            raise Asn1Error(f"{self.name} requires int, got {value!r}")
        if self.lo is not None and value < self.lo:
            raise Asn1Error(f"{self.name}: {value} < lower bound {self.lo}")
        if self.hi is not None and value > self.hi:
            raise Asn1Error(f"{self.name}: {value} > upper bound {self.hi}")
        if self.lo is not None and self.hi is not None:
            width = _bits_for_range(self.hi - self.lo + 1)
            writer.write_uint(value - self.lo, width)
        elif self.lo is not None:
            offset = value - self.lo
            octets = _uint_octets(offset)
            writer.write_length(len(octets))
            writer.write_bytes(octets)
        else:
            octets = _int_octets(value)
            writer.write_length(len(octets))
            writer.write_bytes(octets)

    def decode(self, reader: BitReader) -> int:
        if self.lo is not None and self.hi is not None:
            width = _bits_for_range(self.hi - self.lo + 1)
            return self.lo + reader.read_uint(width)
        if self.lo is not None:
            count = reader.read_length()
            data = reader.read_bytes(count)
            return self.lo + int.from_bytes(data, "big")
        count = reader.read_length()
        data = reader.read_bytes(count)
        return int.from_bytes(data, "big", signed=True)


def _uint_octets(value: int) -> bytes:
    length = max(1, (value.bit_length() + 7) // 8)
    return value.to_bytes(length, "big")


def _int_octets(value: int) -> bytes:
    length = max(1, (value.bit_length() + 8) // 8)
    return value.to_bytes(length, "big", signed=True)


class Enumerated(Asn1Type):
    """ASN.1 ENUMERATED over a fixed tuple of names.

    Values are the *names* (strings); the wire form is the index.
    """

    def __init__(self, names: Seq[str], name: str = "ENUMERATED"):
        if not names:
            raise Asn1Error("ENUMERATED requires at least one name")
        self.names = tuple(names)
        self.name = name
        self._index = {n: i for i, n in enumerate(self.names)}
        self._width = _bits_for_range(len(self.names))

    def encode(self, writer: BitWriter, value: Any) -> None:
        if value not in self._index:
            raise Asn1Error(f"{self.name}: unknown alternative {value!r}")
        writer.write_uint(self._index[value], self._width)

    def decode(self, reader: BitReader) -> str:
        index = reader.read_uint(self._width)
        if index >= len(self.names):
            raise Asn1Error(f"{self.name}: index {index} out of range")
        return self.names[index]


class BitString(Asn1Type):
    """ASN.1 BIT STRING with a fixed or bounded size.

    Values are tuples/lists of 0/1 ints.
    """

    def __init__(self, lo: int, hi: Optional[int] = None,
                 name: str = "BIT STRING"):
        self.lo = lo
        self.hi = hi if hi is not None else lo
        if self.hi < self.lo or self.lo < 0:
            raise Asn1Error(f"{name}: bad size range [{lo}, {hi}]")
        self.name = name

    def encode(self, writer: BitWriter, value: Any) -> None:
        bits = list(value)
        if not self.lo <= len(bits) <= self.hi:
            raise Asn1Error(
                f"{self.name}: size {len(bits)} outside "
                f"[{self.lo}, {self.hi}]"
            )
        if self.hi != self.lo:
            width = _bits_for_range(self.hi - self.lo + 1)
            writer.write_uint(len(bits) - self.lo, width)
        for bit in bits:
            if bit not in (0, 1):
                raise Asn1Error(f"{self.name}: bit value {bit!r}")
            writer.write_bit(bit)

    def decode(self, reader: BitReader) -> Tuple[int, ...]:
        size = self.lo
        if self.hi != self.lo:
            width = _bits_for_range(self.hi - self.lo + 1)
            size = self.lo + reader.read_uint(width)
        return tuple(reader.read_bit() for _ in range(size))


class OctetString(Asn1Type):
    """ASN.1 OCTET STRING, fixed / bounded / unbounded size.  Values: bytes."""

    def __init__(self, lo: int = 0, hi: Optional[int] = None,
                 name: str = "OCTET STRING"):
        self.lo = lo
        self.hi = hi
        self.name = name

    def encode(self, writer: BitWriter, value: Any) -> None:
        if not isinstance(value, (bytes, bytearray)):
            raise Asn1Error(f"{self.name} requires bytes, got {value!r}")
        data = bytes(value)
        if len(data) < self.lo or (self.hi is not None and len(data) > self.hi):
            raise Asn1Error(
                f"{self.name}: size {len(data)} outside "
                f"[{self.lo}, {self.hi}]"
            )
        if self.hi is None:
            writer.write_length(len(data))
        elif self.hi != self.lo:
            width = _bits_for_range(self.hi - self.lo + 1)
            writer.write_uint(len(data) - self.lo, width)
        writer.write_bytes(data)

    def decode(self, reader: BitReader) -> bytes:
        if self.hi is None:
            size = reader.read_length()
        elif self.hi != self.lo:
            width = _bits_for_range(self.hi - self.lo + 1)
            size = self.lo + reader.read_uint(width)
        else:
            size = self.lo
        return reader.read_bytes(size)


class IA5String(Asn1Type):
    """ASN.1 IA5String (7-bit characters), bounded or unbounded length."""

    def __init__(self, lo: int = 0, hi: Optional[int] = None,
                 name: str = "IA5String"):
        self.lo = lo
        self.hi = hi
        self.name = name

    def encode(self, writer: BitWriter, value: Any) -> None:
        if not isinstance(value, str):
            raise Asn1Error(f"{self.name} requires str, got {value!r}")
        if len(value) < self.lo or (self.hi is not None and len(value) > self.hi):
            raise Asn1Error(
                f"{self.name}: length {len(value)} outside "
                f"[{self.lo}, {self.hi}]"
            )
        if self.hi is None:
            writer.write_length(len(value))
        elif self.hi != self.lo:
            width = _bits_for_range(self.hi - self.lo + 1)
            writer.write_uint(len(value) - self.lo, width)
        for char in value:
            code = ord(char)
            if code > 127:
                raise Asn1Error(f"{self.name}: non-IA5 character {char!r}")
            writer.write_uint(code, 7)

    def decode(self, reader: BitReader) -> str:
        if self.hi is None:
            size = reader.read_length()
        elif self.hi != self.lo:
            width = _bits_for_range(self.hi - self.lo + 1)
            size = self.lo + reader.read_uint(width)
        else:
            size = self.lo
        return "".join(chr(reader.read_uint(7)) for _ in range(size))


class Field:
    """One SEQUENCE component.

    Args:
        name: component name (dict key in values).
        type_: the component's :class:`Asn1Type`.
        optional: True for OPTIONAL components.
        default: DEFAULT value (implies optional presence bit).
    """

    __slots__ = ("name", "type_", "optional", "default", "has_default")

    _MISSING = object()

    def __init__(self, name: str, type_: Asn1Type, optional: bool = False,
                 default: Any = _MISSING):
        self.name = name
        self.type_ = type_
        self.has_default = default is not Field._MISSING
        self.default = None if not self.has_default else default
        self.optional = optional or self.has_default


class Sequence(Asn1Type):
    """ASN.1 SEQUENCE with an optional-presence preamble.

    Values are dicts; absent OPTIONAL components are simply missing
    keys (or explicitly ``None`` is *not* allowed -- omit the key).
    An extension marker adds the leading extension bit; decoding an
    extended value with unknown extensions is rejected (ITS PDUs in
    this testbed never use extension additions).
    """

    def __init__(self, name: str, fields: Seq[Field],
                 extensible: bool = False):
        self.name = name
        self.fields = tuple(fields)
        self.extensible = extensible
        seen = set()
        for field in self.fields:
            if field.name in seen:
                raise Asn1Error(f"{name}: duplicate field {field.name!r}")
            seen.add(field.name)

    def encode(self, writer: BitWriter, value: Any) -> None:
        if not isinstance(value, dict):
            raise Asn1Error(f"{self.name} requires dict, got {value!r}")
        unknown = set(value) - {f.name for f in self.fields}
        if unknown:
            raise Asn1Error(f"{self.name}: unknown fields {sorted(unknown)}")
        if self.extensible:
            writer.write_bit(0)  # no extension additions
        for field in self.fields:
            if field.optional:
                writer.write_bit(1 if field.name in value else 0)
            elif field.name not in value:
                raise Asn1Error(
                    f"{self.name}: missing mandatory field {field.name!r}"
                )
        for field in self.fields:
            if field.name in value:
                try:
                    field.type_.encode(writer, value[field.name])
                except Asn1Error as err:
                    raise Asn1Error(
                        f"{self.name}.{field.name}: {err}"
                    ) from err

    def decode(self, reader: BitReader) -> Dict[str, Any]:
        if self.extensible:
            if reader.read_bit():
                raise Asn1Error(
                    f"{self.name}: extension additions unsupported"
                )
        present = {}
        for field in self.fields:
            present[field.name] = (
                bool(reader.read_bit()) if field.optional else True
            )
        out: Dict[str, Any] = {}
        for field in self.fields:
            if present[field.name]:
                out[field.name] = field.type_.decode(reader)
        return out


class SequenceOf(Asn1Type):
    """ASN.1 SEQUENCE OF with bounded or unbounded count.  Values: lists."""

    def __init__(self, element: Asn1Type, lo: int = 0,
                 hi: Optional[int] = None, name: str = "SEQUENCE OF"):
        self.element = element
        self.lo = lo
        self.hi = hi
        self.name = name

    def encode(self, writer: BitWriter, value: Any) -> None:
        if not isinstance(value, (list, tuple)):
            raise Asn1Error(f"{self.name} requires list, got {value!r}")
        count = len(value)
        if count < self.lo or (self.hi is not None and count > self.hi):
            raise Asn1Error(
                f"{self.name}: count {count} outside [{self.lo}, {self.hi}]"
            )
        if self.hi is None:
            writer.write_length(count)
        elif self.hi != self.lo:
            width = _bits_for_range(self.hi - self.lo + 1)
            writer.write_uint(count - self.lo, width)
        for item in value:
            self.element.encode(writer, item)

    def decode(self, reader: BitReader) -> List[Any]:
        if self.hi is None:
            count = reader.read_length()
        elif self.hi != self.lo:
            width = _bits_for_range(self.hi - self.lo + 1)
            count = self.lo + reader.read_uint(width)
        else:
            count = self.lo
        return [self.element.decode(reader) for _ in range(count)]


class Choice(Asn1Type):
    """ASN.1 CHOICE.  Values: ``(alternative_name, value)`` tuples."""

    def __init__(self, name: str, alternatives: Seq[Tuple[str, Asn1Type]],
                 extensible: bool = False):
        if not alternatives:
            raise Asn1Error(f"{name}: CHOICE needs alternatives")
        self.name = name
        self.alternatives = tuple(alternatives)
        self.extensible = extensible
        self._index = {alt: i for i, (alt, _) in enumerate(self.alternatives)}
        self._width = _bits_for_range(len(self.alternatives))

    def encode(self, writer: BitWriter, value: Any) -> None:
        if (not isinstance(value, tuple)) or len(value) != 2:
            raise Asn1Error(
                f"{self.name} requires (alternative, value), got {value!r}"
            )
        alt, inner = value
        if alt not in self._index:
            raise Asn1Error(f"{self.name}: unknown alternative {alt!r}")
        if self.extensible:
            writer.write_bit(0)
        writer.write_uint(self._index[alt], self._width)
        self.alternatives[self._index[alt]][1].encode(writer, inner)

    def decode(self, reader: BitReader) -> Tuple[str, Any]:
        if self.extensible:
            if reader.read_bit():
                raise Asn1Error(f"{self.name}: extension alternative")
        index = reader.read_uint(self._width)
        if index >= len(self.alternatives):
            raise Asn1Error(f"{self.name}: index {index} out of range")
        alt, type_ = self.alternatives[index]
        return (alt, type_.decode(reader))
