"""The GeoNetworking router: SHB and GeoBroadcast forwarding.

Two transport types are implemented, matching what the CA and DEN
facilities need (EN 302 636-4-1):

* **SHB** (Single-Hop Broadcast): delivered to all one-hop neighbours,
  never forwarded.  CAMs use this.
* **GBC** (GeoBroadcast): flooded towards / within a circular
  destination area.  Receivers inside the area deliver the payload up
  and re-broadcast it (simple flooding with duplicate suppression and
  a hop limit), so a warning reaches stations the originator cannot
  hear directly -- e.g. every member of a platoon.  DENMs use this.

Header sizes follow the standard: 36 bytes GN (basic+common) + 28
extended for GBC, + 4 bytes BTP.
"""

from __future__ import annotations

import dataclasses
import itertools
import math
from typing import Any, Callable, Optional, Tuple

import numpy as np

from repro.geonet.btp import BTP_HEADER_BYTES, BtpMux
from repro.geonet.location_table import LocationTable
from repro.geonet.position import GeoPosition, PositionVector
from repro.net.frame import AccessCategory, Frame
from repro.net.medium import ReceptionInfo
from repro.net.nic import NetworkInterface
from repro.sim.kernel import Simulator

#: GN basic + common header bytes.
GN_COMMON_HEADER_BYTES = 36

#: Extra extended-header bytes for GBC (destination area).
GN_GBC_HEADER_BYTES = 28

#: Default GBC hop limit.
DEFAULT_HOP_LIMIT = 3

#: Jitter window for GBC re-forwarding, avoiding synchronised
#: rebroadcast collisions (s).
FORWARD_JITTER = 1e-3

#: Beacon interval when no other GN traffic was sent (EN 302 636-4-1
#: itsGnBeaconServiceRetransmitTimer: 3 s).
BEACON_INTERVAL = 3.0

#: Maximum added beacon jitter (25% of the interval).
BEACON_JITTER = 0.75


@dataclasses.dataclass(frozen=True)
class CircularArea:
    """A circular geographic destination area."""

    center: GeoPosition
    radius: float  # metres

    def contains(self, position: GeoPosition) -> bool:
        """Whether *position* lies within the area."""
        return self.center.distance_to(position) <= self.radius


@dataclasses.dataclass
class GnPacket:
    """A GeoNetworking packet as it travels between routers.

    ``payload`` carries the UPER-encoded facilities message; headers
    are represented structurally, with their wire size accounted for
    in :meth:`wire_size`.  When the sender runs a security entity,
    ``secured`` holds the signed envelope and its overhead counts
    towards the wire size.
    """

    transport: str                     # "shb" | "gbc" | "guc" | "beacon"
    source_position_vector: PositionVector
    sequence_number: int
    btp_port: int
    payload: bytes
    hop_limit: int = 1
    area: Optional[CircularArea] = None
    traffic_class: AccessCategory = AccessCategory.AC_BE
    secured: Optional[Any] = None      # security.SecuredMessage
    # GeoUnicast fields.
    destination_address: Optional[str] = None
    destination_position: Optional[GeoPosition] = None
    next_hop: Optional[str] = None

    @property
    def wire_size(self) -> int:
        """Bytes this packet occupies as a MAC payload."""
        size = GN_COMMON_HEADER_BYTES + BTP_HEADER_BYTES + len(self.payload)
        if self.transport in ("gbc", "guc"):
            size += GN_GBC_HEADER_BYTES
        if self.secured is not None:
            size += self.secured.wire_overhead
        return size


class GeoNetRouter:
    """One station's GeoNetworking instance, bound to a NIC.

    Args:
        sim: simulation kernel.
        nic: the 802.11p interface.
        gn_address: this station's GN address (reuses the NIC name).
        position: callable returning the current :class:`GeoPosition`.
        dynamics: optional callable returning (speed m/s, heading deg)
            for the position vector.
    """

    def __init__(
        self,
        sim: Simulator,
        nic: NetworkInterface,
        position: Callable[[], GeoPosition],
        dynamics: Optional[Callable[[], Tuple[float, float]]] = None,
        rng: Optional[np.random.Generator] = None,
        security=None,
        enable_beaconing: bool = False,
    ):
        self.sim = sim
        self.nic = nic
        self.gn_address = nic.name
        self.position = position
        self.dynamics = dynamics or (lambda: (0.0, 0.0))
        self.rng = rng or np.random.default_rng(0)
        self.security = security
        self.location_table = LocationTable(sim)
        self.btp = BtpMux()
        self._sequence = itertools.count(1)
        self.packets_sent = 0
        self.packets_delivered_up = 0
        self.packets_forwarded = 0
        self.packets_duplicate = 0
        self.packets_outside_area = 0
        self.packets_rejected_security = 0
        self.packets_no_route = 0
        self.beacons_sent = 0
        self.beacons_received = 0
        #: Optional DCC gatekeeper (duck-typed ``send(frame)``); when a
        #: fleet station wires one in, every outgoing frame passes the
        #: gate instead of going straight to the MAC.
        self.gate: Optional[Any] = None
        #: Optional order-free jitter draw for GBC/GUC re-forwarding,
        #: ``packet -> delay (s)``.  The default per-station rng draw
        #: depends on how many forwards this router did before -- which
        #: at fleet scale varies with kernel tie-breaking; fleet wiring
        #: replaces it with a hash of stable packet identity.
        self.forward_jitter_fn: Optional[Callable[[GnPacket], float]] = None
        self._last_gn_transmission: Optional[float] = None
        nic.on_receive(self._on_frame)
        if enable_beaconing:
            self._schedule_beacon()

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def _position_vector(self) -> PositionVector:
        speed, heading = self.dynamics()
        return PositionVector(
            gn_address=self.gn_address,
            timestamp=self.sim.now,
            position=self.position(),
            speed=speed,
            heading=heading,
        )

    def send_shb(self, payload: bytes, btp_port: int,
                 traffic_class: AccessCategory = AccessCategory.AC_VI,
                 ) -> GnPacket:
        """Single-hop broadcast *payload* (the CAM path)."""
        packet = GnPacket(
            transport="shb",
            source_position_vector=self._position_vector(),
            sequence_number=next(self._sequence),
            btp_port=btp_port,
            payload=payload,
            hop_limit=1,
            traffic_class=traffic_class,
        )
        self._transmit(packet)
        return packet

    def send_gbc(self, payload: bytes, btp_port: int, area: CircularArea,
                 hop_limit: int = DEFAULT_HOP_LIMIT,
                 traffic_class: AccessCategory = AccessCategory.AC_VO,
                 ) -> GnPacket:
        """GeoBroadcast *payload* into *area* (the DENM path)."""
        packet = GnPacket(
            transport="gbc",
            source_position_vector=self._position_vector(),
            sequence_number=next(self._sequence),
            btp_port=btp_port,
            payload=payload,
            hop_limit=hop_limit,
            area=area,
            traffic_class=traffic_class,
        )
        self._transmit(packet)
        return packet

    def send_guc(self, payload: bytes, btp_port: int,
                 destination_address: str,
                 hop_limit: int = DEFAULT_HOP_LIMIT,
                 traffic_class: AccessCategory = AccessCategory.AC_BE,
                 ) -> Optional[GnPacket]:
        """GeoUnicast *payload* towards a known station.

        The destination must be in the location table (learned from
        its CAMs/beacons); each hop forwards greedily towards the
        destination's last known position.  Returns None when no
        useful next hop exists (greedy local optimum).
        """
        entry = self.location_table.get(destination_address)
        if entry is None:
            self.packets_no_route += 1
            return None
        destination_position = entry.position_vector.position
        next_hop = self._greedy_next_hop(destination_address,
                                         destination_position)
        if next_hop is None:
            self.packets_no_route += 1
            return None
        packet = GnPacket(
            transport="guc",
            source_position_vector=self._position_vector(),
            sequence_number=next(self._sequence),
            btp_port=btp_port,
            payload=payload,
            hop_limit=hop_limit,
            traffic_class=traffic_class,
            destination_address=destination_address,
            destination_position=destination_position,
            next_hop=next_hop,
        )
        self._transmit(packet)
        return packet

    def _greedy_next_hop(self, destination_address: str,
                         destination_position: GeoPosition,
                         ) -> Optional[str]:
        """The known station strictly closer to the destination than
        we are (the destination itself included), or None at a greedy
        local optimum."""
        own_distance = self.position().distance_to(destination_position)
        best: Optional[str] = None
        best_distance = own_distance
        for entry in self.location_table.neighbours():
            if entry.gn_address == self.gn_address:
                continue
            if not entry.is_neighbour:
                continue  # cannot hand a frame to a multi-hop entry
            distance = entry.position_vector.position.distance_to(
                destination_position)
            if distance < best_distance:
                best = entry.gn_address
                best_distance = distance
        return best

    def _transmit(self, packet: GnPacket) -> None:
        if self.security is not None:
            # Sign first (CPU time charged), then put on the air.
            def signed(envelope, packet=packet) -> None:
                secured_packet = dataclasses.replace(
                    packet, secured=envelope)
                self._put_on_air(secured_packet)

            self.security.sign_async(packet.payload, signed)
            return
        self._put_on_air(packet)

    def _put_on_air(self, packet: GnPacket) -> None:
        frame = Frame(
            payload=packet,
            size=packet.wire_size,
            source=self.gn_address,
            category=packet.traffic_class,
        )
        self.packets_sent += 1
        self._last_gn_transmission = self.sim.now
        self._send_frame(frame)

    def _send_frame(self, frame: Frame) -> None:
        if self.gate is not None:
            self.gate.send(frame)
        else:
            self.nic.send(frame)

    def _forward_delay(self, packet: GnPacket) -> float:
        if self.forward_jitter_fn is not None:
            return float(self.forward_jitter_fn(packet))
        return float(self.rng.uniform(0.0, FORWARD_JITTER))

    # ------------------------------------------------------------------
    # Beaconing
    # ------------------------------------------------------------------

    def _schedule_beacon(self) -> None:
        delay = BEACON_INTERVAL + float(self.rng.uniform(0, BEACON_JITTER))
        self.sim.schedule(delay, self._beacon_tick)

    def _beacon_tick(self) -> None:
        # A beacon is only needed when nothing else advertised our
        # position vector recently.
        quiet_for = (math.inf if self._last_gn_transmission is None
                     else self.sim.now - self._last_gn_transmission)
        if quiet_for >= BEACON_INTERVAL:
            packet = GnPacket(
                transport="beacon",
                source_position_vector=self._position_vector(),
                sequence_number=next(self._sequence),
                btp_port=0,
                payload=b"",
                hop_limit=1,
                traffic_class=AccessCategory.AC_BE,
            )
            self.beacons_sent += 1
            self._put_on_air(packet)
        self._schedule_beacon()

    # ------------------------------------------------------------------
    # Receiving / forwarding
    # ------------------------------------------------------------------

    def _on_frame(self, frame: Frame, info: ReceptionInfo) -> None:
        packet = frame.payload
        if not isinstance(packet, GnPacket):
            return
        source = packet.source_position_vector
        if source.gn_address == self.gn_address:
            return  # our own rebroadcast echoed back
        # Heard directly iff the MAC-level sender is the GN source
        # (forwarded copies arrive from the forwarder's radio).
        self.location_table.update(
            source, is_neighbour=(frame.source == source.gn_address))
        if self.location_table.is_duplicate(source.gn_address,
                                            packet.sequence_number):
            self.packets_duplicate += 1
            return
        if packet.transport == "beacon":
            # Location-table maintenance only; nothing to deliver.
            self.beacons_received += 1
            return
        if packet.transport == "shb":
            self._deliver_up(packet, info)
            return
        if packet.transport == "guc":
            self._handle_guc(packet, info)
            return
        # GBC: deliver if inside the area; forward while hops remain.
        inside = packet.area is not None and packet.area.contains(
            self.position())
        if inside:
            self._deliver_up(packet, info)
        else:
            self.packets_outside_area += 1
        if packet.hop_limit > 1 and inside:
            self._schedule_forward(packet)

    def _handle_guc(self, packet: GnPacket, info: ReceptionInfo) -> None:
        if packet.destination_address == self.gn_address:
            self._deliver_up(packet, info)
            return
        if packet.next_hop != self.gn_address:
            return  # overheard; not our job to forward
        if packet.hop_limit <= 1:
            self.packets_no_route += 1
            return
        assert packet.destination_address is not None
        assert packet.destination_position is not None
        next_hop = self._greedy_next_hop(packet.destination_address,
                                         packet.destination_position)
        if next_hop is None:
            self.packets_no_route += 1
            return
        forwarded = dataclasses.replace(
            packet, hop_limit=packet.hop_limit - 1, next_hop=next_hop)
        delay = self._forward_delay(forwarded)
        self.packets_forwarded += 1
        self.sim.schedule(delay, lambda: self._put_on_air(forwarded))

    def _deliver_up(self, packet: GnPacket, info: ReceptionInfo) -> None:
        if packet.secured is not None and self.security is not None:
            def accept(payload: bytes) -> None:
                self.packets_delivered_up += 1
                self.btp.dispatch(packet.btp_port, payload, info)

            def reject(_err) -> None:
                self.packets_rejected_security += 1

            self.security.verify_async(packet.secured, accept, reject)
            return
        self.packets_delivered_up += 1
        self.btp.dispatch(packet.btp_port, packet.payload, info)

    def _schedule_forward(self, packet: GnPacket) -> None:
        forwarded = dataclasses.replace(packet, hop_limit=packet.hop_limit - 1)
        delay = self._forward_delay(forwarded)
        self.sim.schedule(delay, lambda: self._forward(forwarded))

    def _forward(self, packet: GnPacket) -> None:
        frame = Frame(
            payload=packet,
            size=packet.wire_size,
            source=self.gn_address,
            category=packet.traffic_class,
        )
        self.packets_forwarded += 1
        self._send_frame(frame)
