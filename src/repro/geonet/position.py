"""Geodetic positions and the testbed's local metric frame.

The robotic testbed lives in a laboratory measured in metres, while
ETSI ITS messages carry WGS-84 coordinates.  :class:`LocalFrame`
anchors a flat local (x, y) frame at a reference geodetic point (the
lab's location) using an equirectangular approximation, exact to
millimetres over tens of metres.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Tuple

#: Mean Earth radius (m).
EARTH_RADIUS = 6_371_008.8


@dataclasses.dataclass(frozen=True)
class GeoPosition:
    """A WGS-84 position in degrees."""

    latitude: float
    longitude: float

    def distance_to(self, other: "GeoPosition") -> float:
        """Great-circle distance in metres."""
        return haversine_distance(self, other)


def haversine_distance(a: GeoPosition, b: GeoPosition) -> float:
    """Great-circle distance between two positions (m)."""
    lat1, lon1 = math.radians(a.latitude), math.radians(a.longitude)
    lat2, lon2 = math.radians(b.latitude), math.radians(b.longitude)
    d_lat = lat2 - lat1
    d_lon = lon2 - lon1
    h = (math.sin(d_lat / 2.0) ** 2
         + math.cos(lat1) * math.cos(lat2) * math.sin(d_lon / 2.0) ** 2)
    return 2.0 * EARTH_RADIUS * math.asin(math.sqrt(h))


@dataclasses.dataclass(frozen=True)
class LocalFrame:
    """A flat metric frame anchored at a geodetic origin.

    ``x`` grows eastwards, ``y`` northwards.  The default origin is the
    CISTER lab in Porto, matching the paper's venue -- any origin works,
    it only anchors the coordinates carried in CAM/DENM fields.
    """

    origin: GeoPosition = GeoPosition(41.17867, -8.60782)

    def to_geo(self, x: float, y: float) -> GeoPosition:
        """Local metres -> geodetic degrees."""
        lat0 = math.radians(self.origin.latitude)
        d_lat = (y / EARTH_RADIUS) * (180.0 / math.pi)
        d_lon = (x / (EARTH_RADIUS * math.cos(lat0))) * (180.0 / math.pi)
        return GeoPosition(self.origin.latitude + d_lat,
                           self.origin.longitude + d_lon)

    def to_local(self, position: GeoPosition) -> Tuple[float, float]:
        """Geodetic degrees -> local metres."""
        lat0 = math.radians(self.origin.latitude)
        d_lat = math.radians(position.latitude - self.origin.latitude)
        d_lon = math.radians(position.longitude - self.origin.longitude)
        return (d_lon * EARTH_RADIUS * math.cos(lat0),
                d_lat * EARTH_RADIUS)


@dataclasses.dataclass(frozen=True)
class PositionVector:
    """A GeoNetworking long position vector.

    Carried in every GN header: the sender's address, when the position
    was taken, where, and the movement state.
    """

    gn_address: str
    timestamp: float          # seconds (station clock)
    position: GeoPosition
    speed: float = 0.0        # m/s
    heading: float = 0.0      # degrees clockwise from north
    position_accuracy: bool = True

    def is_fresher_than(self, other: "PositionVector") -> bool:
        """Whether this vector supersedes *other* for the same address."""
        return self.timestamp > other.timestamp
