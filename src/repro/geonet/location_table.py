"""The GeoNetworking location table (EN 302 636-4-1, clause 8.1).

Each router keeps an entry per known ITS station: its latest position
vector and bookkeeping for duplicate-packet detection.  Entries expire
after a lifetime (default 20 s) without updates.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, Optional, Set

from repro.geonet.position import PositionVector
from repro.sim.kernel import Simulator

#: Default location-table entry lifetime (s).
DEFAULT_LIFETIME = 20.0

#: Sequence numbers remembered per source for duplicate detection.
DUPLICATE_WINDOW = 256


@dataclasses.dataclass
class LocationTableEntry:
    """State kept about one remote ITS station."""

    gn_address: str
    position_vector: PositionVector
    updated_at: float
    #: True when at least one packet was heard *directly* from this
    #: station (one-hop neighbour) within the entry's lifetime; False
    #: for stations only known through forwarded packets.  Greedy
    #: forwarding may only choose neighbours.
    is_neighbour: bool = False
    seen_sequence_numbers: Set[int] = dataclasses.field(default_factory=set)
    last_sequence_number: Optional[int] = None
    packets_received: int = 0


class LocationTable:
    """Per-router table of known stations."""

    def __init__(self, sim: Simulator, lifetime: float = DEFAULT_LIFETIME):
        self.sim = sim
        self.lifetime = lifetime
        self._entries: Dict[str, LocationTableEntry] = {}

    def update(self, position_vector: PositionVector,
               is_neighbour: bool = False) -> LocationTableEntry:
        """Insert or refresh the entry for the vector's sender.

        Set *is_neighbour* when the packet was heard directly from the
        station (not through a forwarder).
        """
        address = position_vector.gn_address
        entry = self._entries.get(address)
        if entry is None:
            entry = LocationTableEntry(
                gn_address=address,
                position_vector=position_vector,
                updated_at=self.sim.now,
                is_neighbour=is_neighbour,
            )
            self._entries[address] = entry
        else:
            if position_vector.is_fresher_than(entry.position_vector):
                entry.position_vector = position_vector
            entry.updated_at = self.sim.now
            entry.is_neighbour = entry.is_neighbour or is_neighbour
        entry.packets_received += 1
        return entry

    def is_duplicate(self, gn_address: str, sequence_number: int) -> bool:
        """Duplicate-packet check; records the sequence number."""
        entry = self._entries.get(gn_address)
        if entry is None:
            return False
        if sequence_number in entry.seen_sequence_numbers:
            return True
        entry.seen_sequence_numbers.add(sequence_number)
        entry.last_sequence_number = sequence_number
        if len(entry.seen_sequence_numbers) > DUPLICATE_WINDOW:
            # Forget the oldest half; sequence numbers are monotonic
            # per source so dropping the smallest is safe.
            keep = sorted(entry.seen_sequence_numbers)[DUPLICATE_WINDOW // 2:]
            entry.seen_sequence_numbers = set(keep)
        return False

    def get(self, gn_address: str) -> Optional[LocationTableEntry]:
        """The live entry for *gn_address*, or None if absent/expired."""
        entry = self._entries.get(gn_address)
        if entry is None:
            return None
        if self.sim.now - entry.updated_at > self.lifetime:
            del self._entries[gn_address]
            return None
        return entry

    def purge_expired(self) -> int:
        """Drop all expired entries; returns how many were removed."""
        now = self.sim.now
        stale = [address for address, entry in self._entries.items()
                 if now - entry.updated_at > self.lifetime]
        for address in stale:
            del self._entries[address]
        return len(stale)

    def neighbours(self) -> Iterator[LocationTableEntry]:
        """Iterate over live entries."""
        now = self.sim.now
        for entry in list(self._entries.values()):
            if now - entry.updated_at <= self.lifetime:
                yield entry

    def __len__(self) -> int:
        return sum(1 for _ in self.neighbours())

    def __contains__(self, gn_address: str) -> bool:
        return self.get(gn_address) is not None
