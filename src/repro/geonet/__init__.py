"""GeoNetworking and Basic Transport Protocol (Networking & Transport).

ETSI ITS inserts a geographic ad-hoc routing layer between the access
layer and the facilities:

* :mod:`repro.geonet.position` -- geodetic positions, the testbed's
  local metric frame, and position vectors;
* :mod:`repro.geonet.location_table` -- the per-router neighbour table
  with entry expiry and duplicate-packet detection;
* :mod:`repro.geonet.router` -- Single-Hop Broadcast (CAMs) and
  GeoBroadcast (DENMs) forwarding;
* :mod:`repro.geonet.btp` -- BTP-B port multiplexing (2001 = CAM,
  2002 = DENM).
"""

from repro.geonet.position import (
    GeoPosition,
    LocalFrame,
    PositionVector,
    haversine_distance,
)
from repro.geonet.location_table import LocationTable, LocationTableEntry
from repro.geonet.btp import BtpMux, BtpPort
from repro.geonet.router import CircularArea, GeoNetRouter, GnPacket

__all__ = [
    "BtpMux",
    "BtpPort",
    "CircularArea",
    "GeoNetRouter",
    "GeoPosition",
    "GnPacket",
    "LocalFrame",
    "LocationTable",
    "LocationTableEntry",
    "PositionVector",
    "haversine_distance",
]
