"""Basic Transport Protocol (EN 302 636-5-1), BTP-B flavour.

BTP adds a 4-byte header with a destination port; the facilities-layer
services each own a well-known port.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

#: BTP header size on the wire (bytes).
BTP_HEADER_BYTES = 4

DeliveryCallback = Callable[[bytes, Any], None]


class BtpPort:
    """Well-known BTP-B destination ports (TS 103 248)."""

    CAM = 2001
    DENM = 2002
    MAP = 2003
    SPAT = 2004
    SA = 2005
    IVI = 2006


class BtpMux:
    """Dispatches decoded GN payloads to facilities by destination port."""

    def __init__(self) -> None:
        self._handlers: Dict[int, List[DeliveryCallback]] = {}
        self.delivered = 0
        self.no_handler = 0

    def register(self, port: int, callback: DeliveryCallback) -> None:
        """Subscribe *callback* to payloads for *port*."""
        self._handlers.setdefault(port, []).append(callback)

    def dispatch(self, port: int, payload: bytes, context: Any) -> bool:
        """Deliver *payload* to the handlers of *port*.

        Returns False when no handler is registered (the packet is
        dropped, mirroring a closed port).
        """
        handlers = self._handlers.get(port)
        if not handlers:
            self.no_handler += 1
            return False
        self.delivered += 1
        for callback in handlers:
            callback(payload, context)
        return True
