"""Command-line interface: ``repro-testbed``.

Subcommands:

* ``run`` -- one emergency-braking run, printing the step timeline;
* ``campaign`` -- N runs, printing Table II / Table III / Figure 11;
* ``blind-corner`` -- the intersection use-case, aided vs onboard;
* ``platoon`` -- the platooning extension;
* ``cdf`` -- a latency campaign with distribution fitting;
* ``faults`` -- the fault-injection matrix (plans x seeds) with
  SAFE/LATE/NO/SPURIOUS-stop verdicts;
* ``fleet`` -- fleet-scale congestion campaigns: N OBUs and M RSUs
  sharing one channel, sweepable over fleet sizes;
* ``bench`` -- the fixed perf grid, writing ``BENCH_<rev>.json``
  (``--fleet-sizes`` adds a fleet-size axis);
* ``bench-gate`` -- compare a fresh bench artefact against a
  committed baseline with warn/fail tolerance bands;
* ``vary`` -- the scenario-space variation engine: sample a declared
  spec (grid / LHS / adaptive boundary refinement), run every point,
  and emit a canonical coverage report;
* ``queue`` -- the durable work-queue campaign backend: ``enqueue``
  items, run ``work``ers (crash-safe: lost leases requeue, exhausted
  items dead-letter), ``drain`` to completion, inspect ``status``,
  ``fold`` the bit-identical result;
* ``trace`` -- one traced run as canonical JSONL + step timeline
  (``--update-golden`` refreshes the golden-trace fixtures);
* ``lint`` -- the detlint determinism linter (rules DET001..DET008
  over ``src/``; same engine as ``tools/detlint``).

Examples::

    repro-testbed run --seed 7
    repro-testbed campaign --runs 10 --secured
    repro-testbed campaign --runs 50 --workers 4 --cache-dir .runs
    repro-testbed platoon --interface 5g_leader --members 5
    repro-testbed bench --runs 5
    repro-testbed bench-gate --fresh BENCH_abc.json \
        --baseline BENCH_192981b.json
    repro-testbed vary run --spec blind-corner-demo \
        --sampler adaptive --points 8 --report coverage.json
    repro-testbed vary sample --spec brake-demo --sampler lhs \
        --points 12
    repro-testbed queue enqueue --dir /tmp/q --runs 50
    repro-testbed queue drain --dir /tmp/q --workers 4
    repro-testbed queue fold --dir /tmp/q
    repro-testbed trace --update-golden

``campaign``, ``cdf``, ``faults`` and ``report`` accept
``--workers N`` (shard runs over a process pool; bit-identical to
serial; ``0`` = auto, one worker per CPU core) and ``--cache-dir
DIR`` (skip already-computed runs); per-run progress streams to
stderr.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core import (
    EmergencyBrakeScenario,
    ScaleTestbed,
    Steps,
    analyse_braking,
    empirical_distribution,
    fit_distributions,
    run_campaign_parallel,
    summarize,
)


def _add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=1,
                        help="base random seed")
    parser.add_argument("--radio", choices=("its_g5", "5g"),
                        default="its_g5",
                        help="warning delivery technology")
    parser.add_argument("--secured", action="store_true",
                        help="sign/verify messages (TS 103 097)")
    parser.add_argument("--hazard-mode",
                        choices=("threshold", "ldm", "predictive"),
                        default="threshold",
                        help="hazard trigger rule")
    parser.add_argument("--poll-interval", type=float, default=0.05,
                        help="OBU HTTP poll period (s)")
    parser.add_argument("--start-distance", type=float, default=6.0,
                        help="vehicle start distance from camera (m)")
    parser.add_argument("--scenario", default=None, metavar="FILE.json",
                        help="load the full scenario from a JSON file "
                             "(other scenario flags are ignored except "
                             "--seed)")


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"must be an integer >= 1, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _workers_count(text: str) -> int:
    """``--workers`` value: >= 1, or 0 = auto (one per CPU core)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"must be an integer >= 0, got {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 0 (0 = auto, one worker per CPU core), "
            f"got {value}")
    return value


def _check_cache_dir(cache_dir) -> None:
    """Fail with a clean CLI error if the cache dir is unusable."""
    if cache_dir is None:
        return
    import os

    try:
        os.makedirs(cache_dir, exist_ok=True)
    except OSError as error:
        raise SystemExit(
            f"repro-testbed: error: --cache-dir {cache_dir!r} is not "
            f"a usable directory ({error})") from error


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=_workers_count, default=1,
                        metavar="N",
                        help="run the campaign across N worker "
                             "processes; 0 = auto, one worker per "
                             "CPU core "
                             "(results are bit-identical for any N)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="cache completed runs on disk so "
                             "repeated campaigns skip them")
    parser.add_argument("--backend", choices=("pool", "queue"),
                        default="pool",
                        help="execution backend: in-process pool or "
                             "the durable work queue (bit-identical "
                             "results either way)")
    parser.add_argument("--queue-dir", default=None, metavar="DIR",
                        help="queue state directory for "
                             "--backend queue (default: temporary)")


def _print_progress(outcome, done: int, total: int) -> None:
    source = "cached" if outcome.cached else "simulated"
    print(f"  [{done}/{total}] run {outcome.run_id} "
          f"(seed {outcome.seed}) {source}", file=sys.stderr)


def _run_engine(args: argparse.Namespace, scenario=None):
    _check_cache_dir(args.cache_dir)
    return run_campaign_parallel(
        scenario if scenario is not None else _scenario_from(args),
        runs=args.runs, base_seed=args.seed,
        workers=args.workers, cache_dir=args.cache_dir,
        progress=_print_progress,
        backend=getattr(args, "backend", "pool"),
        queue_dir=getattr(args, "queue_dir", None))


def _scenario_from(args: argparse.Namespace) -> EmergencyBrakeScenario:
    if args.scenario:
        from repro.core.scenario import scenario_from_json

        scenario = scenario_from_json(args.scenario)
        return scenario.with_seed(args.seed)
    return EmergencyBrakeScenario(
        seed=args.seed,
        radio=args.radio,
        secured=args.secured,
        hazard_mode=args.hazard_mode,
        obu_poll_interval=args.poll_interval,
        start_distance=args.start_distance,
    )


def cmd_run(args: argparse.Namespace) -> int:
    testbed = ScaleTestbed(_scenario_from(args))
    measurement = testbed.run()
    print("Step timeline (simulated ground truth):")
    for step in Steps.ORDER:
        record = testbed.timeline.get(step)
        if record is None:
            print(f"  {step:<24} (not reached)")
        else:
            print(f"  {step:<24} t={record.sim_time:9.4f} s")
    intervals = measurement.intervals_ms()
    print()
    print("Intervals (device clocks, ms):")
    for name, value in intervals.items():
        print(f"  {name:<24} {value:8.2f}")
    print()
    print(f"braking distance: {measurement.braking_distance:.3f} m, "
          f"final camera distance: "
          f"{measurement.final_distance_to_camera:.3f} m")
    # Predictive triggering legitimately stops the vehicle before the
    # Action Point (step 1 never happens); success = the car halted.
    return 0 if testbed.timeline.has(Steps.HALTED) else 1


def cmd_campaign(args: argparse.Namespace) -> int:
    result = _run_engine(args)
    table = result.table2()
    print(f"Table II analogue over {args.runs} runs (ms):")
    for name, data in table.items():
        runs = " ".join(f"{v:5.1f}" for v in data["runs"])
        print(f"  {name:<22} avg={data['avg']:6.2f}  [{runs}]")
    braking = analyse_braking(result.braking_distances())
    print()
    print(f"Table III analogue: mean={braking.mean:.3f} m "
          f"var={braking.variance:.4f} "
          f"within vehicle length: {braking.within_vehicle_length}")
    totals = result.total_delays_ms()
    xs, fractions = empirical_distribution(totals)
    print()
    print("Figure 11 analogue (EDF):")
    for x, fraction in zip(xs, fractions):
        print(f"  {x:6.1f} ms -> {fraction:4.2f}")
    halted = sum(1 for run in result.runs
                 if run.timeline.has(Steps.HALTED))
    return 0 if halted == args.runs else 1


def cmd_blind_corner(args: argparse.Namespace) -> int:
    from repro.core.blind_corner import compare_configurations

    aided, onboard = compare_configurations(seed=args.seed)
    for label, result in (("network-aided", aided),
                          ("onboard-only", onboard)):
        outcome = "COLLISION" if result.collision else "avoided"
        print(f"{label:<14} {outcome:<10} "
              f"min-separation={result.min_separation:5.2f} m "
              f"denm={'yes' if result.denm_received else 'no'}")
    return 0 if (not aided.collision) and onboard.collision else 1


def cmd_platoon(args: argparse.Namespace) -> int:
    from repro.core.platoon import PlatoonScenario, run_platoon

    result = run_platoon(PlatoonScenario(
        leader_interface=args.interface,
        members=args.members,
        seed=args.seed,
    ))
    for member, delay in zip(result.members, result.member_delays_ms()):
        text = f"{delay:6.1f} ms" if delay is not None else "   -"
        print(f"  member {member.index}: actuated after {text}")
    print(f"whole platoon: {result.platoon_delay_ms:.1f} ms, "
          f"min gap {result.min_gap:.2f} m, "
          f"collisions {result.collisions}")
    return 0 if result.all_stopped and result.collisions == 0 else 1


def cmd_cdf(args: argparse.Namespace) -> int:
    result = _run_engine(args)
    totals = result.total_delays_ms()
    summary = summarize(totals)
    print(f"n={summary.count} mean={summary.mean:.1f} ms "
          f"p50={summary.p50:.1f} p90={summary.p90:.1f} "
          f"max={summary.maximum:.1f}")
    for fit in fit_distributions(totals):
        print(f"  {fit.name:<10} AIC={fit.aic:8.1f} "
              f"KS p={fit.ks_pvalue:.3f}")
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    from repro.faults.catalogue import builtin_plans, plans_by_name
    from repro.faults.envelope import SafetyEnvelope
    from repro.faults.matrix import run_fault_matrix
    from repro.faults.plan import FaultPlan
    from repro.faults.report import render_matrix

    catalogue = plans_by_name()
    if args.list_plans:
        for plan in builtin_plans():
            kinds = ", ".join(f.KIND for f in plan.faults) or "(none)"
            print(f"  {plan.name:<22} {kinds}")
        return 0
    if args.plan:
        plans = []
        for name in args.plan:
            if name not in catalogue:
                raise SystemExit(
                    f"repro-testbed: error: unknown fault plan "
                    f"{name!r}; see --list-plans")
            plans.append(catalogue[name])
    else:
        plans = builtin_plans()
    if args.plan_file:
        import json

        with open(args.plan_file, "r", encoding="utf-8") as handle:
            plans.append(FaultPlan.from_dict(json.load(handle)))
    _check_cache_dir(args.cache_dir)

    def plan_progress(name: str, done: int, total: int) -> None:
        print(f"  [{done}/{total}] plan {name}", file=sys.stderr)

    result = run_fault_matrix(
        _scenario_from(args),
        plans=plans,
        runs=args.runs,
        base_seed=args.seed,
        workers=args.workers,
        cache_dir=args.cache_dir,
        envelope=SafetyEnvelope(safe_stop_margin=args.safe_margin),
        progress=plan_progress,
    )
    print(f"Fault matrix: {len(plans)} plans x {args.runs} seeds "
          f"(base seed {args.seed})")
    print()
    print(render_matrix(result))
    baseline_ok = all(
        row.availability == 1.0
        for row in result.rows if row.plan.is_empty)
    return 0 if baseline_ok else 1


def cmd_report(args: argparse.Namespace) -> int:
    from repro.core.report import ReportConfig, write_report

    _check_cache_dir(args.cache_dir)
    config = ReportConfig(base_seed=args.seed, workers=args.workers,
                          cache_dir=args.cache_dir,
                          observe=args.observe)
    if args.quick:
        config = ReportConfig(
            table2_runs=3, table3_runs=3,
            include_blind_corner=False, include_platoon=False,
            base_seed=args.seed, workers=args.workers,
            cache_dir=args.cache_dir, observe=args.observe)
    markdown = write_report(args.output, config)
    print(markdown)
    print(f"(written to {args.output})")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.obs.bench import (
        default_output_path,
        run_bench,
        write_bench,
    )

    fleet_sizes = ([int(n) for n in args.fleet_sizes.split(",")]
                   if args.fleet_sizes else None)
    payload = run_bench(runs=args.runs, base_seed=args.seed,
                        fleet_sizes=fleet_sizes,
                        progress=_print_progress)
    path = args.output or default_output_path(payload["revision"])
    write_bench(payload, path)
    wall = payload["wall"]
    print(f"bench: {payload['grid']['runs']} runs in "
          f"{wall['total_s']:.2f} s "
          f"({wall['runs_per_sec']:.2f} runs/s, "
          f"{payload['kernel']['events_per_sec']:,.0f} kernel "
          f"events/s)")
    for name, stats in sorted(payload["spans"].items()):
        print(f"  span {name:<28} n={stats['count']:<6} "
              f"mean={stats['mean_s'] * 1000:8.3f} ms")
    for name, stats in sorted(payload["wall_sites"].items()):
        print(f"  wall {name:<28} n={stats['count']:<6} "
              f"mean={stats['mean_s'] * 1000:8.3f} ms")
    for entry in payload.get("fleet", []):
        print(f"  fleet N={entry['n_obus']:<4} "
              f"wall={entry['wall_s']:7.2f} s "
              f"{entry['events_per_sec']:,.0f} kernel events/s "
              f"cbr={entry['cbr_mean']:.3f}")
    print(f"(written to {path})")
    return 0


def _load_bench_artefact(label: str, path: str):
    import json

    from repro.obs.bench import validate_bench

    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as error:
        raise SystemExit(
            f"repro-testbed: error: cannot read --{label} "
            f"{path!r} ({error})") from error
    try:
        validate_bench(payload)
    except ValueError as error:
        raise SystemExit(
            f"repro-testbed: error: --{label} {path!r} is not a "
            f"valid bench artefact ({error})") from error
    return payload


def cmd_bench_gate(args: argparse.Namespace) -> int:
    import glob
    import json

    from repro.obs.benchgate import compare_bench, render_gate

    fresh = _load_bench_artefact("fresh", args.fresh)
    matches = sorted(glob.glob(args.baseline))
    if not matches:
        # A repository that has never committed a BENCH_*.json has
        # nothing to gate against; that is a clean pass, not an
        # error, so fresh clones stay green until a baseline lands.
        revision = str(fresh.get("revision", "unknown"))
        print(f"bench gate: no committed baseline matches "
              f"{args.baseline!r}")
        print(f"verdict: NO-BASELINE  (fresh {revision} accepted "
              f"ungated)")
        if args.json:
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump({"status": "no-baseline",
                           "baseline_pattern": args.baseline,
                           "fresh_revision": revision},
                          handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"wrote {args.json}")
        return 0
    if len(matches) > 1:
        listing = ", ".join(matches)
        raise SystemExit(
            f"repro-testbed: error: --baseline {args.baseline!r} "
            f"matches {len(matches)} artefacts ({listing}); pass "
            f"one explicitly")
    baseline = _load_bench_artefact("baseline", matches[0])
    result = compare_bench(baseline, fresh,
                           warn_ratio=args.warn,
                           fail_ratio=args.fail)
    print(render_gate(result), end="")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(result.to_dict(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 1 if result.failed else 0


def _fleet_progress(run_id: int, total: int, result) -> None:
    print(f"  [{run_id}/{total}] seed {result.seed}: "
          f"{result.denm_delivered}/{result.n_obus} warned, "
          f"verdict {result.verdict}", file=sys.stderr)


def cmd_fleet(args: argparse.Namespace) -> int:
    import json

    from repro.core.fleet import (
        FleetScenario,
        golden_scenario,
        run_fleet_campaign,
        run_fleet_sweep,
    )

    if args.update_golden:
        import os

        from repro.core.fleet import canonical_json

        campaign = run_fleet_campaign(golden_scenario(), runs=1)
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        path = os.path.join(GOLDEN_DIR, "fleet_16obu_seed1.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(canonical_json(campaign.to_dict()) + "\n")
        print(f"wrote {path} (digest {campaign.digest()[:16]})")
        return 0

    scenario = FleetScenario(
        n_obus=args.obus, n_rsus=args.rsus, workload=args.workload,
        duration=args.duration, seed=args.seed,
        tie_break=args.tie_break)
    sizes = ([int(n) for n in args.sweep.split(",")]
             if args.sweep else None)
    if sizes:
        campaigns = run_fleet_sweep(
            sizes, scenario, runs=args.runs, base_seed=args.seed,
            workers=args.workers, progress=_fleet_progress)
    else:
        campaigns = {args.obus: run_fleet_campaign(
            scenario, runs=args.runs, base_seed=args.seed,
            workers=args.workers, progress=_fleet_progress)}

    print(f"Fleet {scenario.workload} campaigns "
          f"({args.runs} seeds from {args.seed}):")
    print(f"  {'N':>4} {'warned':>8} {'latency':>10} "
          f"{'cbr':>6} {'dcc':>5}  digest")
    for n_obus in sorted(campaigns):
        campaign = campaigns[n_obus]
        latency = campaign.mean_latency_ms()
        latency_text = "-" if latency is None else f"{latency:7.1f} ms"
        mean_cbr = (sum(r.mean_cbr for r in campaign.runs)
                    / len(campaign.runs))
        transitions = sum(r.total_dcc_transitions
                          for r in campaign.runs)
        print(f"  {n_obus:>4} "
              f"{campaign.delivered_fraction() * 100:7.1f}% "
              f"{latency_text:>10} {mean_cbr:6.3f} {transitions:>5}"
              f"  {campaign.digest()[:16]}")
    if args.json:
        payload = {str(n): campaigns[n].to_dict()
                   for n in sorted(campaigns)}
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    all_delivered = all(campaigns[n].delivered_fraction() > 0.0
                        for n in sorted(campaigns))
    return 0 if all_delivered else 1


#: Where ``trace --update-golden`` writes, relative to the repo root.
GOLDEN_DIR = "tests/golden"


def build_trace_artifacts(seed: int = 1) -> "tuple":
    """One traced run of *seed*: (trace JSONL text, timeline JSON text).

    Runs the default scenario with the tracer enabled and every
    device's measurement hooks teed into it (per-source categories),
    then renders both artefacts canonically -- sorted keys, exact
    float reprs -- so the same seed always produces the same bytes.
    The golden-trace regression test pins these bytes;
    ``repro-testbed trace --update-golden`` regenerates the fixtures.
    """
    import json

    testbed = ScaleTestbed(EmergencyBrakeScenario(seed=seed), trace=True)
    tracer = testbed.tracer
    assert tracer is not None

    def tee(category):
        def hook(event, record):
            tracer.log(category, event, **record)
        return hook

    testbed.edge.on_event(tee("edge"))
    testbed.rsu.on_event(tee("rsu"))
    testbed.obu.on_event(tee("obu"))
    testbed.vehicle.on_event(tee("vehicle"))
    testbed.handler.on_event(tee("handler"))
    testbed.run()
    trace_text = tracer.to_canonical_jsonl_text()
    timeline_text = json.dumps(testbed.timeline.to_dict(),
                               sort_keys=True, indent=2,
                               default=str) + "\n"
    return trace_text, timeline_text


def cmd_trace(args: argparse.Namespace) -> int:
    import os

    trace_text, timeline_text = build_trace_artifacts(args.seed)
    out_dir = GOLDEN_DIR if args.update_golden else args.out
    os.makedirs(out_dir, exist_ok=True)
    trace_path = os.path.join(out_dir, f"trace_seed{args.seed}.jsonl")
    timeline_path = os.path.join(out_dir,
                                 f"timeline_seed{args.seed}.json")
    with open(trace_path, "w", encoding="utf-8") as handle:
        handle.write(trace_text)
    with open(timeline_path, "w", encoding="utf-8") as handle:
        handle.write(timeline_text)
    print(f"wrote {trace_path} "
          f"({len(trace_text.splitlines())} records)")
    print(f"wrote {timeline_path}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import run as run_lint

    return run_lint(args)


def cmd_tie_audit(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.core.blind_corner import BlindCornerScenario
    from repro.core.tieaudit import run_tie_audit

    scenario = BlindCornerScenario(seed=args.seed)
    report = run_tie_audit(scenario)
    for run in report.runs:
        print(f"{run.policy:<8} digest={run.digest[:16]} "
              f"ties={run.audit.ties} "
              f"pairs={run.audit.distinct_pairs}")
    verdict = "bit-identical" if report.identical else "DIVERGED"
    print(f"verdict: {verdict} across "
          f"{', '.join(run.policy for run in report.runs)}")
    if args.pairs:
        for site_a, site_b, count in report.top_pairs(args.pairs):
            print(f"  {count:6d}x  {site_a}  <->  {site_b}")
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as handle:
            json_module.dump(report.to_dict(), handle, indent=2,
                             sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")
    return 0 if report.identical else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-testbed",
        description="ETSI ITS robotic scale testbed (simulated)")
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="one emergency-braking run")
    _add_scenario_arguments(run_parser)
    run_parser.set_defaults(func=cmd_run)

    campaign_parser = sub.add_parser("campaign",
                                     help="N-run measurement campaign")
    _add_scenario_arguments(campaign_parser)
    _add_engine_arguments(campaign_parser)
    campaign_parser.add_argument("--runs", type=int, default=5)
    campaign_parser.set_defaults(func=cmd_campaign)

    corner_parser = sub.add_parser("blind-corner",
                                   help="intersection use-case")
    corner_parser.add_argument("--seed", type=int, default=1)
    corner_parser.set_defaults(func=cmd_blind_corner)

    platoon_parser = sub.add_parser("platoon",
                                    help="platooning extension")
    platoon_parser.add_argument("--seed", type=int, default=1)
    platoon_parser.add_argument("--members", type=int, default=4)
    platoon_parser.add_argument("--interface",
                                choices=("its_g5", "5g_leader"),
                                default="its_g5")
    platoon_parser.set_defaults(func=cmd_platoon)

    cdf_parser = sub.add_parser("cdf", help="latency CDF + model fit")
    _add_scenario_arguments(cdf_parser)
    _add_engine_arguments(cdf_parser)
    cdf_parser.add_argument("--runs", type=int, default=20)
    cdf_parser.set_defaults(func=cmd_cdf)

    faults_parser = sub.add_parser(
        "faults", help="fault-injection matrix with verdicts")
    _add_scenario_arguments(faults_parser)
    _add_engine_arguments(faults_parser)
    faults_parser.add_argument("--runs", type=int, default=5,
                               help="seeds per fault plan")
    faults_parser.add_argument("--plan", action="append", default=[],
                               metavar="NAME",
                               help="run only this built-in plan "
                                    "(repeatable; default: all)")
    faults_parser.add_argument("--plan-file", default=None,
                               metavar="FILE.json",
                               help="also run a plan loaded from a "
                                    "JSON file")
    faults_parser.add_argument("--list-plans", action="store_true",
                               help="list the built-in fault plans")
    faults_parser.add_argument("--safe-margin", type=float,
                               default=0.53, metavar="METRES",
                               help="SAFE_STOP threshold distance")
    faults_parser.set_defaults(func=cmd_faults)

    report_parser = sub.add_parser(
        "report", help="full paper-vs-measured markdown report")
    report_parser.add_argument("--output", default="report.md",
                               help="where to write the markdown")
    report_parser.add_argument("--seed", type=int, default=1)
    report_parser.add_argument("--quick", action="store_true",
                               help="fewer runs, skip extensions")
    report_parser.add_argument("--observe", action="store_true",
                               help="instrument the Table II campaign "
                                    "and append an observability "
                                    "section (forces serial runs)")
    _add_engine_arguments(report_parser)
    report_parser.set_defaults(func=cmd_report)

    bench_parser = sub.add_parser(
        "bench", help="perf benchmark grid -> BENCH_<rev>.json")
    bench_parser.add_argument("--runs", type=_positive_int, default=5,
                              help="grid size (consecutive seeds)")
    bench_parser.add_argument("--seed", type=int, default=1,
                              help="base random seed of the grid")
    bench_parser.add_argument("--output", default=None, metavar="FILE",
                              help="artefact path (default: "
                                   "BENCH_<rev>.json)")
    bench_parser.add_argument("--fleet-sizes", default=None,
                              metavar="N,N,...",
                              help="also bench fleet scenarios at "
                                   "these OBU counts (e.g. 1,8,32)")
    bench_parser.set_defaults(func=cmd_bench)

    gate_parser = sub.add_parser(
        "bench-gate", help="compare a fresh bench artefact against a "
                           "committed baseline (warn/fail bands)")
    gate_parser.add_argument("--fresh", required=True, metavar="FILE",
                             help="the just-measured BENCH_*.json")
    gate_parser.add_argument("--baseline", default="BENCH_*.json",
                             metavar="FILE",
                             help="the committed reference "
                                  "BENCH_*.json -- a path or glob; "
                                  "no match is a clean no-baseline "
                                  "pass (default: BENCH_*.json)")
    gate_parser.add_argument("--warn", type=float, default=0.25,
                             metavar="RATIO",
                             help="warn when a metric is this "
                                  "fraction worse (default 0.25)")
    gate_parser.add_argument("--fail", type=float, default=3.0,
                             metavar="RATIO",
                             help="fail when a metric is this "
                                  "fraction worse (default 3.0)")
    gate_parser.add_argument("--json", default=None, metavar="FILE",
                             help="write the per-metric verdicts as "
                                  "JSON")
    gate_parser.set_defaults(func=cmd_bench_gate)

    vary_parser = sub.add_parser(
        "vary", help="scenario-space variation engine "
                     "(sample / run / coverage-report)")
    from repro.vary.cli import add_arguments as add_vary_arguments

    add_vary_arguments(vary_parser)

    fleet_parser = sub.add_parser(
        "fleet", help="fleet-scale congestion campaign "
                      "(N OBUs, M RSUs, one channel)")
    fleet_parser.add_argument("--obus", type=_positive_int, default=16,
                              help="fleet size (OBU count)")
    fleet_parser.add_argument("--rsus", type=_positive_int, default=2,
                              help="roadside unit count")
    fleet_parser.add_argument("--workload",
                              choices=("beacon", "convoy",
                                       "blind_corner"),
                              default="beacon",
                              help="what the participant vehicles do")
    fleet_parser.add_argument("--runs", type=_positive_int, default=3,
                              help="seeds per fleet size")
    fleet_parser.add_argument("--seed", type=int, default=1,
                              help="base random seed")
    fleet_parser.add_argument("--duration", type=float, default=8.0,
                              help="simulated seconds per run")
    fleet_parser.add_argument("--tie-break",
                              choices=("fifo", "lifo", "seeded"),
                              default="fifo",
                              help="kernel tie-break policy (results "
                                   "are bit-identical across all "
                                   "three)")
    fleet_parser.add_argument("--workers", type=_workers_count,
                              default=1, metavar="N",
                              help="shard runs over N processes "
                                   "(bit-identical to serial)")
    fleet_parser.add_argument("--sweep", default=None,
                              metavar="N,N,...",
                              help="sweep fleet size over these OBU "
                                   "counts instead of --obus")
    fleet_parser.add_argument("--json", default=None, metavar="FILE",
                              help="write campaign results as JSON")
    fleet_parser.add_argument("--update-golden", action="store_true",
                              help="regenerate the 16-OBU golden "
                                   "fleet fixture and exit")
    fleet_parser.set_defaults(func=cmd_fleet)

    trace_parser = sub.add_parser(
        "trace", help="one traced run -> canonical JSONL + timeline")
    trace_parser.add_argument("--seed", type=int, default=1)
    trace_parser.add_argument("--out", default=".", metavar="DIR",
                              help="output directory")
    trace_parser.add_argument("--update-golden", action="store_true",
                              help=f"write the fixtures under "
                                   f"{GOLDEN_DIR} (golden-trace "
                                   f"regression test)")
    trace_parser.set_defaults(func=cmd_trace)

    lint_parser = sub.add_parser(
        "lint", help="detlint determinism linter (DET001..DET008, "
                     "SCH001..SCH003)")
    from repro.analysis.cli import add_arguments as add_lint_arguments

    add_lint_arguments(lint_parser)
    lint_parser.set_defaults(func=cmd_lint)

    tie_parser = sub.add_parser(
        "tie-audit", help="re-run blind-corner under every tie-break "
                          "policy and demand bit-identical results")
    tie_parser.add_argument("--seed", type=int, default=1)
    tie_parser.add_argument("--pairs", type=int, default=10,
                            metavar="N",
                            help="show the N most frequent tied "
                                 "site pairs (0 to hide)")
    tie_parser.add_argument("--output", default=None, metavar="FILE",
                            help="write the full report as JSON")
    tie_parser.set_defaults(func=cmd_tie_audit)

    queue_parser = sub.add_parser(
        "queue", help="durable work-queue campaigns: enqueue / work "
                      "/ drain / status / fold")
    from repro.core.queue.cli import add_arguments as add_queue_arguments

    add_queue_arguments(queue_parser)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
