"""A minimal ROS-like publish/subscribe middleware.

On the real platform, camera frames, detected lines and steering
commands travel between nodes as ROS topics over localhost.  That
transport is not free: serialisation + scheduling add a small,
jittery latency to each hop, which contributes to the vehicle-side
share of the paper's end-to-end delay.  The model delivers each
published message to every subscriber after an independent latency
draw, preserving per-subscriber FIFO order.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.sim.kernel import Simulator

Callback = Callable[[Any], None]


@dataclasses.dataclass(frozen=True)
class RosConfig:
    """Transport latency parameters."""

    latency_mean: float = 0.4e-3
    latency_std: float = 0.15e-3


class RosTopic:
    """One named topic."""

    def __init__(self, graph: "RosGraph", name: str):
        self.graph = graph
        self.name = name
        self._subscribers: List[Callback] = []
        self._last_delivery: Dict[int, float] = {}
        self.published = 0
        self.delivered = 0

    def subscribe(self, callback: Callback) -> None:
        """Deliver every future message on this topic to *callback*."""
        self._subscribers.append(callback)

    def publish(self, message: Any) -> None:
        """Send *message* to all current subscribers."""
        self.published += 1
        sim = self.graph.sim
        for index, callback in enumerate(self._subscribers):
            latency = self.graph.sample_latency()
            # Preserve FIFO per subscriber: never deliver earlier than
            # the previous message to the same subscriber.
            earliest = self._last_delivery.get(index, 0.0)
            deliver_at = max(sim.now + latency, earliest)
            self._last_delivery[index] = deliver_at
            sim.schedule_at(deliver_at,
                            lambda cb=callback, m=message: self._deliver(
                                cb, m))

    def _deliver(self, callback: Callback, message: Any) -> None:
        self.delivered += 1
        callback(message)


class RosGraph:
    """The node graph: a registry of topics sharing one latency model."""

    def __init__(self, sim: Simulator, rng: Optional[np.random.Generator]
                 = None, config: Optional[RosConfig] = None):
        self.sim = sim
        self.rng = rng or np.random.default_rng(0)
        self.config = config or RosConfig()
        self._topics: Dict[str, RosTopic] = {}

    def topic(self, name: str) -> RosTopic:
        """Fetch (creating on first use) the topic called *name*."""
        if name not in self._topics:
            self._topics[name] = RosTopic(self, name)
        return self._topics[name]

    def sample_latency(self) -> float:
        """One transport latency draw (s), never negative."""
        return max(0.0, float(self.rng.normal(
            self.config.latency_mean, self.config.latency_std)))

    def topics(self) -> List[str]:
        """Names of all topics created so far."""
        return sorted(self._topics)
