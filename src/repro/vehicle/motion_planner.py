"""The Motion Planner.

Decides steering from line estimates via a PID controller (the paper's
"a Proportional-Integral-Derivative (PID) controller is implemented"),
maintains the cruise throttle, and exposes the emergency-stop entry
point that the Message Handler invokes when a DENM arrives.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.kernel import Simulator
from repro.vehicle.control import ControlModule
from repro.vehicle.line_follow import LineEstimate
from repro.vehicle.pid import PidController


class MotionPlanner:
    """Line estimates -> steering commands; DENMs -> emergency stop."""

    def __init__(
        self,
        sim: Simulator,
        control: ControlModule,
        cruise_throttle: float = 0.25,
        pid: Optional[PidController] = None,
        heading_weight: float = 0.45,
        max_steering: float = 0.5,
    ):
        self.sim = sim
        self.control = control
        self.cruise_throttle = cruise_throttle
        # Tuned for the renderer/track geometry: aggressive P with a
        # touch of D keeps the lab-scale car within centimetres.
        self.pid = pid or PidController(
            kp=2.2, ki=0.15, kd=0.25,
            output_limit=max_steering, integral_limit=0.3)
        self.heading_weight = heading_weight
        self.estimates_received = 0
        self.blind_frames = 0
        self.emergency_engaged = False
        self.emergency_reason: Optional[str] = None
        self._last_steering = 0.0

    def start(self) -> None:
        """Begin driving: apply the cruise throttle."""
        self.control.command_throttle(self.cruise_throttle)

    def on_line_estimate(self, estimate: LineEstimate) -> None:
        """Topic callback from the Line Detection node."""
        if self.emergency_engaged:
            return
        self.estimates_received += 1
        if not estimate.line_visible:
            # Keep the last steering command; the line will reappear.
            self.blind_frames += 1
            self.control.command_steering(self._last_steering)
            return
        # Combined tracking error: lateral offset plus weighted heading
        # (both push the same steering direction).
        error = (estimate.lateral_offset
                 + self.heading_weight * estimate.heading_error)
        steering = self.pid.update(error, self.sim.now)
        self._last_steering = steering
        self.control.command_steering(steering)

    def emergency_stop(self, reason: str = "denm") -> None:
        """Engage the emergency braking procedure (idempotent)."""
        if self.emergency_engaged:
            return
        self.emergency_engaged = True
        self.emergency_reason = reason
        self.control.emergency_stop(reason)

    def resume(self) -> None:
        """Release a stop and drive on (e.g. the light turned green)."""
        if not self.emergency_engaged:
            return
        self.emergency_engaged = False
        self.emergency_reason = None
        self.pid.reset()
        self.control.release()
        self.control.command_throttle(self.cruise_throttle)
