"""The Message Handler: the Python script polling the OBU.

Paper, Section III-D2: "a Python script running at the Jetson TX2 is
constantly communicating with the OpenC2X's HTTP API hosted at the
OBU, through POST requests sent to ``/request_denm``.  If no DENM is
found, it only returns an HTTP 200 success status code.  If a DENM was
received by the OBU ... power to the wheels is interrupted by the
control logic at the Jetson, stopping the car."

The handler issues one poll, waits for the response, sleeps
``poll_interval`` and repeats.  The poll interval directly bounds the
step-4 -> step-5 latency (ablation A2 sweeps it).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.openc2x.http import HttpClient, HttpResponse, HttpServer
from repro.sim.kernel import Simulator
from repro.sim.process import Process, Timeout
from repro.vehicle.motion_planner import MotionPlanner

EventHook = Callable[[str, Dict[str, Any]], None]


class MessageHandler:
    """Polls the OBU's ``/request_denm`` endpoint and triggers stops."""

    def __init__(
        self,
        sim: Simulator,
        obu_server: HttpServer,
        planner: MotionPlanner,
        rng: Optional[np.random.Generator] = None,
        poll_interval: float = 0.02,
        stop_on_denm: bool = True,
        resume_on_termination: bool = False,
        enabled: bool = True,
    ):
        self.sim = sim
        self.obu_server = obu_server
        self.planner = planner
        self.poll_interval = poll_interval
        self.stop_on_denm = stop_on_denm
        self.resume_on_termination = resume_on_termination
        self.client = HttpClient(sim, rng or np.random.default_rng(0),
                                 name="message-handler")
        self._hooks: List[EventHook] = []
        self.polls = 0
        self.timeouts = 0
        self.retries = 0
        self.denms_handled = 0
        self.last_denm: Optional[Dict[str, Any]] = None
        self._running = False
        if enabled:
            self.start()

    def start(self) -> None:
        """Start the polling loop (idempotent)."""
        if self._running:
            return
        self._running = True
        Process(self.sim, self._poll_loop(), name="message-handler")

    def stop(self) -> None:
        """Stop polling after the in-flight request completes."""
        self._running = False

    def on_event(self, hook: EventHook) -> None:
        """Register a measurement hook (``denm_handled`` events)."""
        self._hooks.append(hook)

    def _emit(self, event: str, **fields: Any) -> None:
        record = {"sim_time": self.sim.now}
        record.update(fields)
        for hook in self._hooks:
            hook(event, record)

    #: Give up on a poll after this long (lost request/response).
    REQUEST_TIMEOUT = 0.5
    #: First retry delay after a timed-out poll (s); doubles per
    #: consecutive timeout up to RETRY_BACKOFF_CAP.
    RETRY_BACKOFF_INITIAL = 5e-3
    RETRY_BACKOFF_CAP = 0.2

    def _poll_loop(self):
        consecutive_timeouts = 0
        while self._running:
            self.polls += 1
            poll_started = self.sim.now
            response: HttpResponse = yield self.client.post(
                self.obu_server, "/request_denm",
                timeout=self.REQUEST_TIMEOUT)
            obs = self.sim.obs
            if obs is not None:
                obs.count("obu.polls", device="message-handler")
                obs.record_span("obu.poll", poll_started, self.sim.now,
                                device="message-handler")
                obs.observe("obu.poll_rtt_ms",
                            (self.sim.now - poll_started) * 1000.0)
            if response.status == self.client.TIMEOUT_STATUS:
                # The OBU (or the hop to it) is unresponsive: retry
                # with capped exponential backoff rather than waiting
                # out the regular poll tick -- a recovered OBU is
                # re-polled quickly, a dead one is not hammered.
                self.timeouts += 1
                if obs is not None:
                    obs.count("obu.poll_timeouts", device="message-handler")
                consecutive_timeouts += 1
                backoff = min(
                    self.RETRY_BACKOFF_CAP,
                    self.RETRY_BACKOFF_INITIAL
                    * 2 ** (consecutive_timeouts - 1))
                self.retries += 1
                self._emit("poll_retry", attempt=consecutive_timeouts,
                           backoff=backoff)
                yield Timeout(backoff)
                continue
            consecutive_timeouts = 0
            if response.ok and "denm" in response.body:
                self._handle_denm(response.body["denm"])
            yield Timeout(self.poll_interval)

    def _handle_denm(self, denm_json: Dict[str, Any]) -> None:
        self.denms_handled += 1
        obs = self.sim.obs
        if obs is not None:
            obs.count("obu.denms_handled", device="message-handler")
        self.last_denm = denm_json
        self._emit("denm_handled", denm=denm_json)
        if denm_json.get("termination") is not None:
            # All-clear: resume driving if configured to.
            if self.resume_on_termination and hasattr(self.planner,
                                                      "resume"):
                self.planner.resume()
            return
        if not self.stop_on_denm:
            return
        self.planner.emergency_stop(reason="denm")
