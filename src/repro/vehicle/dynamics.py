"""Vehicle dynamics: kinematic bicycle + longitudinal powertrain.

The Traxxas-based 1/10-scale platform is modelled as a kinematic
bicycle (adequate at the sub-2 m/s speeds of the experiments) with a
longitudinal force balance::

    m dv/dt = F_motor(throttle, v) - F_drag(v) - F_roll - F_brake

Three longitudinal modes map to what the ESC does:

* ``drive``: PWM throttle commands motor force towards a set speed;
* ``coast``: power cut, only drag + rolling resistance decelerate;
* ``brake``: ESC braking (the emergency-stop path), a strong
  deceleration bounded by tyre friction.

The paper's emergency procedure "interrupts power to the wheels"; on
these ESCs the neutral-throttle state engages the drag brake, so the
stop command switches the model to ``brake``.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional, Tuple

import numpy as np

from repro.sim.kernel import Simulator


@dataclasses.dataclass(frozen=True)
class VehicleParams:
    """Physical parameters of the 1/10-scale vehicle."""

    #: Vehicle mass (kg); Traxxas + Jetson + sensors.
    mass: float = 3.5
    #: Wheelbase (m).
    wheelbase: float = 0.33
    #: Overall vehicle length (m); the paper reports ~0.53 m.
    length: float = 0.53
    #: Maximum steering angle (rad).
    max_steering: float = math.radians(28.0)
    #: Steering servo rate limit (rad/s).
    steering_rate: float = math.radians(240.0)
    #: Peak motor force (N) the ESC will apply.
    max_motor_force: float = 12.0
    #: Full-throttle speed (m/s); scaled down for the lab (the
    #: platform can reach ~16 m/s, the experiments run below 2 m/s).
    max_speed: float = 8.0
    #: ESC speed-loop gain (1/s): drive force tracks the throttle's
    #: target speed like a first-order response.
    speed_gain: float = 2.0
    #: Aerodynamic drag coefficient (N s^2/m^2); negligible at lab speed.
    drag_coefficient: float = 0.05
    #: Rolling resistance force (N).
    rolling_resistance: float = 0.35
    #: ESC braking deceleration limit (m/s^2); rubber on lab floor.
    brake_deceleration: float = 4.5
    #: Tyre-floor friction coefficient (caps any deceleration).
    friction_mu: float = 0.9

    @property
    def max_braking(self) -> float:
        """Friction-limited deceleration (m/s^2)."""
        return min(self.brake_deceleration, self.friction_mu * 9.81)


@dataclasses.dataclass
class VehicleState:
    """Pose and speed in the lab frame."""

    x: float = 0.0
    y: float = 0.0
    heading: float = 0.0     # rad, counter-clockwise from +x
    speed: float = 0.0       # m/s
    steering: float = 0.0    # rad, current wheel angle

    def position(self) -> Tuple[float, float]:
        """(x, y) in metres."""
        return (self.x, self.y)


class VehicleDynamics:
    """Integrates the vehicle state on the simulation clock.

    A fixed-step integrator tick runs every ``dt`` simulated seconds;
    commands (throttle / steering / mode) take effect at the next tick,
    which adds the sub-tick actuation granularity real ESCs have (PWM
    period ~ 10 ms, modelled separately in the actuation path).

    **Same-time ordering.** Observers (watchdogs, sensors, planners)
    often tick on grids that alias the integration grid, so their
    events share exact timestamps with ``_tick``.  Which ran first
    used to depend on the kernel's tie-break order.  Reads now pull:
    :attr:`state` first folds in any integration step due at the
    current sim time, so a same-timestamp reader sees the post-step
    state no matter how the kernel ordered the tie.  The scheduled
    tick then detects the step has already been taken and only
    re-arms.  Event order at a shared timestamp therefore cannot leak
    into results (the ``tie-audit`` workflow verifies this).
    """

    def __init__(
        self,
        sim: Simulator,
        params: Optional[VehicleParams] = None,
        state: Optional[VehicleState] = None,
        dt: float = 2e-3,
        process_noise_std: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        self.sim = sim
        self.params = params or VehicleParams()
        self._state = state or VehicleState()
        self.dt = dt
        self.process_noise_std = process_noise_std
        self.rng = rng or np.random.default_rng(0)
        self.mode = "coast"               # drive | coast | brake
        self.throttle = 0.0               # 0..1
        self.steering_command = 0.0       # rad
        self.odometer = 0.0
        self._last_tick: Optional[float] = None
        self._due = sim.now + dt
        sim.schedule(self.dt, self._tick)

    @property
    def state(self) -> VehicleState:
        """Pose and speed, current as of ``sim.now``.

        Reading forces any integration step due at the current sim
        time, so same-timestamp observers see identical state
        regardless of event order (see the class docstring).
        """
        self._catch_up()
        return self._state

    # ------------------------------------------------------------------
    # Commands (called by the actuation path)
    # ------------------------------------------------------------------

    def set_throttle(self, throttle: float) -> None:
        """Drive with PWM duty *throttle* in [0, 1].

        Takes effect from the current sim time onward: any integration
        step due *now* is folded in first, so a command can never
        retroactively alter the interval that ends at its arrival
        (PWM edges land exactly on integration-tick timestamps, so
        this tie is routine -- see the class docstring).
        """
        self._catch_up()
        self.throttle = float(np.clip(throttle, 0.0, 1.0))
        self.mode = "drive"

    def set_steering(self, angle: float) -> None:
        """Command the steering servo to *angle* radians (from now on)."""
        self._catch_up()
        limit = self.params.max_steering
        self.steering_command = float(np.clip(angle, -limit, limit))

    def cut_power(self, brake: bool = True) -> None:
        """Emergency stop: cut motor power (ESC drag-brake engages)."""
        self._catch_up()
        self.throttle = 0.0
        self.mode = "brake" if brake else "coast"

    # ------------------------------------------------------------------
    # Integration
    # ------------------------------------------------------------------

    def _tick(self) -> None:
        self._catch_up()
        self.sim.schedule(
            # detlint: ignore[SCH001] -- benign: every reader pulls
            # through _catch_up, so same-time tick order is immaterial
            self.dt, self._tick)

    def _catch_up(self) -> None:
        """Fold in the integration step due now, if not yet taken.

        Idempotent at a given sim time: whoever touches the state
        first at a tick's timestamp (the scheduled tick itself or a
        same-timestamp reader) performs the step; everyone later sees
        it already taken.  ``_due`` mirrors the pending tick's
        timestamp exactly (both are computed as ``sim.now + dt`` at
        the previous step, so the floats match bit for bit).
        """
        if self.sim.now >= self._due:
            self._due = self.sim.now + self.dt
            self._integrate(self.dt)

    def _integrate(self, dt: float) -> None:
        p = self.params
        s = self._state
        # Steering servo slews towards the command.
        max_delta = p.steering_rate * dt
        error = self.steering_command - s.steering
        s.steering += float(np.clip(error, -max_delta, max_delta))
        # Longitudinal forces.
        if self.mode == "drive":
            # RC ESCs behave like a speed loop: throttle selects a
            # target speed, force pushes towards it (never negative --
            # backing off the throttle freewheels rather than brakes).
            target = self.throttle * p.max_speed
            force = float(np.clip(
                p.mass * p.speed_gain * (target - s.speed),
                0.0, p.max_motor_force))
        else:
            force = 0.0
        resistance = (p.drag_coefficient * s.speed * s.speed
                      + (p.rolling_resistance if s.speed > 0 else 0.0))
        acceleration = (force - resistance) / p.mass
        if self.mode == "brake" and s.speed > 0:
            acceleration -= p.max_braking
        if self.process_noise_std > 0:
            acceleration += float(self.rng.normal(
                0.0, self.process_noise_std))
        new_speed = max(0.0, s.speed + acceleration * dt)
        # Kinematic bicycle pose update at the average speed.
        mean_speed = 0.5 * (s.speed + new_speed)
        s.x += mean_speed * math.cos(s.heading) * dt
        s.y += mean_speed * math.sin(s.heading) * dt
        if abs(s.steering) > 1e-9:
            s.heading += (mean_speed / p.wheelbase) * math.tan(s.steering) \
                * dt
            s.heading = (s.heading + math.pi) % (2 * math.pi) - math.pi
        self.odometer += mean_speed * dt
        s.speed = new_speed

    # ------------------------------------------------------------------
    # Read-outs
    # ------------------------------------------------------------------

    @property
    def is_stopped(self) -> bool:
        """Whether the vehicle has come to a halt."""
        return self.state.speed <= 1e-3

    def yaw_rate(self) -> float:
        """Current yaw rate (rad/s) from the bicycle model."""
        if abs(self.state.steering) < 1e-9:
            return 0.0
        return (self.state.speed / self.params.wheelbase
                * math.tan(self.state.steering))

    def stopping_distance(self, speed: Optional[float] = None) -> float:
        """Ideal braking distance from *speed* (defaults to current)."""
        v = self.state.speed if speed is None else speed
        return v * v / (2.0 * self.params.max_braking)
