"""A PID controller with anti-windup, used for steering."""

from __future__ import annotations

import dataclasses
from typing import Optional


@dataclasses.dataclass
class PidController:
    """Discrete PID with clamped integral term.

    Call :meth:`update` with the current error and timestamp; gains
    act on error (P), its integral (I) and its derivative (D).
    """

    kp: float
    ki: float = 0.0
    kd: float = 0.0
    output_limit: Optional[float] = None
    integral_limit: Optional[float] = None

    _integral: float = dataclasses.field(default=0.0, init=False)
    _last_error: Optional[float] = dataclasses.field(default=None, init=False)
    _last_time: Optional[float] = dataclasses.field(default=None, init=False)

    def update(self, error: float, now: float) -> float:
        """One controller step; returns the control output."""
        dt = 0.0
        if self._last_time is not None:
            dt = now - self._last_time
            if dt < 0:
                raise ValueError(
                    f"time went backwards: {self._last_time} -> {now}")
        derivative = 0.0
        if dt > 0:
            self._integral += error * dt
            if self.integral_limit is not None:
                self._integral = _clamp(self._integral,
                                        self.integral_limit)
            if self._last_error is not None:
                derivative = (error - self._last_error) / dt
        self._last_error = error
        self._last_time = now
        output = (self.kp * error + self.ki * self._integral
                  + self.kd * derivative)
        if self.output_limit is not None:
            output = _clamp(output, self.output_limit)
        return output

    def reset(self) -> None:
        """Clear the integral and derivative history."""
        self._integral = 0.0
        self._last_error = None
        self._last_time = None

    @property
    def integral(self) -> float:
        """The accumulated integral term (for inspection/tests)."""
        return self._integral


def _clamp(value: float, limit: float) -> float:
    return max(-limit, min(limit, value))
