"""The 1/10-scale robotic vehicle (CopaDrive / F1Tenth heritage).

Subsystems mirror Figure 5 of the paper:

* :mod:`repro.vehicle.dynamics` -- Traxxas chassis: kinematic bicycle
  steering + longitudinal powertrain/braking model;
* :mod:`repro.vehicle.track` -- the guide line on the floor;
* :mod:`repro.vehicle.ros` -- a minimal ROS-like pub/sub middleware
  (the Jetson TX2 side);
* :mod:`repro.vehicle.sensors` -- ZED camera, LiDAR and IMU models;
* :mod:`repro.vehicle.pid` -- the steering PID controller;
* :mod:`repro.vehicle.line_follow` -- Canny + Hough line detection
  node (Figure 6's pipeline);
* :mod:`repro.vehicle.motion_planner` -- steering decisions + the
  emergency-stop entry point;
* :mod:`repro.vehicle.control` -- the Control module and the
  Teensy/USART/ESC actuation path;
* :mod:`repro.vehicle.message_handler` -- the Python script polling
  the OBU's ``/request_denm`` endpoint;
* :mod:`repro.vehicle.robot` -- the assembled vehicle.
"""

from repro.vehicle.dynamics import VehicleDynamics, VehicleParams, VehicleState
from repro.vehicle.track import CircularTrack, StraightTrack, Track
from repro.vehicle.ros import RosGraph, RosTopic
from repro.vehicle.pid import PidController
from repro.vehicle.sensors import Imu, Lidar, ZedCamera
from repro.vehicle.line_follow import LineDetectionNode, LineEstimate
from repro.vehicle.motion_planner import MotionPlanner
from repro.vehicle.control import ActuationPath, ControlModule
from repro.vehicle.message_handler import MessageHandler
from repro.vehicle.robot import RoboticVehicle

__all__ = [
    "ActuationPath",
    "CircularTrack",
    "ControlModule",
    "Imu",
    "Lidar",
    "LineDetectionNode",
    "LineEstimate",
    "MessageHandler",
    "MotionPlanner",
    "PidController",
    "RoboticVehicle",
    "RosGraph",
    "RosTopic",
    "StraightTrack",
    "Track",
    "VehicleDynamics",
    "VehicleParams",
    "VehicleState",
    "ZedCamera",
]
