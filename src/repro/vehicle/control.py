"""The Control module and the Teensy/USART/ESC actuation path.

Commands from the Motion Planner reach the wheels through: Control
module -> USART to the Teensy MCU -> PWM to ESC / steering servo.
:class:`ActuationPath` charges that chain's latency (USART transfer +
MCU loop + PWM edge alignment) before the command takes effect on the
dynamics.  :class:`ControlModule` is the ROS-side endpoint: it applies
steering/throttle and implements the emergency stop, emitting the
paper's step-5 timestamp ("the vehicle ECU registers the time at
which a command is sent to the physical actuators").
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.sim.clock import DeviceClock
from repro.sim.kernel import Simulator
from repro.vehicle.dynamics import VehicleDynamics

EventHook = Callable[[str, Dict[str, Any]], None]


@dataclasses.dataclass(frozen=True)
class ActuationConfig:
    """Latency components of the command path."""

    #: USART transfer + Teensy loop latency mean (s).
    usart_mean: float = 1.5e-3
    usart_std: float = 0.5e-3
    #: ESC PWM refresh period (s); commands align to the next edge.
    pwm_period: float = 10e-3


class ActuationPath:
    """Delivers commands to the dynamics after the hardware latency."""

    def __init__(self, sim: Simulator, dynamics: VehicleDynamics,
                 rng: Optional[np.random.Generator] = None,
                 config: Optional[ActuationConfig] = None):
        self.sim = sim
        self.dynamics = dynamics
        self.rng = rng or np.random.default_rng(0)
        self.config = config or ActuationConfig()
        self._next_pwm_edge = 0.0
        self.commands_delivered = 0
        #: Fault-injection seam: a blocked path (wedged MCU / dead
        #: USART) silently loses every command issued while blocked.
        self.blocked = False
        self.commands_dropped = 0

    def _latency(self) -> float:
        usart = max(0.0, float(self.rng.normal(
            self.config.usart_mean, self.config.usart_std)))
        arrival = self.sim.now + usart
        # Align to the next PWM refresh edge.
        period = self.config.pwm_period
        edges_passed = int(arrival // period) + 1
        pwm_edge = edges_passed * period
        return pwm_edge - self.sim.now

    def apply(self, command: Callable[[VehicleDynamics], None]) -> float:
        """Run *command* on the dynamics after the path latency.

        Returns the latency charged (s).
        """
        if self.blocked:
            self.commands_dropped += 1
            obs = self.sim.obs
            if obs is not None:
                obs.count("vehicle.commands_dropped")
            return 0.0
        latency = self._latency()

        def deliver() -> None:
            self.commands_delivered += 1
            obs = self.sim.obs
            if obs is not None:
                obs.count("vehicle.commands_delivered")
            command(self.dynamics)

        self.sim.schedule(latency, deliver)
        return latency


class ControlModule:
    """The vehicle-side endpoint for steering/throttle/stop commands."""

    def __init__(self, sim: Simulator, actuation: ActuationPath,
                 clock: DeviceClock):
        self.sim = sim
        self.actuation = actuation
        self.clock = clock
        self._hooks: List[EventHook] = []
        self.stopped = False
        self.steering_commands = 0
        self.throttle_commands = 0
        self.stop_commanded_at: Optional[float] = None

    def on_event(self, hook: EventHook) -> None:
        """Register a measurement hook (step-5 timestamps)."""
        self._hooks.append(hook)

    def _emit(self, event: str, **fields: Any) -> None:
        record = {"clock_time": self.clock.now(), "sim_time": self.sim.now}
        record.update(fields)
        for hook in self._hooks:
            hook(event, record)

    def command_steering(self, angle: float) -> None:
        """Forward a steering angle to the servo (ignored once stopped)."""
        if self.stopped:
            return
        self.steering_commands += 1
        self.actuation.apply(lambda dyn: dyn.set_steering(angle))

    def command_throttle(self, throttle: float) -> None:
        """Forward a throttle duty to the ESC (ignored once stopped)."""
        if self.stopped:
            return
        self.throttle_commands += 1
        self.actuation.apply(lambda dyn: dyn.set_throttle(throttle))

    def emergency_stop(self, reason: str = "denm") -> None:
        """Cut power to the wheels (the paper's stop procedure).

        Idempotent: only the first call acts and timestamps step 5.
        """
        if self.stopped:
            return
        self.stopped = True
        self.stop_commanded_at = self.sim.now
        obs = self.sim.obs
        if obs is not None:
            obs.count("vehicle.emergency_stops", reason=reason)
        self._emit("actuators_commanded", reason=reason)
        self.actuation.apply(lambda dyn: dyn.cut_power(brake=True))

    def release(self) -> None:
        """Clear the stop latch (e.g. a red light turned green)."""
        self.stopped = False
        self.stop_commanded_at = None
