"""The assembled robotic vehicle.

Wires the full in-vehicle chain of Figure 5/6: ZED camera -> ROS topic
-> Line Detection -> Motion Planner -> Control -> Teensy/ESC ->
dynamics, plus the Jetson's NTP-disciplined clock and the halt
watcher that produces the paper's step-6 observation (the vehicle has
come to a complete stop).
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.sim.clock import DeviceClock, NtpModel
from repro.sim.kernel import Simulator
from repro.sim.randomness import RandomStreams
from repro.vehicle.control import ActuationConfig, ActuationPath, ControlModule
from repro.vehicle.dynamics import VehicleDynamics, VehicleParams, VehicleState
from repro.vehicle.line_follow import LineDetectionNode
from repro.vehicle.motion_planner import MotionPlanner
from repro.vehicle.ros import RosConfig, RosGraph
from repro.vehicle.sensors import ZedCamera
from repro.vehicle.track import StraightTrack, Track
from repro.vision.image import LineViewConfig

EventHook = Callable[[str, Dict[str, Any]], None]


class RoboticVehicle:
    """One 1/10-scale autonomous vehicle following a line."""

    #: Period of the halt watcher once the emergency stop engaged (s).
    HALT_CHECK_PERIOD = 5e-3

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams,
        name: str = "vehicle",
        track: Optional[Track] = None,
        params: Optional[VehicleParams] = None,
        initial_state: Optional[VehicleState] = None,
        camera_fps: float = 15.0,
        cruise_throttle: float = 0.19,
        ntp: Optional[NtpModel] = None,
        view: Optional[LineViewConfig] = None,
        actuation_config: Optional[ActuationConfig] = None,
        ros_config: Optional[RosConfig] = None,
        inference_latency: float = 0.015,
        autostart: bool = True,
    ):
        self.sim = sim
        self.name = name
        self.track = track or StraightTrack()
        scoped = streams.spawn(f"vehicle.{name}")
        self.clock = DeviceClock(
            sim, scoped.get("clock"), ntp or NtpModel.lan_default(),
            name=f"{name}.clock")
        self.dynamics = VehicleDynamics(
            sim, params=params, state=initial_state,
            rng=scoped.get("dynamics"))
        self.ros = RosGraph(sim, scoped.get("ros"), ros_config)
        view = view or LineViewConfig()
        frames_topic = self.ros.topic("camera/frames")
        estimates_topic = self.ros.topic("line/estimates")
        self.camera = ZedCamera(
            sim, self.dynamics, self.track,
            publish=frames_topic.publish,
            fps=camera_fps, view=view, rng=scoped.get("camera"))
        self.detector = LineDetectionNode(
            sim, publish=estimates_topic.publish, view=view,
            inference_latency=inference_latency,
            rng=scoped.get("detector"))
        frames_topic.subscribe(self.detector.on_frame)
        self.actuation = ActuationPath(
            sim, self.dynamics, rng=scoped.get("actuation"),
            config=actuation_config)
        self.control = ControlModule(sim, self.actuation, self.clock)
        self.planner = MotionPlanner(
            sim, self.control, cruise_throttle=cruise_throttle)
        estimates_topic.subscribe(self.planner.on_line_estimate)
        self._hooks: List[EventHook] = []
        self.halted_at: Optional[float] = None
        self.halt_position: Optional[Tuple[float, float]] = None
        self.control.on_event(self._relay)
        self._halt_watch_armed = False
        if autostart:
            sim.schedule(0.0, self.planner.start)

    # ------------------------------------------------------------------
    # Measurement hooks
    # ------------------------------------------------------------------

    def on_event(self, hook: EventHook) -> None:
        """Register a hook for vehicle events (steps 5 and 6)."""
        self._hooks.append(hook)

    def _emit(self, event: str, record: Dict[str, Any]) -> None:
        enriched = {"vehicle": self.name}
        enriched.update(record)
        for hook in self._hooks:
            hook(event, enriched)

    def _relay(self, event: str, record: Dict[str, Any]) -> None:
        self._emit(event, record)
        if event == "actuators_commanded" and not self._halt_watch_armed:
            self._halt_watch_armed = True
            self.sim.schedule(self.HALT_CHECK_PERIOD, self._check_halt)

    def _check_halt(self) -> None:
        if self.dynamics.is_stopped:
            self.halted_at = self.sim.now
            self.halt_position = self.dynamics.state.position()
            self._emit("vehicle_halted", {
                "clock_time": self.clock.now(),
                "sim_time": self.sim.now,
                "x": self.dynamics.state.x,
                "y": self.dynamics.state.y,
            })
            return
        self.sim.schedule(self.HALT_CHECK_PERIOD, self._check_halt)

    # ------------------------------------------------------------------
    # Convenience read-outs
    # ------------------------------------------------------------------

    @property
    def position(self) -> Tuple[float, float]:
        """Current (x, y) in metres."""
        return self.dynamics.state.position()

    @property
    def speed(self) -> float:
        """Current speed (m/s)."""
        return self.dynamics.state.speed

    @property
    def heading_degrees(self) -> float:
        """Heading converted to degrees clockwise from north (the ITS
        convention), from the lab frame's counter-clockwise-from-east."""
        return (90.0 - math.degrees(self.dynamics.state.heading)) % 360.0

    def emergency_stop(self, reason: str = "manual") -> None:
        """Engage the emergency stop directly (bypassing the handler)."""
        self.planner.emergency_stop(reason)
