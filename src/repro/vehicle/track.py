"""The guide line on the laboratory floor.

A track answers one question for the sensors: given the vehicle pose,
what are the *true* lateral offset and heading error relative to the
painted line?  The camera renderer turns those into pixels, closing
the loop: dynamics -> track geometry -> rendered frame -> detected
line -> steering.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Tuple


class Track:
    """Base class for guide-line geometries."""

    def lateral_offset(self, x: float, y: float) -> float:
        """Signed distance (m) from the line; positive = left of the
        line when facing along it."""
        raise NotImplementedError

    def heading_error(self, x: float, y: float, heading: float) -> float:
        """Vehicle heading minus local line heading, wrapped (rad)."""
        raise NotImplementedError

    def line_heading(self, x: float, y: float) -> float:
        """The line's direction (rad) nearest to (x, y)."""
        raise NotImplementedError

    def progress(self, x: float, y: float) -> float:
        """Arc-length style progress coordinate along the line (m)."""
        raise NotImplementedError


@dataclasses.dataclass(frozen=True)
class StraightTrack(Track):
    """A straight line through ``(x0, y0)`` with the given direction."""

    x0: float = 0.0
    y0: float = 0.0
    direction: float = 0.0  # rad, +x by default

    def lateral_offset(self, x: float, y: float) -> float:
        dx = x - self.x0
        dy = y - self.y0
        # Left-of-line positive: cross product of direction with offset.
        return (-math.sin(self.direction) * dx
                + math.cos(self.direction) * dy)

    def heading_error(self, x: float, y: float, heading: float) -> float:
        return _wrap(heading - self.direction)

    def line_heading(self, x: float, y: float) -> float:
        return self.direction

    def progress(self, x: float, y: float) -> float:
        dx = x - self.x0
        dy = y - self.y0
        return (math.cos(self.direction) * dx
                + math.sin(self.direction) * dy)


@dataclasses.dataclass(frozen=True)
class CircularTrack(Track):
    """A circular closed circuit of the given radius (counter-clockwise)."""

    centre_x: float = 0.0
    centre_y: float = 0.0
    radius: float = 3.0

    def _polar(self, x: float, y: float) -> Tuple[float, float]:
        dx = x - self.centre_x
        dy = y - self.centre_y
        return math.hypot(dx, dy), math.atan2(dy, dx)

    def lateral_offset(self, x: float, y: float) -> float:
        r, _phi = self._polar(x, y)
        # Inside the circle = left of a counter-clockwise line.
        return self.radius - r

    def line_heading(self, x: float, y: float) -> float:
        _r, phi = self._polar(x, y)
        return _wrap(phi + math.pi / 2.0)

    def heading_error(self, x: float, y: float, heading: float) -> float:
        return _wrap(heading - self.line_heading(x, y))

    def progress(self, x: float, y: float) -> float:
        _r, phi = self._polar(x, y)
        return (phi % (2 * math.pi)) * self.radius


def _wrap(angle: float) -> float:
    """Wrap to (-pi, pi]."""
    wrapped = (angle + math.pi) % (2.0 * math.pi) - math.pi
    return math.pi if wrapped == -math.pi else wrapped
