"""The Line Detection node (paper Figure 6).

Consumes camera frames, runs Canny edge detection and the
probabilistic Hough transform, and converts the detected segments
back into a lateral offset + heading error estimate for the Motion
Planner.  The geometric inversion mirrors the renderer's forward
mapping, so with a clean frame the estimate converges to the true
offset (validated by tests).

Processing takes real time on the Jetson; the node models that as an
``inference_latency`` between frame arrival and estimate publication,
and drops frames that arrive while busy (the real pipeline is
frame-rate bound the same way).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Optional

import numpy as np

from repro.sim.kernel import Simulator
from repro.vehicle.sensors import CameraFrame
from repro.vision.canny import canny
from repro.vision.hough import LineSegment, probabilistic_hough
from repro.vision.image import LineViewConfig


@dataclasses.dataclass(frozen=True)
class LineEstimate:
    """What the detector tells the Motion Planner."""

    lateral_offset: float      # m, vehicle right of line = positive
    heading_error: float       # rad, vehicle pointing right = positive
    segments: int              # how many Hough segments supported it
    captured_at: float         # frame timestamp
    published_at: float        # when the estimate left the node
    line_visible: bool = True


class LineDetectionNode:
    """Camera frames -> line estimates."""

    def __init__(
        self,
        sim: Simulator,
        publish: Callable[[LineEstimate], None],
        view: Optional[LineViewConfig] = None,
        inference_latency: float = 0.015,
        canny_low: float = 0.15,
        canny_high: float = 0.3,
        hough_threshold: int = 8,
        min_line_length: int = 15,
        max_line_gap: int = 3,
        rng: Optional[np.random.Generator] = None,
    ):
        self.sim = sim
        self.publish = publish
        self.view = view or LineViewConfig()
        self.inference_latency = inference_latency
        self.canny_low = canny_low
        self.canny_high = canny_high
        self.hough_threshold = hough_threshold
        self.min_line_length = min_line_length
        self.max_line_gap = max_line_gap
        self.rng = rng or np.random.default_rng(0)
        self._busy = False
        self.frames_processed = 0
        self.frames_dropped = 0
        self.no_line_frames = 0

    def on_frame(self, frame: CameraFrame) -> None:
        """Topic callback: process *frame* unless the node is busy."""
        if self._busy:
            self.frames_dropped += 1
            return
        self._busy = True
        estimate = self._process(frame)
        self.sim.schedule(self.inference_latency,
                          lambda: self._publish(estimate))

    def _publish(self, estimate: LineEstimate) -> None:
        self._busy = False
        self.publish(dataclasses.replace(estimate,
                                         published_at=self.sim.now))

    def _process(self, frame: CameraFrame) -> LineEstimate:
        self.frames_processed += 1
        obs = self.sim.obs
        if obs is not None:
            with obs.profile("vision.canny"):
                edges = canny(frame.image, self.canny_low, self.canny_high)
        else:
            edges = canny(frame.image, self.canny_low, self.canny_high)
        # Region filter: "applying a region filter to only receive the
        # center of the image" -- blank the lateral margins.
        margin = self.view.width // 8
        edges[:, :margin] = False
        edges[:, -margin:] = False
        if obs is not None:
            with obs.profile("vision.hough"):
                segments = probabilistic_hough(
                    edges,
                    threshold=self.hough_threshold,
                    min_line_length=self.min_line_length,
                    max_line_gap=self.max_line_gap,
                    rng=self.rng,
                )
        else:
            segments = probabilistic_hough(
                edges,
                threshold=self.hough_threshold,
                min_line_length=self.min_line_length,
                max_line_gap=self.max_line_gap,
                rng=self.rng,
            )
        # Keep roughly vertical segments (the line's two borders).
        vertical = [s for s in segments
                    if abs(abs(s.angle) - math.pi / 2.0) < math.radians(40)]
        if not vertical:
            self.no_line_frames += 1
            return LineEstimate(
                lateral_offset=0.0, heading_error=0.0, segments=0,
                captured_at=frame.captured_at, published_at=self.sim.now,
                line_visible=False)
        offset, heading = self._invert_geometry(vertical)
        return LineEstimate(
            lateral_offset=offset, heading_error=heading,
            segments=len(vertical), captured_at=frame.captured_at,
            published_at=self.sim.now)

    def _invert_geometry(self, segments) -> tuple:
        """Undo the renderer's mapping: pixels -> (offset m, heading rad)."""
        cfg = self.view
        bottoms = []
        tops = []
        for seg in segments[:4]:
            x_bottom, x_top = _extrapolate(seg, cfg.height)
            bottoms.append(x_bottom)
            tops.append(x_top)
        x_bottom = float(np.mean(bottoms))
        x_top = float(np.mean(tops))
        offset = (cfg.width / 2.0 - x_bottom) / cfg.pixels_per_metre
        heading = (x_bottom - x_top) / cfg.pixels_per_radian
        return offset, heading


def _extrapolate(segment: LineSegment, height: int) -> tuple:
    """The segment's column at the bottom row and at the top row."""
    if abs(segment.y2 - segment.y1) < 1e-6:
        return segment.midpoint_x, segment.midpoint_x
    slope = (segment.x2 - segment.x1) / (segment.y2 - segment.y1)
    x_bottom = segment.x1 + slope * (height - 1 - segment.y1)
    x_top = segment.x1 + slope * (0 - segment.y1)
    return x_bottom, x_top
