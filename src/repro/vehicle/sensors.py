"""On-board sensors: ZED camera, LiDAR and IMU models.

The camera produces real pixel frames (via :mod:`repro.vision.image`)
at a configurable frame rate so that the actual Canny + Hough pipeline
runs on them.  The LiDAR and IMU provide the additional modalities the
platform carries (used by the onboard-only baseline and tests).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.sim.kernel import Simulator
from repro.vehicle.dynamics import VehicleDynamics
from repro.vehicle.track import Track
from repro.vision.image import LineViewConfig, render_line_view

#: Forward half-plane sweep of the on-board LiDAR.
_DEFAULT_LIDAR_FOV = math.radians(180.0)


@dataclasses.dataclass(frozen=True)
class CameraFrame:
    """One captured frame with its capture timestamp."""

    image: np.ndarray
    captured_at: float
    sequence: int


class ZedCamera:
    """The vehicle's forward camera, looking at the guide line.

    Renders what the camera would see given the vehicle's true pose
    relative to the track, publishing frames on a ROS topic at
    ``fps`` -- the Line Detection node consumes them.
    """

    def __init__(
        self,
        sim: Simulator,
        dynamics: VehicleDynamics,
        track: Track,
        publish: Callable[[CameraFrame], None],
        fps: float = 15.0,
        view: Optional[LineViewConfig] = None,
        rng: Optional[np.random.Generator] = None,
        enabled: bool = True,
    ):
        self.sim = sim
        self.dynamics = dynamics
        self.track = track
        self.publish = publish
        self.fps = fps
        self.view = view or LineViewConfig()
        self.rng = rng or np.random.default_rng(0)
        self.frames_captured = 0
        if enabled:
            sim.schedule(1.0 / fps, self._capture)

    def _capture(self) -> None:
        state = self.dynamics.state
        # Track convention: positive = left of / pointing left of the
        # line.  Renderer convention: positive = right.  Negate both.
        offset = -self.track.lateral_offset(state.x, state.y)
        heading_error = -self.track.heading_error(
            state.x, state.y, state.heading)
        image = render_line_view(offset, heading_error, self.view, self.rng)
        frame = CameraFrame(image=image, captured_at=self.sim.now,
                            sequence=self.frames_captured)
        self.frames_captured += 1
        self.publish(frame)
        self.sim.schedule(1.0 / self.fps, self._capture)


@dataclasses.dataclass(frozen=True)
class LidarScan:
    """A planar scan: ranges (m) at evenly spaced bearings."""

    ranges: Tuple[float, ...]
    bearings: Tuple[float, ...]  # rad, relative to vehicle heading
    captured_at: float


class Lidar:
    """The Hokuyo scanning LiDAR, reduced to obstacle ranging.

    Obstacles are supplied as (x, y, radius) discs; each scan reports
    the distance to the nearest disc along each bearing (capped at
    ``max_range``).  The onboard-only collision-avoidance baseline
    uses this sensor.
    """

    def __init__(
        self,
        sim: Simulator,
        dynamics: VehicleDynamics,
        obstacles: Callable[[], List[Tuple[float, float, float]]],
        publish: Callable[[LidarScan], None],
        walls: Optional[Callable[[], List[Tuple[Tuple[float, float],
                                               Tuple[float, float]]]]] = None,
        rate_hz: float = 10.0,
        fov: float = _DEFAULT_LIDAR_FOV,
        beams: int = 37,
        max_range: float = 10.0,
        noise_std: float = 0.01,
        rng: Optional[np.random.Generator] = None,
        enabled: bool = True,
    ):
        self.sim = sim
        self.dynamics = dynamics
        self.obstacles = obstacles
        self.walls = walls or (lambda: [])
        self.publish = publish
        self.rate_hz = rate_hz
        self.fov = fov
        self.beams = beams
        self.max_range = max_range
        self.noise_std = noise_std
        self.rng = rng or np.random.default_rng(0)
        self.scans_captured = 0
        if enabled:
            sim.schedule(1.0 / rate_hz, self._scan)

    def _scan(self) -> None:
        state = self.dynamics.state
        bearings = np.linspace(-self.fov / 2.0, self.fov / 2.0, self.beams)
        obstacles = self.obstacles()
        walls = self.walls()
        ranges = []
        for bearing in bearings:
            direction = state.heading + bearing
            best = self.max_range
            # Walls block (and return) the beam.
            for (x1, y1), (x2, y2) in walls:
                hit = _ray_segment_distance(
                    state.x, state.y, direction, x1, y1, x2, y2)
                if hit is not None and hit < best:
                    best = hit
            for ox, oy, radius in obstacles:
                hit = _ray_disc_distance(
                    state.x, state.y, direction, ox, oy, radius)
                if hit is not None and hit < best:
                    best = hit
            if self.noise_std > 0 and best < self.max_range:
                best = max(0.0, best + float(self.rng.normal(
                    0.0, self.noise_std)))
            ranges.append(best)
        scan = LidarScan(ranges=tuple(ranges),
                         bearings=tuple(float(b) for b in bearings),
                         captured_at=self.sim.now)
        self.scans_captured += 1
        self.publish(scan)
        self.sim.schedule(1.0 / self.rate_hz, self._scan)


@dataclasses.dataclass(frozen=True)
class ImuSample:
    """Body-frame inertial measurement."""

    longitudinal_acceleration: float  # m/s^2
    yaw_rate: float                   # rad/s
    captured_at: float


class Imu:
    """A simple IMU: differentiated speed + bicycle-model yaw rate,
    with white noise."""

    def __init__(
        self,
        sim: Simulator,
        dynamics: VehicleDynamics,
        publish: Callable[[ImuSample], None],
        rate_hz: float = 100.0,
        accel_noise_std: float = 0.05,
        gyro_noise_std: float = 0.005,
        rng: Optional[np.random.Generator] = None,
        enabled: bool = True,
    ):
        self.sim = sim
        self.dynamics = dynamics
        self.publish = publish
        self.rate_hz = rate_hz
        self.accel_noise_std = accel_noise_std
        self.gyro_noise_std = gyro_noise_std
        self.rng = rng or np.random.default_rng(0)
        self._last_speed: Optional[float] = None
        self._last_time: Optional[float] = None
        self.samples_captured = 0
        if enabled:
            sim.schedule(1.0 / rate_hz, self._sample)

    def _sample(self) -> None:
        speed = self.dynamics.state.speed
        now = self.sim.now
        accel = 0.0
        if self._last_time is not None and now > self._last_time:
            accel = (speed - self._last_speed) / (now - self._last_time)
        self._last_speed = speed
        self._last_time = now
        sample = ImuSample(
            longitudinal_acceleration=accel + float(self.rng.normal(
                0.0, self.accel_noise_std)),
            yaw_rate=self.dynamics.yaw_rate() + float(self.rng.normal(
                0.0, self.gyro_noise_std)),
            captured_at=now,
        )
        self.samples_captured += 1
        self.publish(sample)
        self.sim.schedule(1.0 / self.rate_hz, self._sample)


@dataclasses.dataclass(frozen=True)
class GnssModel:
    """GNSS position/velocity error model for CAM content.

    Real OBUs fill CAMs from a GNSS receiver, not ground truth.  The
    model uses a slowly-wandering bias (multipath / atmospheric error,
    a first-order Gauss-Markov process) plus white per-fix noise --
    the structure that makes consecutive fixes *correlated*, which is
    what matters for anything that differentiates positions.
    """

    #: Standard deviation of the wandering bias (m); ~0.5-2 m typical.
    bias_std: float = 0.8
    #: Bias correlation time (s).
    bias_tau: float = 30.0
    #: White noise per fix (m).
    noise_std: float = 0.15
    #: Speed error per fix (m/s).
    speed_noise_std: float = 0.05


class GnssReceiver:
    """Applies a :class:`GnssModel` to the vehicle's true state."""

    def __init__(self, sim: Simulator, model: Optional[GnssModel] = None,
                 rng: Optional[np.random.Generator] = None):
        self.sim = sim
        self.model = model or GnssModel()
        self.rng = rng or np.random.default_rng(0)
        self._bias = np.array([
            self.rng.normal(0.0, self.model.bias_std),
            self.rng.normal(0.0, self.model.bias_std),
        ])
        self._bias_updated = sim.now

    def _advance_bias(self) -> None:
        dt = self.sim.now - self._bias_updated
        if dt <= 0:
            return
        # Exact discretisation of the Gauss-Markov process.
        alpha = math.exp(-dt / self.model.bias_tau)
        innovation_std = self.model.bias_std * math.sqrt(
            max(0.0, 1.0 - alpha * alpha))
        self._bias = alpha * self._bias + self.rng.normal(
            0.0, innovation_std, size=2)
        self._bias_updated = self.sim.now

    def fix(self, true_x: float, true_y: float,
            true_speed: float) -> Tuple[float, float, float]:
        """One position/speed fix: (x, y, speed) with GNSS error."""
        self._advance_bias()
        x = true_x + self._bias[0] + float(self.rng.normal(
            0.0, self.model.noise_std))
        y = true_y + self._bias[1] + float(self.rng.normal(
            0.0, self.model.noise_std))
        speed = max(0.0, true_speed + float(self.rng.normal(
            0.0, self.model.speed_noise_std)))
        return (x, y, speed)


def _ray_segment_distance(x: float, y: float, direction: float,
                          x1: float, y1: float, x2: float, y2: float,
                          ) -> Optional[float]:
    """Distance from (x, y) along *direction* to a wall segment."""
    dx = math.cos(direction)
    dy = math.sin(direction)
    ex = x2 - x1
    ey = y2 - y1
    denominator = dx * ey - dy * ex
    if abs(denominator) < 1e-12:
        return None  # parallel
    t = ((x1 - x) * ey - (y1 - y) * ex) / denominator
    u = ((x1 - x) * dy - (y1 - y) * dx) / denominator
    if t < 0 or not 0.0 <= u <= 1.0:
        return None
    return t


def _ray_disc_distance(x: float, y: float, direction: float,
                       ox: float, oy: float, radius: float,
                       ) -> Optional[float]:
    """Distance from (x, y) along *direction* to a disc, or None."""
    dx = math.cos(direction)
    dy = math.sin(direction)
    fx = ox - x
    fy = oy - y
    projection = fx * dx + fy * dy
    if projection < 0:
        return None
    closest_sq = (fx * fx + fy * fy) - projection * projection
    if closest_sq > radius * radius:
        return None
    offset = math.sqrt(radius * radius - closest_sq)
    distance = projection - offset
    return distance if distance >= 0 else 0.0
