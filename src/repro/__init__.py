"""An ETSI ITS-enabled robotic scale testbed, reproduced in simulation.

Python reproduction of *"An ETSI ITS-enabled Robotic Scale Testbed for
Network-Aided Safety-Critical Scenarios"* (DSN 2023): a 1/10-scale
autonomous vehicle performs emergency braking ordered by road-side
infrastructure over an ETSI ITS / IEEE 802.11p link, and the entire
detection-to-action delay chain is characterised end to end.

Subpackages (see ``DESIGN.md`` for the full inventory):

========================  ==============================================
``repro.sim``             discrete-event kernel, clocks, processes
``repro.asn1``            unaligned-PER codec
``repro.messages``        CAM / DENM / SPATEM / MAPEM / CPM
``repro.facilities``      CA, DEN, LDM, traffic light, CP, GLOSA
``repro.geonet``          GeoNetworking (SHB/GBC/GUC/beacons) + BTP
``repro.net``             802.11p MAC/PHY, propagation, DCC, 5G model
``repro.openc2x``         OBU/RSU units with the OpenC2X HTTP API
``repro.security``        TS 103 097-style PKI, signing, pseudonyms
``repro.vision``          Canny + Hough line detection substrate
``repro.vehicle``         the 1/10-scale robotic vehicle
``repro.roadside``        camera + YOLO + tracking + hazard services
``repro.core``            assembled testbeds, measurement, reports
========================  ==============================================

Quickstart::

    from repro.core import EmergencyBrakeScenario, ScaleTestbed

    measurement = ScaleTestbed(EmergencyBrakeScenario(seed=4)).run()
    print(measurement.intervals_ms())   # the paper's Table II, one run
"""

__version__ = "1.0.0"
