"""The Local Dynamic Map (EN 302 895).

The LDM is the station's live picture of its surroundings: every
object it senses directly or learns about through CAMs/DENMs is stored
with a position, a timestamp and a validity horizon.  Consumers query
by object kind, area and freshness, or subscribe for updates --
exactly how the paper's Hazard Advertisement Service "assesses a
potential collision from consulting the LDM".

OpenC2X persists its LDM in sqlite; here the store is in-memory with
the same observable behaviour (insert/update/query/expire).
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.geonet.position import GeoPosition
from repro.geonet.router import CircularArea
from repro.sim.kernel import Simulator


class ObjectKind(enum.Enum):
    """What kind of world object an LDM entry describes."""

    VEHICLE = "vehicle"
    ROAD_USER = "road_user"
    EVENT = "event"
    TRAFFIC_SIGN = "traffic_sign"
    SENSOR_DETECTION = "sensor_detection"


@dataclasses.dataclass
class LdmObject:
    """One entry of the Local Dynamic Map.

    ``data`` holds the source artefact (a decoded :class:`Cam`, a
    :class:`Denm`, or a sensor detection record); ``key`` identifies
    the world object so updates replace rather than accumulate.
    """

    key: str
    kind: ObjectKind
    position: GeoPosition
    timestamp: float
    valid_until: float
    data: Any = None
    source: str = "sensor"           # "cam" | "denm" | "sensor"
    station_id: Optional[int] = None
    speed: float = 0.0
    heading: float = 0.0
    revision: int = 0

    def is_valid_at(self, now: float) -> bool:
        """Whether the entry is still within its validity horizon."""
        return now <= self.valid_until


Subscriber = Callable[[LdmObject], None]


@dataclasses.dataclass
class _Subscription:
    kinds: Optional[frozenset]
    area: Optional[CircularArea]
    callback: Subscriber


class Ldm:
    """The in-memory Local Dynamic Map store."""

    #: Period of the background expiry sweep (s).
    PURGE_PERIOD = 1.0

    def __init__(self, sim: Simulator, run_purge_process: bool = True):
        self.sim = sim
        self._objects: Dict[str, LdmObject] = {}
        self._subscriptions: List[_Subscription] = []
        self._revisions = itertools.count(1)
        self.inserts = 0
        self.updates = 0
        self.expired = 0
        if run_purge_process:
            self.sim.schedule(self.PURGE_PERIOD, self._purge_tick)

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    def put(self, obj: LdmObject) -> LdmObject:
        """Insert or update *obj* (keyed by ``obj.key``), notifying
        matching subscribers."""
        obj.revision = next(self._revisions)
        if obj.key in self._objects:
            self.updates += 1
        else:
            self.inserts += 1
        self._objects[obj.key] = obj
        for sub in self._subscriptions:
            if self._matches(sub, obj):
                sub.callback(obj)
        return obj

    def remove(self, key: str) -> bool:
        """Delete the entry *key*; True if it existed."""
        return self._objects.pop(key, None) is not None

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[LdmObject]:
        """The live entry for *key*, or None (expired entries hidden)."""
        obj = self._objects.get(key)
        if obj is None or not obj.is_valid_at(self.sim.now):
            return None
        return obj

    def query(
        self,
        kinds: Optional[List[ObjectKind]] = None,
        area: Optional[CircularArea] = None,
        not_older_than: Optional[float] = None,
    ) -> List[LdmObject]:
        """All live entries matching the filters.

        Args:
            kinds: restrict to these object kinds.
            area: restrict to entries positioned inside the area.
            not_older_than: maximum age in seconds.
        """
        now = self.sim.now
        kind_set = frozenset(kinds) if kinds is not None else None
        out = []
        for obj in self._objects.values():
            if not obj.is_valid_at(now):
                continue
            if kind_set is not None and obj.kind not in kind_set:
                continue
            if area is not None and not area.contains(obj.position):
                continue
            if (not_older_than is not None
                    and now - obj.timestamp > not_older_than):
                continue
            out.append(obj)
        return out

    def subscribe(
        self,
        callback: Subscriber,
        kinds: Optional[List[ObjectKind]] = None,
        area: Optional[CircularArea] = None,
    ) -> Callable[[], None]:
        """Call *callback* for every future matching put.

        Returns an unsubscribe function.
        """
        sub = _Subscription(
            kinds=frozenset(kinds) if kinds is not None else None,
            area=area,
            callback=callback,
        )
        self._subscriptions.append(sub)

        def unsubscribe() -> None:
            if sub in self._subscriptions:
                self._subscriptions.remove(sub)

        return unsubscribe

    def __len__(self) -> int:
        now = self.sim.now
        return sum(1 for obj in self._objects.values()
                   if obj.is_valid_at(now))

    def __iter__(self) -> Iterator[LdmObject]:
        now = self.sim.now
        return (obj for obj in list(self._objects.values())
                if obj.is_valid_at(now))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @staticmethod
    def _matches(sub: _Subscription, obj: LdmObject) -> bool:
        if sub.kinds is not None and obj.kind not in sub.kinds:
            return False
        if sub.area is not None and not sub.area.contains(obj.position):
            return False
        return True

    def _purge_tick(self) -> None:
        now = self.sim.now
        stale = [key for key, obj in self._objects.items()
                 if not obj.is_valid_at(now)]
        for key in stale:
            del self._objects[key]
        self.expired += len(stale)
        self.sim.schedule(
            # detlint: ignore[SCH001] -- benign: an object inserted at
            # t is still valid at t, so purge order at shared
            # sim-times cannot change which entries are stale
            self.PURGE_PERIOD, self._purge_tick)
