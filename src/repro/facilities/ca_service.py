"""Cooperative Awareness basic service (EN 302 637-2).

Implements the adaptive CAM generation rules: a check runs every
``t_check`` (100 ms); a CAM is generated when

* the station dynamics changed significantly since the last CAM
  (heading by > 4 degrees, position by > 4 m, or speed by > 0.5 m/s)
  and at least ``t_gen_cam_min`` elapsed, or
* ``t_gen_cam`` elapsed (the adaptive upper period: after
  ``n_gen_cam`` consecutive dynamics-triggered CAMs the upper period
  locks to the triggering interval, relaxing back to 1 s).

Received CAMs are decoded, inserted in the LDM as VEHICLE objects and
handed to application callbacks.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional

from repro.facilities.ldm import Ldm, LdmObject, ObjectKind
from repro.geonet.btp import BtpPort
from repro.geonet.position import GeoPosition
from repro.geonet.router import GeoNetRouter
from repro.messages.cam import Cam, generation_delta_time
from repro.messages.common import ReferencePosition
from repro.net.frame import AccessCategory
from repro.sim.kernel import Simulator


@dataclasses.dataclass(frozen=True)
class StationState:
    """A snapshot of the station's own dynamics, fed to the CA service."""

    position: GeoPosition
    heading: float = 0.0        # degrees clockwise from north
    speed: float = 0.0          # m/s
    acceleration: float = 0.0   # m/s^2
    yaw_rate: float = 0.0       # deg/s
    curvature: Optional[float] = None


@dataclasses.dataclass(frozen=True)
class CaConfig:
    """Generation-rule parameters (EN 302 637-2 defaults)."""

    t_check: float = 0.1
    t_gen_cam_min: float = 0.1
    t_gen_cam_max: float = 1.0
    n_gen_cam: int = 3
    heading_threshold_deg: float = 4.0
    position_threshold_m: float = 4.0
    speed_threshold_mps: float = 0.5
    #: Period of the low-frequency container (vehicle role, exterior
    #: lights, path history); EN 302 637-2: at most every 500 ms.
    t_low_frequency: float = 0.5
    #: Path-history points carried in the LF container.
    path_history_points: int = 23
    #: CAM validity horizon when stored in a receiver's LDM (s).
    ldm_lifetime: float = 1.1
    #: Delay before the first generation check (s); None keeps the
    #: legacy ``t_check``.  Fleet scenarios give every station a
    #: distinct phase so N stations never check at the same kernel
    #: timestamp (tie-break invariance).
    start_offset: Optional[float] = None


CamCallback = Callable[[Cam], None]


class CaBasicService:
    """One station's CA service (transmit and receive sides)."""

    def __init__(
        self,
        sim: Simulator,
        router: GeoNetRouter,
        ldm: Ldm,
        station_id: int,
        station_type: int,
        state_provider: Callable[[], StationState],
        its_time: Callable[[], int],
        config: Optional[CaConfig] = None,
        enabled: bool = True,
        is_rsu: bool = False,
        vehicle_length: float = 0.53,
        vehicle_width: float = 0.30,
    ):
        self.sim = sim
        self.router = router
        self.ldm = ldm
        self.station_id = station_id
        self.station_type = station_type
        self.state_provider = state_provider
        self.its_time = its_time
        self.config = config or CaConfig()
        self.is_rsu = is_rsu
        self.vehicle_length = vehicle_length
        self.vehicle_width = vehicle_width
        self._last_cam_state: Optional[StationState] = None
        self._last_cam_time: Optional[float] = None
        self._last_lf_time: Optional[float] = None
        self._path: List[GeoPosition] = []
        self._t_gen_cam = self.config.t_gen_cam_max
        self._consecutive_dynamic = 0
        self._callbacks: List[CamCallback] = []
        self.cams_sent = 0
        self.cams_received = 0
        router.btp.register(BtpPort.CAM, self._on_payload)
        if enabled:
            first = (self.config.t_check
                     if self.config.start_offset is None
                     else self.config.start_offset)
            sim.schedule(first, self._check_tick)

    # ------------------------------------------------------------------
    # Transmit side
    # ------------------------------------------------------------------

    def _check_tick(self) -> None:
        self._maybe_generate()
        self.sim.schedule(self.config.t_check, self._check_tick)

    def _maybe_generate(self) -> None:
        state = self.state_provider()
        now = self.sim.now
        if self._last_cam_time is None:
            self._generate(state)
            return
        elapsed = now - self._last_cam_time
        if elapsed < self.config.t_gen_cam_min:
            return
        if self._dynamics_changed(state):
            # Dynamics rule: lock the adaptive period to this interval.
            self._consecutive_dynamic += 1
            if self._consecutive_dynamic >= self.config.n_gen_cam:
                self._t_gen_cam = min(
                    max(elapsed, self.config.t_gen_cam_min),
                    self.config.t_gen_cam_max)
            self._generate(state)
            return
        if elapsed >= self._t_gen_cam:
            self._consecutive_dynamic = 0
            self._t_gen_cam = self.config.t_gen_cam_max
            self._generate(state)

    def _dynamics_changed(self, state: StationState) -> bool:
        assert self._last_cam_state is not None
        last = self._last_cam_state
        heading_delta = abs(
            (state.heading - last.heading + 180.0) % 360.0 - 180.0)
        if heading_delta > self.config.heading_threshold_deg:
            return True
        if (last.position.distance_to(state.position)
                > self.config.position_threshold_m):
            return True
        return (abs(state.speed - last.speed)
                > self.config.speed_threshold_mps)

    def _generate(self, state: StationState) -> None:
        include_lf = (
            not self.is_rsu
            and (self._last_lf_time is None
                 or self.sim.now - self._last_lf_time
                 >= self.config.t_low_frequency))
        path_history: tuple = ()
        if include_lf:
            self._last_lf_time = self.sim.now
            # Deltas from the current position back along the path.
            path_history = tuple(
                (previous.latitude - state.position.latitude,
                 previous.longitude - state.position.longitude)
                for previous in reversed(self._path)
            )[:self.config.path_history_points]
        cam = Cam(
            station_id=self.station_id,
            station_type=self.station_type,
            generation_delta_time=generation_delta_time(self.its_time()),
            position=ReferencePosition(
                latitude=state.position.latitude,
                longitude=state.position.longitude,
            ),
            heading=state.heading,
            speed=state.speed,
            longitudinal_acceleration=state.acceleration,
            curvature=state.curvature,
            yaw_rate=state.yaw_rate,
            vehicle_length=self.vehicle_length,
            vehicle_width=self.vehicle_width,
            is_rsu=self.is_rsu,
            exterior_lights=(0,) * 8 if include_lf else None,
            path_history=path_history,
        )
        obs = self.sim.obs
        if obs is not None:
            with obs.profile("asn1.encode"):
                payload = cam.encode()
            obs.count("ca.cams_sent", device=str(self.station_id))
        else:
            payload = cam.encode()
        self.router.send_shb(payload, BtpPort.CAM,
                             traffic_class=AccessCategory.AC_VI)
        self._last_cam_state = state
        self._last_cam_time = self.sim.now
        self._path.append(state.position)
        if len(self._path) > self.config.path_history_points:
            del self._path[0]
        self.cams_sent += 1

    def force_generate(self) -> None:
        """Generate a CAM immediately (outside the rules); test hook."""
        self._generate(self.state_provider())

    # ------------------------------------------------------------------
    # Receive side
    # ------------------------------------------------------------------

    def on_cam(self, callback: CamCallback) -> None:
        """Register an application callback for received CAMs."""
        self._callbacks.append(callback)

    def _on_payload(self, payload: bytes, _context: object) -> None:
        obs = self.sim.obs
        if obs is not None:
            with obs.profile("asn1.decode"):
                cam = Cam.decode(payload)
            obs.count("ca.cams_received", device=str(self.station_id))
        else:
            cam = Cam.decode(payload)
        self.cams_received += 1
        self.ldm.put(LdmObject(
            key=f"cam:{cam.station_id}",
            kind=ObjectKind.VEHICLE,
            position=GeoPosition(cam.position.latitude,
                                 cam.position.longitude),
            timestamp=self.sim.now,
            valid_until=self.sim.now + self.config.ldm_lifetime,
            data=cam,
            source="cam",
            station_id=cam.station_id,
            speed=cam.speed,
            heading=cam.heading,
        ))
        for callback in self._callbacks:
            callback(cam)

    @property
    def current_period(self) -> float:
        """The adaptive upper CAM period currently in force (s)."""
        return self._t_gen_cam
