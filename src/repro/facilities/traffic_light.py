"""Traffic-light services: the controller (RSU side) and the receiver.

:class:`TrafficLightController` runs a fixed-cycle signal plan for one
intersection and broadcasts SPATEM at ``spat_rate`` plus MAPEM at
``map_rate`` through the station's GeoNetworking router.
:class:`SignalPhaseService` is the vehicle side: it decodes both,
stores signal state in the LDM, and answers "may I proceed on my
approach, and how long until that changes?" -- what a red-light assist
or GLOSA application needs.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

from repro.facilities.ldm import Ldm, LdmObject, ObjectKind
from repro.geonet.btp import BtpPort
from repro.geonet.position import GeoPosition
from repro.geonet.router import GeoNetRouter
from repro.messages.common import ReferencePosition
from repro.messages.spat import Lane, Mapem, MovementState, Spatem
from repro.net.frame import AccessCategory
from repro.sim.kernel import Simulator


@dataclasses.dataclass(frozen=True)
class SignalPhase:
    """One step of a fixed signal plan."""

    duration: float
    #: signal group -> event state during this step.
    states: Dict[int, str]


def two_phase_plan(green_time: float = 8.0, yellow_time: float = 2.0,
                   all_red: float = 1.0) -> List[SignalPhase]:
    """A standard two-approach plan: groups 1 (east-west) and 2
    (north-south) alternate."""
    return [
        SignalPhase(green_time, {1: "protected-Movement-Allowed",
                                 2: "stop-And-Remain"}),
        SignalPhase(yellow_time, {1: "protected-clearance",
                                  2: "stop-And-Remain"}),
        SignalPhase(all_red, {1: "stop-And-Remain",
                              2: "stop-And-Remain"}),
        SignalPhase(green_time, {1: "stop-And-Remain",
                                 2: "protected-Movement-Allowed"}),
        SignalPhase(yellow_time, {1: "stop-And-Remain",
                                  2: "protected-clearance"}),
        SignalPhase(all_red, {1: "stop-And-Remain",
                              2: "stop-And-Remain"}),
    ]


class TrafficLightController:
    """Runs the plan and broadcasts SPATEM/MAPEM."""

    def __init__(
        self,
        sim: Simulator,
        router: GeoNetRouter,
        station_id: int,
        intersection_id: int,
        position: GeoPosition,
        lanes: List[Lane],
        plan: Optional[List[SignalPhase]] = None,
        spat_rate: float = 2.0,
        map_rate: float = 1.0,
    ):
        self.sim = sim
        self.router = router
        self.station_id = station_id
        self.intersection_id = intersection_id
        self.position = position
        self.lanes = tuple(lanes)
        if plan is None:
            plan = two_phase_plan()
        if not plan:
            raise ValueError("signal plan must have at least one phase")
        self.plan = list(plan)
        self.spat_rate = spat_rate
        self.map_rate = map_rate
        self._phase_index = 0
        self._phase_entered = sim.now
        self._revision = 0
        self.spatems_sent = 0
        self.mapems_sent = 0
        sim.schedule(self.plan[0].duration, self._advance_phase)
        sim.schedule(1.0 / spat_rate, self._send_spatem)
        sim.schedule(0.05, self._send_mapem)

    # ------------------------------------------------------------------
    # Signal plan
    # ------------------------------------------------------------------

    @property
    def current_phase(self) -> SignalPhase:
        """The plan step currently active."""
        return self.plan[self._phase_index]

    def time_remaining(self) -> float:
        """Seconds until the current phase ends."""
        elapsed = self.sim.now - self._phase_entered
        return max(0.0, self.current_phase.duration - elapsed)

    def _advance_phase(self) -> None:
        self._phase_index = (self._phase_index + 1) % len(self.plan)
        self._phase_entered = self.sim.now
        self.sim.schedule(self.current_phase.duration,
                          self._advance_phase)

    # ------------------------------------------------------------------
    # Broadcasting
    # ------------------------------------------------------------------

    def _state_kind(self, state: str) -> str:
        from repro.messages.spat import GO_STATES, STOP_STATES

        if state in GO_STATES:
            return "go"
        if state in STOP_STATES:
            return "stop"
        return "transition"

    def group_state_remaining(self, group: int) -> float:
        """Seconds until *group*'s state (go/stop/transition) changes.

        This is what SPAT's minEndTime means: a red spanning several
        plan steps reports the time until the group actually turns,
        not until the next internal step boundary.
        """
        current_kind = self._state_kind(self.current_phase.states[group])
        total = self.time_remaining()
        for step in range(1, len(self.plan)):
            phase = self.plan[(self._phase_index + step) % len(self.plan)]
            if self._state_kind(phase.states[group]) != current_kind:
                break
            total += phase.duration
        return total

    def _movements(self) -> Tuple[MovementState, ...]:
        return tuple(
            MovementState(signal_group=group, event_state=state,
                          min_end_seconds=self.group_state_remaining(
                              group))
            for group, state in sorted(
                self.current_phase.states.items())
        )

    def _send_spatem(self) -> None:
        self._revision = (self._revision + 1) % 128
        spatem = Spatem(
            station_id=self.station_id,
            intersection_id=self.intersection_id,
            revision=self._revision,
            movements=self._movements(),
        )
        self.router.send_shb(spatem.encode(), BtpPort.SPAT,
                             traffic_class=AccessCategory.AC_VI)
        self.spatems_sent += 1
        self.sim.schedule(1.0 / self.spat_rate, self._send_spatem)

    def _send_mapem(self) -> None:
        mapem = Mapem(
            station_id=self.station_id,
            intersection_id=self.intersection_id,
            revision=0,
            reference_position=ReferencePosition(
                self.position.latitude, self.position.longitude),
            lanes=self.lanes,
        )
        self.router.send_shb(mapem.encode(), BtpPort.MAP,
                             traffic_class=AccessCategory.AC_BE)
        self.mapems_sent += 1
        self.sim.schedule(1.0 / self.map_rate, self._send_mapem)


SpatCallback = Callable[[Spatem], None]


class SignalPhaseService:
    """Vehicle-side SPATEM/MAPEM reception and phase queries."""

    def __init__(self, sim: Simulator, router: GeoNetRouter, ldm: Ldm):
        self.sim = sim
        self.ldm = ldm
        self._maps: Dict[int, Mapem] = {}
        self._states: Dict[int, Spatem] = {}
        self._state_received_at: Dict[int, float] = {}
        self._callbacks: List[SpatCallback] = []
        self.spatems_received = 0
        self.mapems_received = 0
        router.btp.register(BtpPort.SPAT, self._on_spatem)
        router.btp.register(BtpPort.MAP, self._on_mapem)

    def on_spatem(self, callback: SpatCallback) -> None:
        """Register a callback for decoded SPATEMs."""
        self._callbacks.append(callback)

    def _on_spatem(self, payload: bytes, _context) -> None:
        spatem = Spatem.decode(payload)
        self.spatems_received += 1
        self._states[spatem.intersection_id] = spatem
        self._state_received_at[spatem.intersection_id] = self.sim.now
        for callback in self._callbacks:
            callback(spatem)

    def _on_mapem(self, payload: bytes, _context) -> None:
        mapem = Mapem.decode(payload)
        self.mapems_received += 1
        self._maps[mapem.intersection_id] = mapem
        self.ldm.put(LdmObject(
            key=f"intersection:{mapem.intersection_id}",
            kind=ObjectKind.TRAFFIC_SIGN,
            position=GeoPosition(
                mapem.reference_position.latitude,
                mapem.reference_position.longitude),
            timestamp=self.sim.now,
            valid_until=self.sim.now + 60.0,
            data=mapem,
            source="mapem",
        ))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def known_intersections(self) -> List[int]:
        """Intersections with both topology and live state."""
        return sorted(set(self._maps) & set(self._states))

    def movement_for_approach(self, intersection_id: int,
                              heading: float,
                              ) -> Optional[MovementState]:
        """The live movement state governing a vehicle approaching
        *intersection_id* with *heading* (degrees), or None."""
        mapem = self._maps.get(intersection_id)
        spatem = self._states.get(intersection_id)
        if mapem is None or spatem is None:
            return None
        lane = mapem.ingress_lane_for_bearing(heading)
        if lane is None or lane.signal_group is None:
            return None
        state = spatem.state_of(lane.signal_group)
        if state is None:
            return None
        # Age the countdown by the time since reception.
        age = self.sim.now - self._state_received_at[intersection_id]
        return dataclasses.replace(
            state, min_end_seconds=max(0.0,
                                       state.min_end_seconds - age))

    def intersection_position(self, intersection_id: int,
                              ) -> Optional[GeoPosition]:
        """The mapped reference point of *intersection_id*."""
        mapem = self._maps.get(intersection_id)
        if mapem is None:
            return None
        return GeoPosition(mapem.reference_position.latitude,
                           mapem.reference_position.longitude)
