"""An assembled ITS station: clock + NIC + router + facilities.

:class:`ItsStation` is the building block the OpenC2X layer wraps into
OBUs and RSUs: it owns a device clock (NTP-disciplined), an 802.11p
interface on the shared medium, a GeoNetworking router, the CA and DEN
basic services and an LDM.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple


from repro.facilities.ca_service import CaBasicService, CaConfig, StationState
from repro.facilities.den_service import DenBasicService, DenConfig
from repro.facilities.ldm import Ldm
from repro.geonet.position import GeoPosition
from repro.geonet.router import GeoNetRouter
from repro.messages.common import its_timestamp
from repro.net.medium import WirelessMedium
from repro.net.nic import NetworkInterface
from repro.net.phy import PhyConfig
from repro.sim.clock import DeviceClock, NtpModel
from repro.sim.kernel import Simulator
from repro.sim.randomness import RandomStreams

#: Unix time corresponding to simulated t=0 (2023-03-01T00:00:00Z,
#: around the paper's experiments).
SIM_EPOCH_UNIX = 1677628800.0


class ItsStation:
    """One complete ETSI ITS station.

    Args:
        sim: simulation kernel.
        medium: the shared 802.11p channel.
        streams: named random streams (scoped per station).
        name: unique station name (GN address / NIC name).
        station_id: numeric ITS station identifier.
        station_type: DE_StationType value.
        position: callable returning the current :class:`GeoPosition`;
            mobile stations pass a closure over their vehicle state.
        dynamics: callable returning (speed m/s, heading degrees).
        state_provider: full state snapshot for the CA service; when
            None, one is synthesised from ``position`` + ``dynamics``.
        ntp: clock discipline model (defaults to LAN NTP residuals).
        enable_cam: start the CA generation rules.
    """

    def __init__(
        self,
        sim: Simulator,
        medium: WirelessMedium,
        streams: RandomStreams,
        name: str,
        station_id: int,
        station_type: int,
        position: Callable[[], GeoPosition],
        dynamics: Optional[Callable[[], Tuple[float, float]]] = None,
        state_provider: Optional[Callable[[], StationState]] = None,
        phy: Optional[PhyConfig] = None,
        ntp: Optional[NtpModel] = None,
        ca_config: Optional[CaConfig] = None,
        den_config: Optional[DenConfig] = None,
        enable_cam: bool = True,
        is_rsu: bool = False,
        local_frame=None,
        security=None,
    ):
        self.sim = sim
        self.name = name
        self.station_id = station_id
        self.station_type = station_type
        self.position = position
        self.dynamics = dynamics or (lambda: (0.0, 0.0))
        self.local_frame = local_frame
        scoped = streams.spawn(f"station.{name}")
        self.clock = DeviceClock(
            sim, scoped.get("clock"), ntp or NtpModel.lan_default(),
            name=f"{name}.clock")
        self.nic = NetworkInterface(
            sim, medium, name,
            position=self._antenna_position,
            phy=phy, rng=scoped.get("mac"))
        self.security = security
        self.router = GeoNetRouter(
            sim, self.nic, position=position, dynamics=self.dynamics,
            rng=scoped.get("geonet"), security=security)
        self.ldm = Ldm(sim)
        provider = state_provider or self._default_state
        self.ca = CaBasicService(
            sim, self.router, self.ldm, station_id, station_type,
            state_provider=provider, its_time=self.its_time,
            config=ca_config, enabled=enable_cam, is_rsu=is_rsu)
        self.den = DenBasicService(
            sim, self.router, self.ldm, station_id, station_type,
            its_time=self.its_time, config=den_config)

    def _antenna_position(self) -> Tuple[float, float]:
        geo = self.position()
        if self.local_frame is not None:
            return self.local_frame.to_local(geo)
        # Fall back to an equirectangular projection around the
        # position itself; adequate because the medium only needs
        # relative distances.
        return (geo.longitude * 111_320.0, geo.latitude * 110_540.0)

    def _default_state(self) -> StationState:
        speed, heading = self.dynamics()
        return StationState(position=self.position(), heading=heading,
                            speed=speed)

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------

    def unix_time(self) -> float:
        """This station's wall-clock reading as Unix seconds."""
        return SIM_EPOCH_UNIX + self.clock.now()

    def its_time(self) -> int:
        """This station's TimestampIts (ms since the ITS epoch)."""
        return its_timestamp(self.unix_time())
