"""GLOSA: Green Light Optimal Speed Advisory.

Built on SPATEM/MAPEM: instead of braking at a red light (the
red-light assist), the vehicle adjusts speed *ahead of time* so it
arrives while the signal is green -- fewer full stops, smoother
approach.  The advisor is a pure function over (distance, speed,
movement state); :class:`CycleEstimator` learns the intersection's
phase durations from the SPATEM stream so the advisor can aim for the
*next* green when the current window is unreachable.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.messages.spat import MovementState


@dataclasses.dataclass(frozen=True)
class GlosaAdvice:
    """What the advisor recommends."""

    target_speed: float
    reason: str       # "cruise" | "catch_green" | "slow_for_green" | "stop"

    @property
    def requires_stop(self) -> bool:
        """Whether no green window is reachable and a stop is advised."""
        return self.reason == "stop"


class CycleEstimator:
    """Learns per-signal-group phase durations from observed SPATEMs.

    Feed every received movement state through :meth:`observe`; once a
    full go->stop->go cycle has been seen, :meth:`red_duration` /
    :meth:`green_duration` return running averages.
    """

    def __init__(self) -> None:
        self._current: Dict[int, Tuple[str, float]] = {}
        self._durations: Dict[Tuple[int, str], List[float]] = \
            defaultdict(list)

    def observe(self, signal_group: int, movement: MovementState,
                now: float) -> None:
        """Record the movement state seen at *now*."""
        kind = ("go" if movement.is_go
                else "stop" if movement.is_stop else "transition")
        current = self._current.get(signal_group)
        if current is None:
            self._current[signal_group] = (kind, now)
            return
        previous_kind, entered_at = current
        if kind != previous_kind:
            if previous_kind in ("go", "stop"):
                self._durations[(signal_group, previous_kind)].append(
                    now - entered_at)
            self._current[signal_group] = (kind, now)

    def _mean(self, signal_group: int, kind: str) -> Optional[float]:
        values = self._durations.get((signal_group, kind))
        if not values:
            return None
        return sum(values[-8:]) / len(values[-8:])

    def red_duration(self, signal_group: int) -> Optional[float]:
        """Mean observed red duration (s), or None before one cycle."""
        return self._mean(signal_group, "stop")

    def green_duration(self, signal_group: int) -> Optional[float]:
        """Mean observed green duration (s), or None before one cycle."""
        return self._mean(signal_group, "go")


def advise(
    distance: float,
    speed: float,
    movement: MovementState,
    v_max: float = 1.5,
    v_min: float = 0.4,
    red_estimate: Optional[float] = None,
    margin: float = 0.5,
) -> GlosaAdvice:
    """Speed advice for a vehicle *distance* metres from the stop line.

    Args:
        distance: metres to the stop line (positive = not yet there).
        speed: current speed (m/s).
        movement: the live state of the governing signal group.
        v_max: the road's / platform's speed ceiling.
        v_min: slowest useful crawl; below this, stopping is cleaner.
        red_estimate: expected red duration if the current green is
            missed (from :class:`CycleEstimator`); None disables
            next-window aiming.
        margin: seconds of safety margin inside the target window.
    """
    if distance <= 0:
        return GlosaAdvice(v_max, "cruise")
    remaining = max(0.0, movement.min_end_seconds)
    if movement.is_go:
        eta_at_max = distance / v_max
        if eta_at_max + margin <= remaining:
            # The current green is reachable at full speed.
            return GlosaAdvice(v_max, "cruise")
        # Aim for the next green window instead.
        if red_estimate is None:
            return GlosaAdvice(v_max, "cruise")  # try our luck
        next_green_opens = remaining + red_estimate
        target = distance / (next_green_opens + margin)
        if target < v_min:
            return GlosaAdvice(0.0, "stop")
        return GlosaAdvice(min(v_max, target), "slow_for_green")
    if movement.is_stop:
        # Arrive just after the red ends.
        window_opens = remaining + margin
        if window_opens <= 0:
            return GlosaAdvice(v_max, "cruise")
        target = distance / window_opens
        if target > v_max:
            # Even at full speed we arrive during red: plan to stop.
            return GlosaAdvice(0.0, "stop")
        if target < v_min:
            return GlosaAdvice(v_min, "slow_for_green")
        return GlosaAdvice(target, "catch_green")
    # Transitional states (yellow/clearance): the green is over; aim
    # for the next one (yellow remaining + the red behind it).
    if red_estimate is None:
        return GlosaAdvice(v_min, "slow_for_green")
    window_opens = remaining + red_estimate + margin
    target = distance / window_opens
    if target < v_min:
        return GlosaAdvice(v_min, "slow_for_green")
    return GlosaAdvice(min(v_max, target), "slow_for_green")
