"""Collective Perception service.

Transmit side (typically the road-side station): a provider callable
supplies the current perceived objects (from the edge tracker or raw
detections); the service broadcasts them as CPMs at a fixed rate.
Receive side: perceived objects are georeferenced against the
originator's position and stored in the LDM as ROAD_USER entries, so
any application that consults the LDM -- a collision monitor, a
planner -- sees road users beyond its own sensors.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence

from repro.facilities.ldm import Ldm, LdmObject, ObjectKind
from repro.geonet.position import GeoPosition, LocalFrame
from repro.geonet.router import GeoNetRouter
from repro.messages.cam import generation_delta_time
from repro.messages.common import ReferencePosition
from repro.messages.cpm import Cpm, PerceivedObject
from repro.net.frame import AccessCategory
from repro.sim.kernel import Simulator

#: BTP port for CPM (TS 103 248 assigns 2009).
CPM_PORT = 2009

ObjectsProvider = Callable[[], Sequence[PerceivedObject]]
CpmCallback = Callable[[Cpm], None]


@dataclasses.dataclass(frozen=True)
class CpConfig:
    """Service parameters."""

    #: CPM transmission rate (Hz); the standard adapts 1-10 Hz.
    rate: float = 5.0
    #: Validity horizon of perceived objects in a receiver's LDM (s).
    ldm_lifetime: float = 1.0
    #: Skip transmissions with no perceived objects.
    suppress_empty: bool = True


class CpService:
    """One station's Collective Perception service."""

    def __init__(
        self,
        sim: Simulator,
        router: GeoNetRouter,
        ldm: Ldm,
        station_id: int,
        station_type: int,
        position: Callable[[], GeoPosition],
        its_time: Callable[[], int],
        local_frame: Optional[LocalFrame] = None,
        provider: Optional[ObjectsProvider] = None,
        config: Optional[CpConfig] = None,
    ):
        self.sim = sim
        self.router = router
        self.ldm = ldm
        self.station_id = station_id
        self.station_type = station_type
        self.position = position
        self.its_time = its_time
        self.local_frame = local_frame or LocalFrame()
        self.provider = provider
        self.config = config or CpConfig()
        self._callbacks: List[CpmCallback] = []
        self.cpms_sent = 0
        self.cpms_received = 0
        self.objects_shared = 0
        self.objects_learned = 0
        router.btp.register(CPM_PORT, self._on_payload)
        if provider is not None:
            sim.schedule(1.0 / self.config.rate, self._tick)

    # ------------------------------------------------------------------
    # Transmit side
    # ------------------------------------------------------------------

    def _tick(self) -> None:
        self.transmit_now()
        self.sim.schedule(1.0 / self.config.rate, self._tick)

    def transmit_now(self) -> bool:
        """Broadcast the provider's current objects; False if skipped."""
        assert self.provider is not None
        objects = tuple(self.provider())
        if not objects and self.config.suppress_empty:
            return False
        geo = self.position()
        cpm = Cpm(
            station_id=self.station_id,
            station_type=self.station_type,
            generation_delta_time=generation_delta_time(self.its_time()),
            reference_position=ReferencePosition(geo.latitude,
                                                 geo.longitude),
            perceived_objects=objects,
        )
        self.router.send_shb(cpm.encode(), CPM_PORT,
                             traffic_class=AccessCategory.AC_VI)
        self.cpms_sent += 1
        self.objects_shared += len(objects)
        return True

    # ------------------------------------------------------------------
    # Receive side
    # ------------------------------------------------------------------

    def on_cpm(self, callback: CpmCallback) -> None:
        """Register an application callback for received CPMs."""
        self._callbacks.append(callback)

    def _on_payload(self, payload: bytes, _context) -> None:
        cpm = Cpm.decode(payload)
        self.cpms_received += 1
        origin_x, origin_y = self.local_frame.to_local(GeoPosition(
            cpm.reference_position.latitude,
            cpm.reference_position.longitude))
        for obj in cpm.perceived_objects:
            self.objects_learned += 1
            world = self.local_frame.to_geo(origin_x + obj.x_offset,
                                            origin_y + obj.y_offset)
            self.ldm.put(LdmObject(
                key=f"cpm:{cpm.station_id}:{obj.object_id}",
                kind=ObjectKind.ROAD_USER,
                position=world,
                timestamp=self.sim.now,
                valid_until=self.sim.now + self.config.ldm_lifetime,
                data=obj,
                source="cpm",
                station_id=cpm.station_id,
                speed=obj.speed,
            ))
        for callback in self._callbacks:
            callback(cpm)
