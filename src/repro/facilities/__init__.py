"""ETSI ITS Facilities layer.

The facilities sit between GeoNetworking/BTP and the applications:

* :mod:`repro.facilities.ca_service` -- Cooperative Awareness basic
  service with the EN 302 637-2 adaptive generation rules;
* :mod:`repro.facilities.den_service` -- Decentralized Environmental
  Notification basic service (trigger / update / cancel, repetition);
* :mod:`repro.facilities.ldm` -- the Local Dynamic Map store with
  area/type queries and subscriptions;
* :mod:`repro.facilities.station` -- an assembled ITS station (clock,
  NIC, router, CA, DEN, LDM), the building block for OBUs and RSUs.
"""

from repro.facilities.ldm import Ldm, LdmObject, ObjectKind
from repro.facilities.ca_service import CaBasicService, CaConfig, StationState
from repro.facilities.den_service import DenBasicService, DenConfig
from repro.facilities.station import ItsStation, SIM_EPOCH_UNIX
from repro.facilities.traffic_light import (
    SignalPhase,
    SignalPhaseService,
    TrafficLightController,
    two_phase_plan,
)

__all__ = [
    "CaBasicService",
    "CaConfig",
    "DenBasicService",
    "DenConfig",
    "ItsStation",
    "Ldm",
    "LdmObject",
    "ObjectKind",
    "SIM_EPOCH_UNIX",
    "SignalPhase",
    "SignalPhaseService",
    "StationState",
    "TrafficLightController",
    "two_phase_plan",
]
