"""Decentralized Environmental Notification basic service (EN 302 637-3).

Originator side: applications call :meth:`DenBasicService.trigger` /
``update`` / ``cancel``; the service allocates ActionIDs, GeoBroadcasts
the DENM into the relevance area, and optionally repeats the
transmission every ``repetition_interval`` for ``repetition_duration``
(repetition makes up for lost frames since broadcasts are unacked).

Receiver side: DENMs are classified as *new*, *update*, *repetition*
or *termination* per ActionID/referenceTime, stored as EVENT objects
in the LDM, and handed to application callbacks -- the vehicle's
Message Handler in the paper's architecture.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

from repro.facilities.ldm import Ldm, LdmObject, ObjectKind
from repro.geonet.btp import BtpPort
from repro.geonet.position import GeoPosition
from repro.geonet.router import CircularArea, GeoNetRouter
from repro.messages.denm import ActionId, Denm
from repro.net.frame import AccessCategory
from repro.sim.kernel import Simulator


@dataclasses.dataclass(frozen=True)
class DenConfig:
    """Service parameters."""

    #: Default GeoBroadcast relevance area radius (m).
    default_area_radius: float = 50.0
    #: Default validity of an event if the DENM does not carry one (s).
    default_validity: float = 600.0
    #: GBC hop limit for DENMs.
    hop_limit: int = 3


DenmCallback = Callable[[Denm, str], None]


@dataclasses.dataclass
class _OriginatedEvent:
    denm: Denm
    area: CircularArea
    repetition_interval: Optional[float]
    repetition_until: float
    cancelled: bool = False


class DenBasicService:
    """One station's DEN service (originator and receiver sides)."""

    def __init__(
        self,
        sim: Simulator,
        router: GeoNetRouter,
        ldm: Ldm,
        station_id: int,
        station_type: int,
        its_time: Callable[[], int],
        config: Optional[DenConfig] = None,
    ):
        self.sim = sim
        self.router = router
        self.ldm = ldm
        self.station_id = station_id
        self.station_type = station_type
        self.its_time = its_time
        self.config = config or DenConfig()
        self._next_sequence = 0
        self._originated: Dict[ActionId, _OriginatedEvent] = {}
        self._received: Dict[ActionId, int] = {}  # ActionId -> referenceTime
        self._callbacks: List[DenmCallback] = []
        self.denms_sent = 0
        self.denms_received = 0
        self.repetitions_sent = 0
        router.btp.register(BtpPort.DENM, self._on_payload)

    # ------------------------------------------------------------------
    # Originator side
    # ------------------------------------------------------------------

    def allocate_action_id(self) -> ActionId:
        """A fresh ActionID for this station."""
        action = ActionId(self.station_id, self._next_sequence)
        self._next_sequence = (self._next_sequence + 1) % 65536
        return action

    def trigger(
        self,
        denm: Denm,
        area: Optional[CircularArea] = None,
        repetition_interval: Optional[float] = None,
        repetition_duration: float = 0.0,
    ) -> ActionId:
        """Disseminate *denm* (built by the application).

        The DENM's ``action_id`` must come from
        :meth:`allocate_action_id` so this station owns the event.
        """
        if denm.action_id.station_id != self.station_id:
            raise ValueError(
                f"cannot originate event owned by station "
                f"{denm.action_id.station_id} from station {self.station_id}"
            )
        if area is None:
            area = CircularArea(
                center=GeoPosition(denm.event_position.latitude,
                                   denm.event_position.longitude),
                radius=self.config.default_area_radius,
            )
        event = _OriginatedEvent(
            denm=denm,
            area=area,
            repetition_interval=repetition_interval,
            repetition_until=self.sim.now + repetition_duration,
        )
        self._originated[denm.action_id] = event
        self._send(denm, area)
        if repetition_interval is not None and repetition_duration > 0:
            self.sim.schedule(repetition_interval,
                              lambda: self._repeat(denm.action_id))
        return denm.action_id

    def update(self, action_id: ActionId, denm: Denm) -> None:
        """Send an update for an originated event (new referenceTime)."""
        event = self._require_event(action_id)
        updated = dataclasses.replace(
            denm, action_id=action_id, reference_time=self.its_time())
        event.denm = updated
        self._send(updated, event.area)

    def cancel(self, action_id: ActionId) -> None:
        """Send a cancellation for an event this station originated."""
        event = self._require_event(action_id)
        event.cancelled = True
        cancellation = event.denm.terminate(
            reference_time=self.its_time(), termination="isCancellation")
        self._send(cancellation, event.area)

    def negate(self, denm: Denm) -> None:
        """Negate an event originated by *another* station."""
        negation = denm.terminate(
            reference_time=self.its_time(), termination="isNegation")
        area = CircularArea(
            center=GeoPosition(denm.event_position.latitude,
                               denm.event_position.longitude),
            radius=self.config.default_area_radius,
        )
        self._send(negation, area)

    def _require_event(self, action_id: ActionId) -> _OriginatedEvent:
        event = self._originated.get(action_id)
        if event is None:
            raise KeyError(f"unknown originated event {action_id}")
        return event

    def _send(self, denm: Denm, area: CircularArea) -> None:
        obs = self.sim.obs
        if obs is not None:
            with obs.profile("asn1.encode"):
                payload = denm.encode()
            obs.count("den.denms_sent", device=str(self.station_id))
        else:
            payload = denm.encode()
        self.router.send_gbc(
            payload, BtpPort.DENM, area,
            hop_limit=self.config.hop_limit,
            traffic_class=AccessCategory.AC_VO,
        )
        self.denms_sent += 1

    def _repeat(self, action_id: ActionId) -> None:
        event = self._originated.get(action_id)
        if event is None or event.cancelled:
            return
        if self.sim.now > event.repetition_until:
            return
        self._send(event.denm, event.area)
        self.repetitions_sent += 1
        assert event.repetition_interval is not None
        self.sim.schedule(event.repetition_interval,
                          lambda: self._repeat(action_id))

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------

    def on_denm(self, callback: DenmCallback) -> None:
        """Register ``callback(denm, classification)``.

        ``classification`` is one of ``"new"``, ``"update"``,
        ``"repetition"`` or ``"termination"``.
        """
        self._callbacks.append(callback)

    def _on_payload(self, payload: bytes, _context: object) -> None:
        obs = self.sim.obs
        if obs is not None:
            with obs.profile("asn1.decode"):
                denm = Denm.decode(payload)
            obs.count("den.denms_received", device=str(self.station_id))
        else:
            denm = Denm.decode(payload)
        self.denms_received += 1
        classification = self._classify(denm)
        if classification == "termination":
            self.ldm.remove(f"denm:{denm.action_id.station_id}"
                            f":{denm.action_id.sequence_number}")
        else:
            self._store(denm)
        for callback in self._callbacks:
            callback(denm, classification)

    def _classify(self, denm: Denm) -> str:
        if denm.is_termination:
            self._received.pop(denm.action_id, None)
            return "termination"
        last_reference = self._received.get(denm.action_id)
        self._received[denm.action_id] = denm.reference_time
        if last_reference is None:
            return "new"
        if denm.reference_time > last_reference:
            return "update"
        return "repetition"

    def _store(self, denm: Denm) -> None:
        validity = (denm.validity_duration
                    if denm.validity_duration is not None
                    else self.config.default_validity)
        self.ldm.put(LdmObject(
            key=(f"denm:{denm.action_id.station_id}"
                 f":{denm.action_id.sequence_number}"),
            kind=ObjectKind.EVENT,
            position=GeoPosition(denm.event_position.latitude,
                                 denm.event_position.longitude),
            timestamp=self.sim.now,
            valid_until=self.sim.now + validity,
            data=denm,
            source="denm",
            station_id=denm.action_id.station_id,
        ))

    def originated_events(self) -> Tuple[ActionId, ...]:
        """ActionIDs of the events this station currently originates."""
        return tuple(action for action, event in self._originated.items()
                     if not event.cancelled)
