"""The tie-permutation audit: re-run a scenario under every tie-break
policy and demand bit-identical results.

A run whose measurements are a pure function of the scenario and seed
must not care how the kernel orders events that share a timestamp.
This module makes that claim testable: :func:`run_tie_audit` executes
the same :class:`~repro.core.blind_corner.BlindCornerScenario` under
``fifo``, ``lifo`` and ``seeded`` tie-break policies with the
:class:`~repro.sim.tie_audit.TieAudit` seam installed, hashes each
result to a canonical digest and reports whether every policy agreed
-- together with the same-timestamp site pairs actually observed at
runtime, which are the dynamic counterparts of the static SCH001
pairs (same ``path:line`` ids on both sides).

The static and dynamic halves close a loop: ``repro-testbed lint``
names the site pairs that *can* tie; ``repro-testbed tie-audit``
shows which of them *do* tie and proves (or refutes) that the tie is
benign for the scenario's measurements.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict, List, Optional, Tuple

from repro.core.blind_corner import (
    BlindCornerResult,
    BlindCornerScenario,
    BlindCornerTestbed,
)
from repro.sim.kernel import TIE_BREAK_POLICIES
from repro.sim.tie_audit import TieAudit


def _as_tuples(value: Any) -> Any:
    """JSON lists back to the tuples the scenario dataclass uses."""
    if isinstance(value, list):
        return tuple(_as_tuples(item) for item in value)
    return value


def result_digest(result: BlindCornerResult) -> str:
    """SHA-256 of the result's canonical JSON form.

    Uses sorted keys and exact float reprs so two results digest
    identically iff every measured field is bit-identical.
    """
    payload = json.dumps(result.to_dict(), sort_keys=True,
                         separators=(",", ":"), default=repr)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclasses.dataclass
class PolicyRun:
    """One scenario execution under one tie-break policy."""

    policy: str
    digest: str
    result: BlindCornerResult
    audit: TieAudit

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-serialisable form."""
        return {
            "policy": self.policy,
            "digest": self.digest,
            "result": self.result.to_dict(),
            "audit": self.audit.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "PolicyRun":
        """Rebuild from :meth:`to_dict` output."""
        return cls(policy=payload["policy"],
                   digest=payload["digest"],
                   result=BlindCornerResult.from_dict(
                       payload["result"]),
                   audit=TieAudit.from_dict(payload["audit"]))


@dataclasses.dataclass
class TieAuditReport:
    """The verdict of one tie-permutation audit."""

    scenario: BlindCornerScenario
    runs: List[PolicyRun]

    @property
    def identical(self) -> bool:
        """Whether every policy produced the same result digest."""
        return len({run.digest for run in self.runs}) <= 1

    @property
    def ties_observed(self) -> int:
        """Runtime ties in the reference (first-policy) run."""
        return self.runs[0].audit.ties if self.runs else 0

    def top_pairs(self, limit: int = 10
                  ) -> List[Tuple[str, str, int]]:
        """Most frequent tied site pairs in the reference run."""
        if not self.runs:
            return []
        return self.runs[0].audit.top_pairs(limit)

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-serialisable form."""
        return {
            "scenario": dataclasses.asdict(self.scenario),
            "identical": self.identical,
            "runs": [run.to_dict() for run in self.runs],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TieAuditReport":
        """Rebuild from :meth:`to_dict` output (``identical`` is
        recomputed from the run digests, not trusted)."""
        scenario = dict(payload["scenario"])
        for key in ("wall", "wall_leg", "camera_position"):
            if key in scenario:
                scenario[key] = _as_tuples(scenario[key])
        return cls(scenario=BlindCornerScenario(**scenario),
                   runs=[PolicyRun.from_dict(run)
                         for run in payload["runs"]])


def run_tie_audit(
        scenario: Optional[BlindCornerScenario] = None,
        policies: Tuple[str, ...] = TIE_BREAK_POLICIES,
) -> TieAuditReport:
    """Run *scenario* once per policy and compare result digests.

    The scenario's own ``tie_break`` field is overridden by each
    policy in turn; everything else (seed included) is held fixed,
    so any digest difference is attributable to tie order alone.
    """
    base = scenario or BlindCornerScenario()
    runs: List[PolicyRun] = []
    for policy in policies:
        sc = dataclasses.replace(base, tie_break=policy)
        audit = TieAudit()
        result = BlindCornerTestbed(sc, tie_audit=audit).run()
        runs.append(PolicyRun(policy=policy,
                              digest=result_digest(result),
                              result=result, audit=audit))
    return TieAuditReport(scenario=base, runs=runs)
