"""Fleet run/campaign results with canonical digests.

Every quantity here is simulation state -- no wall-clock, no pids --
so :meth:`FleetRunResult.to_dict` is a *canonical* form: serialising
the same run twice, on different worker counts or under different
kernel tie-break policies, yields byte-identical JSON.  The campaign
digest (SHA-256 over the sorted-key JSON of all runs) is the
bit-identity oracle the fleet test battery checks.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from typing import Any, Dict, List, Optional, Sequence, TYPE_CHECKING

from repro.core.fleet.scenario import FleetScenario, fleet_fingerprint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs import ObsAggregate


def _encode_float(value: float) -> object:
    """JSON-portable float: infinities become tagged strings."""
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


def _decode_float(value: object) -> float:
    """Inverse of :func:`_encode_float`."""
    if value == "inf":
        return math.inf
    if value == "-inf":
        return -math.inf
    return float(value)  # type: ignore[arg-type]


@dataclasses.dataclass
class FleetRunResult:
    """Everything one fleet run measures."""

    run_id: int
    seed: int
    n_obus: int
    n_rsus: int
    workload: str
    #: When the edge issued the warning (sim s).
    warning_time: float
    #: Warning -> first DENM at each OBU's web API (ms); None = never.
    denm_latency_ms: Dict[str, Optional[float]]
    #: OBUs the DENM reached within the run.
    denm_delivered: int
    cams_sent: int
    cams_received: int
    #: Medium frame counters (sent/delivered/lost_*).
    medium: Dict[str, int]
    #: DCC state transitions per station over the run.
    dcc_state_transitions: Dict[str, int]
    #: DCC state (as int) per station at the end of the run.
    dcc_final_state: Dict[str, int]
    #: 1 s channel busy ratio per station at the end of the run.
    cbr: Dict[str, float]
    #: Frames the DCC gates dropped fleet-wide (queue overflow).
    dcc_frames_dropped: int
    #: Workload verdict: SAFE | LATE | NO_STOP | PILE_UP | N_A.
    verdict: str
    #: Convoy: minimum inter-vehicle gap (m); inf when not applicable.
    min_gap: float
    collisions: int
    #: Participant vehicles that reached a standstill.
    halted: int

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON form (station maps sorted by name)."""
        return {
            "run_id": self.run_id,
            "seed": self.seed,
            "n_obus": self.n_obus,
            "n_rsus": self.n_rsus,
            "workload": self.workload,
            "warning_time": self.warning_time,
            "denm_latency_ms": {
                name: self.denm_latency_ms[name]
                for name in sorted(self.denm_latency_ms)},
            "denm_delivered": self.denm_delivered,
            "cams_sent": self.cams_sent,
            "cams_received": self.cams_received,
            "medium": {key: self.medium[key]
                       for key in sorted(self.medium)},
            "dcc_state_transitions": {
                name: self.dcc_state_transitions[name]
                for name in sorted(self.dcc_state_transitions)},
            "dcc_final_state": {
                name: self.dcc_final_state[name]
                for name in sorted(self.dcc_final_state)},
            "cbr": {name: self.cbr[name] for name in sorted(self.cbr)},
            "dcc_frames_dropped": self.dcc_frames_dropped,
            "verdict": self.verdict,
            "min_gap": _encode_float(self.min_gap),
            "collisions": self.collisions,
            "halted": self.halted,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FleetRunResult":
        """Rebuild a result serialised by :meth:`to_dict`."""
        return cls(
            run_id=int(data["run_id"]),
            seed=int(data["seed"]),
            n_obus=int(data["n_obus"]),
            n_rsus=int(data["n_rsus"]),
            workload=str(data["workload"]),
            warning_time=float(data["warning_time"]),
            denm_latency_ms={
                name: (None if value is None else float(value))
                for name, value in data["denm_latency_ms"].items()},
            denm_delivered=int(data["denm_delivered"]),
            cams_sent=int(data["cams_sent"]),
            cams_received=int(data["cams_received"]),
            medium={key: int(value)
                    for key, value in data["medium"].items()},
            dcc_state_transitions={
                name: int(value) for name, value
                in data["dcc_state_transitions"].items()},
            dcc_final_state={
                name: int(value) for name, value
                in data["dcc_final_state"].items()},
            cbr={name: float(value)
                 for name, value in data["cbr"].items()},
            dcc_frames_dropped=int(data["dcc_frames_dropped"]),
            verdict=str(data["verdict"]),
            min_gap=_decode_float(data["min_gap"]),
            collisions=int(data["collisions"]),
            halted=int(data["halted"]),
        )

    def latencies(self) -> List[float]:
        """The delivered DENM latencies (ms), station order."""
        return [value for _, value in sorted(self.denm_latency_ms.items())
                if value is not None]

    @property
    def delivered_fraction(self) -> float:
        """Share of OBUs the warning reached."""
        if not self.denm_latency_ms:
            return 0.0
        return self.denm_delivered / len(self.denm_latency_ms)

    @property
    def total_dcc_transitions(self) -> int:
        """DCC state transitions summed over the fleet."""
        return sum(self.dcc_state_transitions.values())

    @property
    def mean_cbr(self) -> float:
        """Fleet-mean end-of-run CBR."""
        if not self.cbr:
            return 0.0
        return sum(self.cbr.values()) / len(self.cbr)


def canonical_json(payload: Any) -> str:
    """The canonical JSON text digests are computed over."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def fleet_runs_digest(results: Sequence[FleetRunResult]) -> str:
    """SHA-256 over the canonical JSON of *results* in order."""
    text = canonical_json([result.to_dict() for result in results])
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclasses.dataclass
class FleetCampaignResult:
    """All runs of one fleet campaign, plus optional observability."""

    scenario: FleetScenario
    runs: List[FleetRunResult]
    obs: Optional["ObsAggregate"] = None

    def digest(self) -> str:
        """The campaign's canonical bit-identity digest."""
        return fleet_runs_digest(self.runs)

    def to_dict(self) -> Dict[str, Any]:
        """JSON form: scenario, runs, digest (obs excluded)."""
        return {
            "scenario": dataclasses.asdict(self.scenario),
            "fingerprint": fleet_fingerprint(self.scenario),
            "digest": self.digest(),
            "runs": [run.to_dict() for run in self.runs],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FleetCampaignResult":
        """Inverse of :meth:`to_dict` (the obs aggregate is not part
        of the canonical form and comes back as ``None``)."""
        scenario_fields = dict(payload["scenario"])
        scenario_fields["dcc_thresholds"] = tuple(
            scenario_fields["dcc_thresholds"])
        scenario = FleetScenario(**scenario_fields)
        result = cls(
            scenario=scenario,
            runs=[FleetRunResult.from_dict(run)
                  for run in payload["runs"]],
        )
        if payload.get("digest") not in (None, result.digest()):
            raise ValueError("fleet campaign digest mismatch: payload "
                             "does not reproduce its recorded digest")
        return result

    def mean_latency_ms(self) -> Optional[float]:
        """Mean delivered DENM latency across all runs (ms)."""
        values = [value for run in self.runs for value in run.latencies()]
        if not values:
            return None
        return sum(values) / len(values)

    def delivered_fraction(self) -> float:
        """Mean per-run share of OBUs the warning reached."""
        if not self.runs:
            return 0.0
        return (sum(run.delivered_fraction for run in self.runs)
                / len(self.runs))
