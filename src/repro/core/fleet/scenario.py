"""Fleet scenario configuration and builders.

The paper's testbed is one vehicle and one RSU on an idle channel;
its safety claims only matter under load.  A :class:`FleetScenario`
describes N OBUs and M RSUs sharing one ITS-G5 control channel:
every station runs the full stack (CA beaconing, EDCA contention,
DCC reacting to the measured CBR, GeoNetworking forwarding), and a
*workload* selects what the participant vehicles do while the rest
of the fleet is pure channel load:

* ``beacon`` -- every OBU is background traffic; the run measures
  pure DENM-under-load dissemination latency.
* ``convoy`` -- the first ``convoy_members`` OBUs form a platooning
  convoy (reusing the platoon extension's member model) that must
  emergency-stop on the DENM without a pile-up.
* ``blind_corner`` -- one protagonist OBU approaches an occluded
  conflict point and must stop on the warning; everyone else is load.

The defaults are tuned so a 32-OBU fleet genuinely congests the
channel: BPSK 1/2 (3 Mbit/s, the longest-airtime 802.11p mode),
10 Hz CAMs and 0 dBm transmit power over a 40 m miniature road put
the measured CBR above the first ETSI DCC threshold, so the reactive
gate actually transitions states during the run.
"""

from __future__ import annotations

import dataclasses

from repro.core.fingerprint import spec_fingerprint

#: Bump when fleet run semantics change; part of the fingerprint.
FLEET_FORMAT = 1

_WORKLOADS = ("beacon", "convoy", "blind_corner")


@dataclasses.dataclass(frozen=True)
class FleetScenario:
    """Parameters of one fleet-scale congestion experiment."""

    #: Fleet size: OBUs sharing the channel.
    n_obus: int = 16
    #: Roadside units spaced evenly along the road.
    n_rsus: int = 1
    #: "beacon" | "convoy" | "blind_corner" (see module doc).
    workload: str = "beacon"
    #: Road length the background fleet is placed along (m).
    road_length: float = 40.0
    #: Cruise speed of every vehicle (m/s).
    speed: float = 2.0
    #: Convoy workload: member count and spacing (m).
    convoy_members: int = 4
    convoy_spacing: float = 6.0
    desired_gap: float = 6.0
    #: Distance of the protagonist / convoy leader from the conflict
    #: point when the run starts (m).
    protagonist_start: float = 12.0
    #: Emergency deceleration of participant vehicles (m/s^2).
    brake_deceleration: float = 4.5
    #: When the edge triggers the DENM (s into the run).
    warning_after: float = 2.0
    #: Total simulated time (s).
    duration: float = 8.0
    #: Participant vehicles' OBU polling period (s).
    poll_interval: float = 0.02
    # --- Radio / channel ------------------------------------------------
    tx_power_dbm: float = 0.0
    path_loss_exponent: float = 2.8
    #: PHY data rate; BPSK 1/2 maximises airtime per CAM, which is what
    #: makes a 32-station fleet actually congest the channel.
    data_rate_bps: float = 3.0e6
    #: Energy-detection latency of the medium (s); > 0 makes tied MAC
    #: timer expiries collide order-independently (see WirelessMedium).
    cs_latency: float = 4e-6
    #: CAM generation rate per station (Hz; ETSI caps at 10).
    cam_rate_hz: float = 10.0
    # --- GeoNetworking / DEN -------------------------------------------
    gbc_hop_limit: int = 3
    denm_area_radius: float = 150.0
    #: DENM repetition period (s); 0 disables repetition.
    denm_repetition_interval: float = 0.2
    # --- DCC ------------------------------------------------------------
    dcc_enabled: bool = True
    #: CBR sampling period (s).  The ETSI default is 1 ms; fleet runs
    #: sample at 10 ms to keep kernel event volume proportionate to N.
    cbr_sample_period: float = 0.01
    #: DCC state thresholds, scaled to the miniature testbed: real
    #: ITS-G5 CAMs are a few hundred microseconds of airtime, so even
    #: 32 stations at 10 Hz peak near 10% CBR -- below the full-scale
    #: ETSI 0.19 first threshold.  These keep the reactive state
    #: machine exercised at the load the scale testbed can produce;
    #: the machine itself (single-step transitions, asymmetric
    #: windows, t_off table) is unchanged ETSI TS 102 687.
    dcc_thresholds: tuple = (0.03, 0.06, 0.10, 0.15)
    # --- Determinism ----------------------------------------------------
    seed: int = 1
    #: Kernel tie-break policy for same-timestamp events.  Fleet runs
    #: are bit-identical across all three policies by construction.
    tie_break: str = "fifo"

    def __post_init__(self) -> None:
        # Accept any sequence of thresholds, store canonically as a
        # tuple: a list-valued field (a JSON round-trip's natural
        # output) would break ==/hash against the constructed form
        # while fingerprinting identically -- the worst kind of
        # almost-equal.
        if not isinstance(self.dcc_thresholds, tuple):
            object.__setattr__(self, "dcc_thresholds",
                               tuple(self.dcc_thresholds))
        if self.n_obus < 1:
            raise ValueError(f"n_obus must be >= 1, got {self.n_obus}")
        if self.n_rsus < 1:
            raise ValueError(f"n_rsus must be >= 1, got {self.n_rsus}")
        if self.workload not in _WORKLOADS:
            raise ValueError(
                f"unknown workload {self.workload!r}; "
                f"choose from {_WORKLOADS}")
        if self.workload == "convoy" and self.convoy_members > self.n_obus:
            raise ValueError(
                f"convoy_members ({self.convoy_members}) cannot exceed "
                f"n_obus ({self.n_obus})")
        if self.duration <= self.warning_after:
            raise ValueError(
                f"duration ({self.duration}) must exceed warning_after "
                f"({self.warning_after})")
        if self.cam_rate_hz <= 0:
            raise ValueError(
                f"cam_rate_hz must be > 0, got {self.cam_rate_hz}")

    def with_seed(self, seed: int) -> "FleetScenario":
        """Copy with a different seed."""
        return dataclasses.replace(self, seed=seed)

    def to_dict(self) -> "dict":
        """Canonical JSON-serialisable form (every field, always).

        Delegates to :func:`dataclasses.asdict` so a new field can
        never be forgotten; the threshold tuple is emitted as a list
        so ``to_dict(x) == json.loads(json.dumps(to_dict(x)))``
        holds exactly.
        """
        data = dataclasses.asdict(self)
        data["dcc_thresholds"] = list(data["dcc_thresholds"])
        return data

    @classmethod
    def from_dict(cls, data: "dict") -> "FleetScenario":
        """Rebuild a scenario serialised by :meth:`to_dict`.

        Strict by design: every field is required and unknown keys
        are rejected, so a payload from a build with a different
        field set fails loudly instead of silently running with
        defaults (the stale-cache shape FPR002 exists to prevent).
        """
        names = {field.name for field in dataclasses.fields(cls)}
        unknown = set(data) - names
        if unknown:
            raise ValueError(
                f"unknown fleet-scenario field(s) {sorted(unknown)}")
        missing = names - set(data)
        if missing:
            raise ValueError(
                f"fleet-scenario payload is missing field(s) "
                f"{sorted(missing)}; re-export it with to_dict()")
        payload = dict(data)
        payload["dcc_thresholds"] = tuple(payload["dcc_thresholds"])
        return cls(**payload)


def fleet_fingerprint(scenario: FleetScenario) -> str:
    """A stable SHA-256 key for one fleet scenario (seed included).

    Delegates to the shared :func:`~repro.core.fingerprint.
    spec_fingerprint` helper; the hashed text is byte-identical to the
    pre-helper construction, so committed golden fixtures stay valid.
    """
    return spec_fingerprint("fleet", FLEET_FORMAT, {
        # detlint: ignore[FPR004] -- tie_break is deliberately cache-separating: fifo/lifo/seeded runs are proven bit-identical by the tie-audit, but cached entries must never mix policies (ARCHITECTURE.md §11)
        "scenario": dataclasses.asdict(scenario),
    })


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------


def beacon_fleet(n_obus: int = 16, n_rsus: int = 1,
                 seed: int = 1, **overrides) -> FleetScenario:
    """Pure beaconing load: every OBU is background traffic."""
    return FleetScenario(n_obus=n_obus, n_rsus=n_rsus, seed=seed,
                         workload="beacon", **overrides)


def convoy_fleet(n_obus: int = 16, n_rsus: int = 1,
                 convoy_members: int = 4, seed: int = 1,
                 **overrides) -> FleetScenario:
    """A platooning convoy embedded in a beaconing fleet."""
    return FleetScenario(n_obus=n_obus, n_rsus=n_rsus, seed=seed,
                         workload="convoy",
                         convoy_members=convoy_members, **overrides)


def blind_corner_fleet(n_obus: int = 16, n_rsus: int = 1,
                       seed: int = 1, **overrides) -> FleetScenario:
    """One protagonist approaching an occluded conflict point; the
    rest of the fleet is pure channel load."""
    return FleetScenario(n_obus=n_obus, n_rsus=n_rsus, seed=seed,
                         workload="blind_corner", **overrides)


def golden_scenario() -> FleetScenario:
    """The pinned 16-OBU / 2-RSU scenario behind the golden fixture."""
    return blind_corner_fleet(n_obus=16, n_rsus=2, seed=1)
