"""Fleet campaigns: many runs, many seeds, optional process pool.

Mirrors :mod:`repro.core.campaign` for fleet scenarios: run *i* gets
``base_seed + i`` and the runs execute either inline or sharded over a
``multiprocessing`` pool.  Results are canonical (see
:mod:`repro.core.fleet.result`), so the campaign digest is bit-identical
across worker counts -- the pool only changes *where* runs execute,
never what they compute.  Observability contexts are built per worker
and folded through the exactly-mergeable :class:`~repro.obs.ObsAggregate`
fold in sorted run order, same as the core engine.
"""

from __future__ import annotations

import dataclasses
from time import perf_counter
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from repro.core.fleet.result import FleetCampaignResult, FleetRunResult
from repro.core.fleet.scenario import FleetScenario
from repro.core.fleet.testbed import FleetTestbed

ProgressFn = Callable[[int, int, FleetRunResult], None]


def _execute_fleet_run(scenario: FleetScenario, run_id: int,
                       observe: bool,
                       ) -> Tuple[Dict[str, Any],
                                  Optional[Dict[str, Any]], float]:
    """Worker entry point: one fleet run, optionally instrumented.

    Returns the run's canonical dict (picklable), the worker-local
    observability context as a dict (or None), and the wall time.
    Module-level so a ``multiprocessing`` pool can pickle it.
    """
    started = perf_counter()
    obs_ctx = None
    if observe:
        from repro.obs import ObsContext

        obs_ctx = ObsContext()
    testbed = FleetTestbed(scenario, run_id=run_id, obs=obs_ctx)
    result = testbed.run()
    wall = perf_counter() - started
    obs_dict = None if obs_ctx is None else obs_ctx.to_dict()
    return result.to_dict(), obs_dict, wall


def run_fleet_campaign(
    scenario: Optional[FleetScenario] = None,
    runs: int = 3,
    base_seed: Optional[int] = None,
    workers: int = 1,
    progress: Optional[ProgressFn] = None,
    obs=None,
    backend: str = "pool",
    queue_dir: Optional[str] = None,
) -> FleetCampaignResult:
    """Run *runs* fleet experiments, seeds ``base_seed .. base_seed+runs-1``.

    With ``workers > 1`` runs shard across a process pool; the returned
    campaign is bit-identical to the serial one (runs are collected in
    run-id order and every run is self-contained).  Pass an
    :class:`~repro.obs.ObsAggregate` as *obs* to collect per-run
    observability; the pool path folds worker-local contexts through
    the exact merge.  ``backend="queue"`` runs the campaign on the
    durable work queue instead (see :mod:`repro.core.queue`), keeping
    its state under *queue_dir*; the fold is bit-identical either way.
    """
    from repro.core.campaign import BACKENDS

    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {BACKENDS}")
    if backend == "queue":
        from repro.core.queue.campaign import run_fleet_campaign_queue

        return run_fleet_campaign_queue(
            scenario, runs=runs, base_seed=base_seed, workers=workers,
            obs=obs, queue_dir=queue_dir)
    base = scenario or FleetScenario()
    if base_seed is None:
        base_seed = base.seed
    jobs = [(base.with_seed(base_seed + index), index + 1)
            for index in range(runs)]
    observe = obs is not None
    results: Dict[int, FleetRunResult] = {}
    observed: Dict[int, Tuple[Dict[str, Any], float]] = {}

    if workers > 1 and len(jobs) > 1:
        import multiprocessing

        context = multiprocessing.get_context("spawn")
        with context.Pool(processes=workers) as pool:
            async_results = {
                run_id: pool.apply_async(
                    _execute_fleet_run, (job_scenario, run_id, observe))
                for job_scenario, run_id in jobs
            }
            for run_id in sorted(async_results):
                run_dict, obs_dict, wall = async_results[run_id].get()
                result = FleetRunResult.from_dict(run_dict)
                results[run_id] = result
                if obs_dict is not None:
                    observed[run_id] = (obs_dict, wall)
                if progress is not None:
                    progress(run_id, len(jobs), result)
    else:
        for job_scenario, run_id in jobs:
            run_dict, obs_dict, wall = _execute_fleet_run(
                job_scenario, run_id, observe)
            result = FleetRunResult.from_dict(run_dict)
            results[run_id] = result
            if obs_dict is not None:
                observed[run_id] = (obs_dict, wall)
            if progress is not None:
                progress(run_id, len(jobs), result)

    if obs is not None:
        from repro.obs import ObsContext

        # Deterministic fold order regardless of completion order.
        for run_id in sorted(observed):
            obs_dict, wall = observed[run_id]
            obs.add_run(ObsContext.from_dict(obs_dict), wall)

    ordered = [results[run_id] for run_id in sorted(results)]
    return FleetCampaignResult(scenario=base, runs=ordered, obs=obs)


def run_fleet_sweep(
    sizes: Sequence[int],
    scenario: Optional[FleetScenario] = None,
    runs: int = 3,
    base_seed: Optional[int] = None,
    workers: int = 1,
    progress: Optional[ProgressFn] = None,
) -> Dict[int, FleetCampaignResult]:
    """One campaign per fleet size in *sizes* (same seeds throughout)."""
    base = scenario or FleetScenario()
    out: Dict[int, FleetCampaignResult] = {}
    for n_obus in sizes:
        sized = dataclasses.replace(base, n_obus=n_obus)
        out[n_obus] = run_fleet_campaign(
            sized, runs=runs, base_seed=base_seed, workers=workers,
            progress=progress)
    return out


__all__ = [
    "run_fleet_campaign",
    "run_fleet_sweep",
    "_execute_fleet_run",
]
