"""Fleet-scale scenarios: many OBUs, multiple RSUs, one channel."""

from repro.core.fleet.campaign import run_fleet_campaign, run_fleet_sweep
from repro.core.fleet.result import (
    FleetCampaignResult,
    FleetRunResult,
    canonical_json,
    fleet_runs_digest,
)
from repro.core.fleet.scenario import (
    FLEET_FORMAT,
    FleetScenario,
    beacon_fleet,
    blind_corner_fleet,
    convoy_fleet,
    fleet_fingerprint,
    golden_scenario,
)
from repro.core.fleet.testbed import FleetTestbed, run_fleet

__all__ = [
    "FLEET_FORMAT",
    "FleetCampaignResult",
    "FleetRunResult",
    "FleetScenario",
    "FleetTestbed",
    "beacon_fleet",
    "blind_corner_fleet",
    "canonical_json",
    "convoy_fleet",
    "fleet_fingerprint",
    "fleet_runs_digest",
    "golden_scenario",
    "run_fleet",
    "run_fleet_campaign",
    "run_fleet_sweep",
]
