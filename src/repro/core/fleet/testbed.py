"""The fleet testbed: N OBUs + M RSUs on one congested channel.

Every station runs the complete stack the two-station experiments
use -- CA beaconing through the GeoNet router, EDCA contention on the
shared :class:`~repro.net.medium.WirelessMedium`, a DCC gatekeeper
driven by its own measured CBR -- so congestion emerges from the
same mechanisms the paper's idle-channel runs exercise one at a time.

Determinism at fleet scale
--------------------------
A fleet run is bit-identical across kernel tie-break policies
(fifo/lifo/seeded) and across campaign worker counts, by four
mechanisms:

* every periodic process (CA checks, CBR sampling, DCC updates,
  vehicle ticks, the gap watcher) gets a per-station *phase offset*
  drawn from the ``fleet.offsets`` substream, so no two stations'
  timers ever share a kernel timestamp;
* the medium runs with a positive ``cs_latency``: stations whose MAC
  timers expire at the same instant all see an idle channel and
  collide, whatever order the kernel pops the tied events in;
* packet-error draws use :class:`~repro.net.medium.OrderFreeReception`
  (hashed per transmission and receiver) instead of a shared rng;
* GBC re-forward jitter is hashed from stable packet identity rather
  than drawn from the router's (order-sensitive) stream.

What remains tied -- e.g. several same-instant completions delivering
to disjoint per-station state -- is commutative by construction.
"""

from __future__ import annotations

import hashlib
import math
from typing import Any, Callable, Dict, List, Optional

from repro.core.fleet.result import FleetRunResult
from repro.core.fleet.scenario import FleetScenario
from repro.core.platoon import PlatoonMember, PlatoonScenario
from repro.facilities.ca_service import CaConfig
from repro.facilities.den_service import DenConfig
from repro.geonet.position import LocalFrame
from repro.geonet.router import FORWARD_JITTER, GnPacket
from repro.messages.common import StationType
from repro.net.dcc import DccGatekeeper, DccParameters
from repro.net.medium import OrderFreeReception, WirelessMedium
from repro.net.phy import PhyConfig
from repro.net.propagation import LinkBudget, LogDistancePathLoss
from repro.openc2x.http import HttpClient
from repro.openc2x.unit import OnBoardUnit, OpenC2XUnit, RoadSideUnit
from repro.sim.kernel import build_simulator
from repro.sim.randomness import RandomStreams
from repro.vehicle.message_handler import MessageHandler


def _order_free_jitter(seed: int, station: str,
                       ) -> Callable[[GnPacket], float]:
    """A GBC re-forward jitter keyed by stable packet identity."""

    def jitter(packet: GnPacket) -> float:
        key = (f"{seed}:fwd:{station}"
               f":{packet.source_position_vector.gn_address}"
               f":{packet.sequence_number}:{packet.hop_limit}")
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        unit = int.from_bytes(digest[:8], "little") / 2.0 ** 64
        return FORWARD_JITTER * unit

    return jitter


class FleetTestbed:
    """One instantiated fleet run."""

    def __init__(self, scenario: Optional[FleetScenario] = None,
                 run_id: int = 1, obs=None):
        self.scenario = sc = scenario or FleetScenario()
        self.run_id = run_id
        self.streams = RandomStreams(sc.seed)
        self.sim = build_simulator(sc.tie_break, self.streams)
        if obs is not None:
            obs.bind(self.sim)
        self.frame = LocalFrame()
        self.medium = WirelessMedium(
            # detlint: ignore[EFF006] -- pre-dates the fleet.* naming
            # scheme; renaming would shift every seeded draw and break
            # golden-trace bit-identity
            self.sim, self.streams.get("medium"),
            LinkBudget(path_loss=LogDistancePathLoss(
                exponent=sc.path_loss_exponent)),
            reception_draw=OrderFreeReception(sc.seed),
            cs_latency=sc.cs_latency)
        self._phy = PhyConfig(tx_power_dbm=sc.tx_power_dbm,
                              data_rate_bps=sc.data_rate_bps)
        self._den_config = DenConfig(
            default_area_radius=sc.denm_area_radius,
            hop_limit=sc.gbc_hop_limit)
        self._dcc_params = DccParameters(
            cbr_thresholds=tuple(sc.dcc_thresholds),
            sample_period=sc.cbr_sample_period)
        self._offsets = self.streams.get("fleet.offsets")
        self._cam_period = 1.0 / sc.cam_rate_hz

        self.rsus: List[RoadSideUnit] = []
        self.obus: List[OpenC2XUnit] = []
        self.members: List[PlatoonMember] = []
        self.handlers: List[MessageHandler] = []
        self.gates: Dict[str, DccGatekeeper] = {}
        self.warning_time: Optional[float] = None
        self._denm_first_rx: Dict[str, float] = {}
        self.min_gap = math.inf

        self._build_rsus()
        self._build_obus()

        self._client = HttpClient(self.sim,
                                  self.streams.get("fleet.edge.http"),
                                  name="fleet-edge")
        if sc.workload == "convoy" and len(self.members) >= 2:
            watch_u = float(self._offsets.uniform())
            self.sim.schedule(
                PlatoonMember.DT * (0.1 + 0.8 * watch_u),
                self._watch_gaps)

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------

    def _station_phases(self) -> Dict[str, float]:
        """Per-station timer phases; one fixed-order draw per station."""
        return {
            "ca": self._cam_period * (
                0.05 + 0.9 * float(self._offsets.uniform())),
            "dcc": self.scenario.cbr_sample_period * (
                0.05 + 0.9 * float(self._offsets.uniform())),
        }

    def _wire_station(self, unit: OpenC2XUnit, phases: Dict[str, float],
                      ) -> None:
        sc = self.scenario
        router = unit.station.router
        router.forward_jitter_fn = _order_free_jitter(sc.seed, unit.name)
        if sc.dcc_enabled:
            gate = DccGatekeeper(self.sim, unit.station.nic,
                                 self._dcc_params,
                                 start_offset=phases["dcc"])
            router.gate = gate
            self.gates[unit.name] = gate
        unit.on_event(
            lambda event, record, name=unit.name:
            self._on_unit_event(name, event, record))

    def _ca_config(self, phases: Dict[str, float]) -> CaConfig:
        # Fixed-rate beaconing: every station CAMs at cam_rate_hz
        # (DCC gate permitting), each on its own phase.
        return CaConfig(t_check=self._cam_period,
                        t_gen_cam_min=self._cam_period,
                        t_gen_cam_max=self._cam_period,
                        start_offset=phases["ca"])

    def _build_rsus(self) -> None:
        sc = self.scenario
        spacing = sc.road_length / sc.n_rsus
        for index in range(sc.n_rsus):
            phases = self._station_phases()
            x = (index + 0.5) * spacing
            rsu = RoadSideUnit(
                self.sim, self.medium, self.streams,
                name=f"rsu-{index}",
                station_id=900 + index,
                station_type=StationType.ROAD_SIDE_UNIT,
                position=lambda x=x: self.frame.to_geo(x, 4.0),
                phy=self._phy, is_rsu=True, local_frame=self.frame,
                ca_config=self._ca_config(phases),
                den_config=self._den_config)
            self._wire_station(rsu, phases)
            self.rsus.append(rsu)

    def _build_obus(self) -> None:
        sc = self.scenario
        participants = {"beacon": 0,
                        "convoy": sc.convoy_members,
                        "blind_corner": 1}[sc.workload]
        member_sc = PlatoonScenario(
            members=max(1, participants),
            spacing=sc.convoy_spacing,
            speed=sc.speed,
            desired_gap=sc.desired_gap,
            leader_distance=sc.protagonist_start,
            brake_deceleration=sc.brake_deceleration,
            poll_interval=sc.poll_interval,
            seed=sc.seed, tie_break=sc.tie_break)
        predecessor: Optional[PlatoonMember] = None
        for index in range(sc.n_obus):
            phases = self._station_phases()
            if index < participants:
                tick_u = float(self._offsets.uniform())
                member = PlatoonMember(
                    self.sim, member_sc, index,
                    x=sc.protagonist_start + index * sc.convoy_spacing,
                    predecessor=predecessor,
                    first_tick=PlatoonMember.DT * (0.1 + 0.8 * tick_u))
                predecessor = member
                self.members.append(member)
                position = self._member_position(member)
                dynamics = self._member_dynamics(member)
            else:
                x0 = sc.road_length * float(self._offsets.uniform())
                direction = 1.0 if index % 2 == 0 else -1.0
                lane_y = 0.6 if direction > 0 else 1.2
                heading = 90.0 if direction > 0 else 270.0
                # Background vehicles move analytically (no tick
                # events): position is a pure function of sim time.
                position = self._background_position(x0, direction, lane_y)
                dynamics = self._background_dynamics(heading)
            unit = OnBoardUnit(
                self.sim, self.medium, self.streams,
                name=f"obu-{index}",
                station_id=101 + index,
                station_type=StationType.PASSENGER_CAR,
                position=position,
                dynamics=dynamics,
                phy=self._phy, local_frame=self.frame,
                ca_config=self._ca_config(phases),
                den_config=self._den_config)
            self._wire_station(unit, phases)
            if index < participants:
                handler = MessageHandler(
                    self.sim, unit.http, self.members[index],
                    # detlint: ignore[EFF006] -- pre-dates the fleet.*
                    # naming scheme; the name feeds seeded draw
                    # identity, so renaming breaks golden traces
                    rng=self.streams.get(f"handler.{index}"),
                    poll_interval=sc.poll_interval)
                self.handlers.append(handler)
            self.obus.append(unit)

    def _member_position(self, member: PlatoonMember,
                         ) -> Callable[[], Any]:
        def position() -> Any:
            return self.frame.to_geo(*member.position())
        return position

    def _member_dynamics(self, member: PlatoonMember,
                         ) -> Callable[[], tuple]:
        def dynamics() -> tuple:
            return (member.speed, 270.0)
        return dynamics

    def _background_position(self, x0: float, direction: float,
                             lane_y: float) -> Callable[[], Any]:
        def position() -> Any:
            x = x0 + direction * self.scenario.speed * self.sim.now
            return self.frame.to_geo(x, lane_y)
        return position

    def _background_dynamics(self, heading: float,
                             ) -> Callable[[], tuple]:
        def dynamics() -> tuple:
            return (self.scenario.speed, heading)
        return dynamics

    # ------------------------------------------------------------------
    # Warning path and measurement hooks
    # ------------------------------------------------------------------

    def _event_xy(self) -> tuple:
        if self.scenario.workload == "beacon":
            return (self.scenario.road_length / 2.0, 0.0)
        return (0.0, 0.0)  # the conflict point participants drive at

    def _issue_warning(self) -> None:
        sc = self.scenario
        self.warning_time = self.sim.now
        event_geo = self.frame.to_geo(*self._event_xy())
        body: Dict[str, Any] = {
            "causeCode": 97,
            "subCauseCode": 1,
            "latitude": event_geo.latitude,
            "longitude": event_geo.longitude,
            "areaRadius": sc.denm_area_radius,
            "validityDuration": 10,
        }
        if sc.denm_repetition_interval > 0.0:
            body["repetitionInterval"] = sc.denm_repetition_interval
            body["repetitionDuration"] = sc.duration
        self._client.post(self.rsus[0].http, "/trigger_denm", body)

    def _on_unit_event(self, name: str, event: str,
                       record: Dict[str, Any]) -> None:
        if event != "denm_received" or name in self._denm_first_rx:
            return
        received_at = float(record["sim_time"])
        self._denm_first_rx[name] = received_at
        obs = self.sim.obs
        if obs is not None and self.warning_time is not None:
            obs.observe(
                "net.denm_latency_ms",
                (received_at - self.warning_time) * 1000.0,
                device=name)

    def _watch_gaps(self) -> None:
        for ahead, behind in zip(self.members, self.members[1:]):
            gap = behind.x - ahead.x - 0.53
            self.min_gap = min(self.min_gap, gap)
        self.sim.schedule(PlatoonMember.DT, self._watch_gaps)  # detlint: ignore[SCH001] -- read-only observer of member.x; members pull state via catch-up at use time, and the fleet determinism suite proves bit-identity under all tie-break policies

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def run(self) -> FleetRunResult:
        """Simulate the scenario and collect the run's measurements."""
        sc = self.scenario
        self.sim.schedule(sc.warning_after, self._issue_warning)
        self.sim.run_until(sc.duration)
        assert self.warning_time is not None

        latency_ms: Dict[str, Optional[float]] = {}
        for unit in self.obus:
            received = self._denm_first_rx.get(unit.name)
            latency_ms[unit.name] = (
                None if received is None
                else (received - self.warning_time) * 1000.0)
        delivered = sum(1 for value in latency_ms.values()
                        if value is not None)
        all_units: List[OpenC2XUnit] = [*self.rsus, *self.obus]
        verdict, min_gap, collisions, halted = self._verdict()
        return FleetRunResult(
            run_id=self.run_id,
            seed=sc.seed,
            n_obus=sc.n_obus,
            n_rsus=sc.n_rsus,
            workload=sc.workload,
            warning_time=self.warning_time,
            denm_latency_ms=latency_ms,
            denm_delivered=delivered,
            cams_sent=sum(u.station.ca.cams_sent for u in all_units),
            cams_received=sum(u.station.ca.cams_received
                              for u in all_units),
            medium=self.medium.stats(),
            dcc_state_transitions={
                name: gate.state_transitions
                for name, gate in self.gates.items()},
            dcc_final_state={name: int(gate.state)
                             for name, gate in self.gates.items()},
            cbr={name: gate.monitor.cbr(1.0)
                 for name, gate in self.gates.items()},
            dcc_frames_dropped=sum(gate.frames_dropped
                                   for gate in self.gates.values()),
            verdict=verdict,
            min_gap=min_gap,
            collisions=collisions,
            halted=halted,
        )

    def _verdict(self) -> tuple:
        sc = self.scenario
        if sc.workload == "beacon":
            return "N_A", math.inf, 0, 0
        halted = sum(1 for m in self.members
                     if m.outcome.halted_at is not None)
        if sc.workload == "convoy":
            collisions = sum(
                1 for ahead, behind in zip(self.members, self.members[1:])
                if behind.x - ahead.x - 0.53 <= 0.0)
            if halted < len(self.members):
                verdict = "NO_STOP"
            elif collisions > 0:
                verdict = "PILE_UP"
            else:
                verdict = "SAFE"
            return verdict, self.min_gap, collisions, halted
        # blind_corner: one protagonist; crossing x=0 means entering
        # the occluded conflict point.
        protagonist = self.members[0]
        if protagonist.outcome.halted_at is None:
            verdict = "NO_STOP"
        elif protagonist.outcome.stop_position > 0.0:
            verdict = "SAFE"
        else:
            verdict = "LATE"
        return verdict, math.inf, 0, halted


def run_fleet(scenario: Optional[FleetScenario] = None,
              run_id: int = 1) -> FleetRunResult:
    """Build and run one fleet experiment."""
    return FleetTestbed(scenario, run_id=run_id).run()
