"""The frozen-config catalogue behind the fingerprint battery.

The FPR rules prove the serialization discipline *statically*; this
registry is the hook for proving it *dynamically*.  Every frozen
config that feeds a cache fingerprint registers here with its
canonical serialize/deserialize pair, its fingerprint function and a
worked example, and ``tests/test_fingerprint_battery.py`` then
proves, for each one:

* the JSON-text round trip is exact (``deserialize(json.loads(
  json.dumps(serialize(x)))) == x``), and
* perturbing any single field changes both the serialized payload
  and the fingerprint -- or the field carries a written exemption
  saying why it legitimately cannot.

A config class added without a registry entry is caught by the
battery's coverage test; a field added without surviving the round
trip or reaching the fingerprint is caught by the per-field sweep.
That is the runtime cross-check of FPR001-FPR004.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Callable, Dict, Mapping, Tuple

from repro.core.campaign import scenario_fingerprint
from repro.core.fleet.scenario import FleetScenario, fleet_fingerprint
from repro.core.scenario import EmergencyBrakeScenario, scenario_from_dict
from repro.faults.plan import CameraBlackout, FaultPlan
from repro.vary.space import (
    BooleanAxis,
    CategoricalAxis,
    Constraint,
    ContinuousAxis,
    IntAxis,
    VariationSpec,
)


@dataclasses.dataclass(frozen=True)
class RegisteredConfig:
    """One frozen config's battery contract."""

    #: Catalogue key ("fleet-scenario"); one class may register
    #: several examples (the two constraint shapes do).
    name: str
    cls: type
    #: A representative, valid instance.
    example: Any
    #: Canonical instance -> JSON-serialisable payload.
    serialize: Callable[[Any], Dict[str, Any]]
    #: The strict inverse (raises on unknown/missing keys).
    deserialize: Callable[[Dict[str, Any]], Any]
    #: Instance -> stable cache key (spec_fingerprint or a wrapper).
    fingerprint: Callable[[Any], str]
    #: field -> replacement value, for fields whose generic
    #: perturbation would be invalid (validated enums, Optionals).
    alternatives: Mapping[str, Any] = dataclasses.field(
        default_factory=dict)
    #: field -> reason it cannot be perturbed *independently*
    #: (mutually exclusive field pairs); the paired example covers it.
    skip_fields: Mapping[str, str] = dataclasses.field(
        default_factory=dict)
    #: field -> reason its perturbation legitimately does NOT move
    #: the fingerprint.  Empty means every field must perturb it.
    fingerprint_exempt: Mapping[str, str] = dataclasses.field(
        default_factory=dict)

    def field_names(self) -> Tuple[str, ...]:
        """The example's dataclass field names, declaration order."""
        return tuple(field.name for field in
                     dataclasses.fields(self.cls))

    def perturbable_fields(self) -> Tuple[str, ...]:
        """Fields the battery must perturb one at a time."""
        return tuple(name for name in self.field_names()
                     if name not in self.skip_fields)

    def perturbed(self, field_name: str) -> Any:
        """The example with exactly *field_name* changed (valid)."""
        if field_name in self.alternatives:
            value = self.alternatives[field_name]
        else:
            value = perturb_value(getattr(self.example, field_name))
        return dataclasses.replace(self.example,
                                   **{field_name: value})


def perturb_value(value: Any) -> Any:
    """A generically different-but-same-shaped value.

    Deterministic and type-driven; fields whose domain is narrower
    than their type (validated enums, coupled pairs) register an
    explicit alternative instead.
    """
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value + 1
    if isinstance(value, float):
        return value + 1.0 if math.isfinite(value) else 1.0
    if isinstance(value, str):
        return value + "-alt"
    if isinstance(value, tuple):
        if not value:
            raise ValueError(
                "cannot generically perturb an empty tuple; "
                "register an alternative")
        return value + (value[-1],)
    if isinstance(value, dict):
        return {**value, "zz_alt": 1}
    if dataclasses.is_dataclass(value):
        first = dataclasses.fields(value)[0].name
        return dataclasses.replace(
            value, **{first: perturb_value(getattr(value, first))})
    raise ValueError(
        f"no generic perturbation for {type(value).__name__}; "
        f"register an alternative")


# ---------------------------------------------------------------------------
# Fingerprint adapters for configs keyed through a wrapper
# ---------------------------------------------------------------------------


def _plan_fingerprint(plan: FaultPlan) -> str:
    """A fault plan is keyed through the scenario it perturbs."""
    return scenario_fingerprint(EmergencyBrakeScenario(), plan)


_PROBE_AXES = (ContinuousAxis("speed", 0.1, 9.0),
               ContinuousAxis("gain", 0.1, 9.0))


def _axis_fingerprint(axis: Any) -> str:
    """An axis is keyed through the spec that carries it."""
    return VariationSpec(name="probe", family="emergency_brake",
                         axes=(axis,)).fingerprint()


def _constraint_fingerprint(constraint: Constraint) -> str:
    """A constraint is keyed through the spec that carries it."""
    return VariationSpec(name="probe", family="emergency_brake",
                         axes=_PROBE_AXES,
                         constraints=(constraint,)).fingerprint()


# ---------------------------------------------------------------------------
# The catalogue
# ---------------------------------------------------------------------------


def registered_configs() -> Tuple[RegisteredConfig, ...]:
    """Every registered frozen config, in catalogue order."""
    return (
        RegisteredConfig(
            name="brake-scenario",
            cls=EmergencyBrakeScenario,
            example=EmergencyBrakeScenario(),
            serialize=dataclasses.asdict,
            deserialize=scenario_from_dict,
            fingerprint=scenario_fingerprint,
            alternatives={
                "radio": "5g",
                "hazard_mode": "ldm",
                "tie_break": "lifo",
                "denm_repetition_interval": 0.2,
            },
        ),
        RegisteredConfig(
            name="fleet-scenario",
            cls=FleetScenario,
            example=FleetScenario(),
            serialize=FleetScenario.to_dict,
            deserialize=FleetScenario.from_dict,
            fingerprint=fleet_fingerprint,
            alternatives={
                "workload": "convoy",
                "tie_break": "lifo",
            },
        ),
        RegisteredConfig(
            name="fault-plan",
            cls=FaultPlan,
            example=FaultPlan(
                name="demo",
                faults=(CameraBlackout(start=1.0, duration=0.5),)),
            serialize=FaultPlan.to_dict,
            deserialize=FaultPlan.from_dict,
            fingerprint=_plan_fingerprint,
        ),
        RegisteredConfig(
            name="variation-spec",
            cls=VariationSpec,
            example=VariationSpec(
                name="demo",
                family="emergency_brake",
                axes=(ContinuousAxis("obu_poll_interval",
                                     0.01, 0.1),),
                constraints=(Constraint(lhs="obu_poll_interval",
                                        op="<", rhs_value=0.2),),
                base={"assessment_delay": 0.02},
                coverage_bins=4),
            serialize=VariationSpec.to_dict,
            deserialize=VariationSpec.from_dict,
            fingerprint=VariationSpec.fingerprint,
            alternatives={
                "family": "fleet",
                "axes": (ContinuousAxis("obu_poll_interval",
                                        0.01, 0.2),),
            },
        ),
        RegisteredConfig(
            name="continuous-axis",
            cls=ContinuousAxis,
            example=ContinuousAxis("speed", 0.5, 2.0),
            serialize=ContinuousAxis.to_dict,
            deserialize=ContinuousAxis.from_dict,
            fingerprint=_axis_fingerprint,
        ),
        RegisteredConfig(
            name="int-axis",
            cls=IntAxis,
            example=IntAxis("n_obus", 4, 32),
            serialize=IntAxis.to_dict,
            deserialize=IntAxis.from_dict,
            fingerprint=_axis_fingerprint,
        ),
        RegisteredConfig(
            name="categorical-axis",
            cls=CategoricalAxis,
            example=CategoricalAxis("workload",
                                    ("beacon", "convoy")),
            serialize=CategoricalAxis.to_dict,
            deserialize=CategoricalAxis.from_dict,
            fingerprint=_axis_fingerprint,
            alternatives={
                "choices": ("beacon", "blind_corner"),
            },
        ),
        RegisteredConfig(
            name="boolean-axis",
            cls=BooleanAxis,
            example=BooleanAxis("dcc_enabled"),
            serialize=BooleanAxis.to_dict,
            deserialize=BooleanAxis.from_dict,
            fingerprint=_axis_fingerprint,
        ),
        RegisteredConfig(
            name="constraint-literal",
            cls=Constraint,
            example=Constraint(lhs="speed", op="<", rhs_value=3.0),
            serialize=Constraint.to_dict,
            deserialize=Constraint.from_dict,
            fingerprint=_constraint_fingerprint,
            alternatives={"lhs": "gain", "op": "<="},
            skip_fields={
                "rhs_axis": "mutually exclusive with rhs_value; "
                            "the constraint-axis example perturbs "
                            "it",
            },
        ),
        RegisteredConfig(
            name="constraint-axis",
            cls=Constraint,
            example=Constraint(lhs="speed", op="<=",
                               rhs_axis="gain"),
            serialize=Constraint.to_dict,
            deserialize=Constraint.from_dict,
            fingerprint=_constraint_fingerprint,
            alternatives={"lhs": "gain", "op": "<",
                          "rhs_axis": "speed"},
            skip_fields={
                "rhs_value": "mutually exclusive with rhs_axis; "
                             "the constraint-literal example "
                             "perturbs it",
            },
        ),
    )


def registered_config(name: str) -> RegisteredConfig:
    """The catalogue entry called *name* (raises KeyError)."""
    for entry in registered_configs():
        if entry.name == name:
            return entry
    raise KeyError(name)


__all__ = [
    "RegisteredConfig",
    "perturb_value",
    "registered_config",
    "registered_configs",
]
