"""Content-addressed artifact store (the v5 run cache layout).

Generalises the flat one-file-per-fingerprint run cache of PRs 1-4
into a store any campaign backend can share:

* **Content addressing** -- the key *is* the SHA-256 scenario
  fingerprint (:func:`repro.core.campaign.scenario_fingerprint`), so
  a retried queue item, a pool worker and a cache-warm replay all
  land on the same entry and a recompute after a crash overwrites it
  with byte-identical content.
* **Sharded layout** -- entries live under
  ``<root>/objects/<key[:2]>/<key>.json`` so a campaign of thousands
  of points never piles every file into one directory.
* **Atomic writes** -- temp file + ``os.replace``, same guarantee as
  the old cache: a SIGKILLed worker can never leave a truncated
  entry that poisons the next reader.
* **Integrity verification on read** -- every entry embeds the
  SHA-256 of its canonical body; :meth:`ArtifactStore.get` recomputes
  and compares it, so silent corruption (partial disk writes, manual
  edits) degrades to a cache miss instead of a wrong result.

Entries written under an older :data:`CACHE_FORMAT` -- including the
flat v4 files, which the sharded layout never even looks at -- are
treated as misses and recomputed; the old files are left untouched.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Dict, List, Optional

from repro.core.fingerprint import canonical_json

#: Bump whenever the cache serialisation or run semantics change:
#: entries written under another version are treated as misses.
#: v2: fault plans fold into the fingerprint; the package version is
#: part of the payload.
#: v3: the kernel tie-break policy (``scenario.tie_break``) is a
#: scenario field and therefore part of the fingerprint.
#: v4: fingerprints go through the shared
#: :func:`~repro.core.fingerprint.spec_fingerprint` helper and carry
#: an optional *salt* (variation campaigns).
#: v5: entries move into the content-addressed
#: :class:`ArtifactStore` -- same content key, sharded
#: ``objects/<key[:2]>/`` layout, embedded SHA-256 body digest
#: verified on every read.  v4 flat entries are simply ignored
#: (recomputed, never rewritten or deleted).
CACHE_FORMAT = 5


def body_digest(body: Dict[str, Any]) -> str:
    """SHA-256 over the canonical JSON form of an artifact body."""
    return hashlib.sha256(
        canonical_json(body).encode("utf-8")).hexdigest()


class ArtifactStore:
    """A directory of content-addressed, integrity-checked artifacts.

    Bodies are plain JSON-serialisable dicts; the store wraps them in
    an envelope carrying :data:`CACHE_FORMAT` and the body's SHA-256
    and refuses to return anything whose envelope does not verify.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(os.path.join(root, "objects"), exist_ok=True)

    def path(self, key: str) -> str:
        """Where the entry for *key* lives (``objects/<k[:2]>/<k>.json``)."""
        shard = key[:2] if len(key) >= 2 else "_"
        return os.path.join(self.root, "objects", shard, f"{key}.json")

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The verified body stored under *key*, or None on any problem.

        Unreadable, unparsable, wrong-version or corrupt entries (the
        embedded digest no longer matches the body) are all misses.
        """
        try:
            with open(self.path(key), "r", encoding="utf-8") as handle:
                envelope = json.load(handle)
            if envelope.get("format") != CACHE_FORMAT:
                return None
            body = envelope["body"]
            if not isinstance(body, dict):
                return None
            if envelope.get("sha256") != body_digest(body):
                return None
            return body
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def put(self, key: str, body: Dict[str, Any]) -> str:
        """Store *body* under *key* atomically; returns the entry path."""
        target = self.path(key)
        directory = os.path.dirname(target)
        os.makedirs(directory, exist_ok=True)
        envelope = {"format": CACHE_FORMAT,
                    "sha256": body_digest(body),
                    "body": body}
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(envelope, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, target)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        return target

    def has(self, key: str) -> bool:
        """Whether a *verified* entry exists for *key*."""
        return self.get(key) is not None

    def keys(self) -> List[str]:
        """All stored keys, sorted (verified or not)."""
        objects = os.path.join(self.root, "objects")
        found = []
        for shard in sorted(os.listdir(objects)):
            shard_dir = os.path.join(objects, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json"):
                    found.append(name[:-len(".json")])
        return found


__all__ = ["ArtifactStore", "CACHE_FORMAT", "body_digest"]
