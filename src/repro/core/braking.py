"""Braking-distance analysis (Table III) and full-scale mapping.

Table III reports the distance travelled from detection to halt over
seven runs (avg 0.36 m, variance 0.0022 -- less than the 0.53 m
vehicle length).  The paper's outlook asks for models that "map
braking distances observed in the testbed to real-world ones" using
full-size parameters (stopping power, weight, frontal area); this
module provides both a physics-based full-scale braking model and the
Froude dynamic-similarity scaling between the 1/10 testbed and a
full-size vehicle.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Sequence

import numpy as np

#: Gravitational acceleration (m/s^2).
GRAVITY = 9.81

#: The testbed's geometric scale factor.
SCALE_FACTOR = 10.0


@dataclasses.dataclass(frozen=True)
class BrakingAnalysis:
    """Summary of a braking-distance population."""

    count: int
    mean: float
    variance: float
    minimum: float
    maximum: float
    #: Whether every run stopped within one vehicle length.
    within_vehicle_length: bool
    vehicle_length: float


def analyse_braking(distances: Sequence[float],
                    vehicle_length: float = 0.53) -> BrakingAnalysis:
    """Table III's summary row for a set of braking distances."""
    data = np.asarray(list(distances), dtype=float)
    if data.size == 0:
        raise ValueError("no braking distances to analyse")
    return BrakingAnalysis(
        count=int(data.size),
        mean=float(data.mean()),
        variance=float(data.var(ddof=0)),
        minimum=float(data.min()),
        maximum=float(data.max()),
        within_vehicle_length=bool((data < vehicle_length).all()),
        vehicle_length=vehicle_length,
    )


@dataclasses.dataclass(frozen=True)
class FullScaleVehicle:
    """Parameters of a full-size vehicle for the mapping model."""

    mass: float = 1500.0              # kg
    frontal_area: float = 2.2         # m^2
    drag_coefficient: float = 0.30    # dimensionless Cd
    friction_mu: float = 0.8          # tyre-road friction
    #: Brake-system response time before full force (s).
    brake_actuation_delay: float = 0.15

    @property
    def max_deceleration(self) -> float:
        """Friction-limited deceleration (m/s^2)."""
        return self.friction_mu * GRAVITY


#: Air density at sea level (kg/m^3).
AIR_DENSITY = 1.225


def full_scale_braking_distance(
    vehicle: FullScaleVehicle,
    speed: float,
    reaction_time: float = 0.0,
) -> float:
    """Stopping distance (m) of a full-size vehicle from *speed* (m/s).

    Integrates ``m dv/dt = -mu m g - 0.5 rho Cd A v^2`` (closed form)
    and adds the distance covered during *reaction_time* plus the
    brake actuation delay -- the role the network-aided warning
    latency plays at full scale.
    """
    if speed < 0:
        raise ValueError(f"speed must be non-negative, got {speed}")
    delay = reaction_time + vehicle.brake_actuation_delay
    reaction_distance = speed * delay
    if speed == 0:
        return reaction_distance
    # Closed form with quadratic drag:
    #   d = (m / (rho Cd A)) * ln(1 + rho Cd A v^2 / (2 mu m g))
    k = AIR_DENSITY * vehicle.drag_coefficient * vehicle.frontal_area
    mu_mg = vehicle.friction_mu * vehicle.mass * GRAVITY
    if k <= 0:
        braking = speed * speed / (2.0 * vehicle.max_deceleration)
    else:
        braking = (vehicle.mass / k) * math.log(
            1.0 + k * speed * speed / (2.0 * mu_mg))
    return reaction_distance + braking


def froude_scale_distance(testbed_distance: float,
                          scale: float = SCALE_FACTOR) -> float:
    """Map a testbed distance to full scale by Froude similarity.

    Under Froude scaling (matching the ratio of inertial to
    gravitational forces), lengths scale by ``scale`` and speeds by
    ``sqrt(scale)``; a 0.36 m stop at 1/10 corresponds to a 3.6 m
    stop at full size from ``sqrt(10)`` times the speed.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return testbed_distance * scale


def froude_scale_speed(testbed_speed: float,
                       scale: float = SCALE_FACTOR) -> float:
    """The full-scale speed corresponding to a testbed speed."""
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return testbed_speed * math.sqrt(scale)


def equivalent_friction(testbed_distance: float, testbed_speed: float,
                        latency: float = 0.0) -> float:
    """Back out the effective friction coefficient from a stop.

    Useful for relating the scale car's observed stopping power to
    full-size tyres: ``mu = v^2 / (2 g (d - v t_lat))``.
    """
    braking = testbed_distance - testbed_speed * latency
    if braking <= 0:
        raise ValueError(
            f"distance {testbed_distance} is covered entirely by the "
            f"latency gap ({testbed_speed * latency:.3f} m)")
    return testbed_speed * testbed_speed / (2.0 * GRAVITY * braking)
