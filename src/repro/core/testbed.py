"""The assembled ETSI ITS Collision Avoidance testbed (Figure 8).

One :class:`ScaleTestbed` is one experimental run: a fresh simulation
with the vehicle line-following towards the camera, the edge node
watching the Region of Interest, RSU and OBU on the shared 802.11p
channel, and the Message Handler polling the OBU.  Step events from
every device flow into a :class:`~repro.core.measurement.StepTimeline`;
:func:`run_campaign` repeats runs with different seeds to produce the
populations behind Table II, Table III and Figure 11.
"""

from __future__ import annotations

import dataclasses
import math
from typing import TYPE_CHECKING, Any, Dict, List, Optional

import numpy as np

from repro.core.measurement import RunMeasurement, StepTimeline, Steps
from repro.core.scenario import EmergencyBrakeScenario
from repro.geonet.position import LocalFrame
from repro.messages.common import StationType
from repro.net.medium import WirelessMedium
from repro.net.propagation import LinkBudget, LogDistancePathLoss
from repro.openc2x.unit import OnBoardUnit, RoadSideUnit
from repro.roadside.camera import SceneObject
from repro.roadside.edge_node import EdgeNode
from repro.sim.kernel import build_simulator
from repro.sim.randomness import RandomStreams
from repro.vehicle.message_handler import MessageHandler
from repro.vehicle.robot import RoboticVehicle
from repro.vehicle.dynamics import VehicleState
from repro.vehicle.track import StraightTrack

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs import ObsAggregate, ObsContext

#: Station identifiers used by the testbed.
OBU_STATION_ID = 101
RSU_STATION_ID = 900


class ScaleTestbed:
    """One instantiated run of the emergency-braking experiment."""

    #: Action-point watcher period (s).
    WATCH_PERIOD = 1e-3

    def __init__(self, scenario: Optional[EmergencyBrakeScenario] = None,
                 run_id: int = 0, trace: bool = False,
                 obs: Optional["ObsContext"] = None):
        self.scenario = scenario or EmergencyBrakeScenario()
        self.run_id = run_id
        sc = self.scenario
        self.streams = RandomStreams(sc.seed)
        self.sim = build_simulator(sc.tie_break, self.streams)
        if obs is not None:
            obs.bind(self.sim)
        self.tracer = None
        if trace:
            from repro.sim.trace import Tracer

            self.tracer = Tracer(self.sim)
        self.frame = LocalFrame()
        self.medium = WirelessMedium(
            self.sim, self.streams.get("medium"),
            LinkBudget(path_loss=LogDistancePathLoss()))
        self.timeline = StepTimeline()

        # --- Vehicle: drives from +x towards the camera at the origin.
        track = StraightTrack(direction=math.pi)
        run_rng = self.streams.get("run")
        cruise = sc.cruise_throttle * (
            1.0 + sc.throttle_jitter * float(run_rng.normal()))
        self.vehicle = RoboticVehicle(
            self.sim, self.streams,
            name="vehicle",
            track=track,
            params=sc.vehicle_params,
            initial_state=VehicleState(
                x=sc.start_distance,
                y=-sc.lateral_start_offset,
                heading=math.pi),
            camera_fps=15.0,
            cruise_throttle=cruise,
            ntp=sc.ntp,
        )

        obu_security, rsu_security = self._build_security() \
            if sc.secured else (None, None)

        # --- OBU rides on the vehicle.
        self.obu = OnBoardUnit(
            self.sim, self.medium, self.streams,
            name="obu",
            station_id=OBU_STATION_ID,
            station_type=StationType.PASSENGER_CAR,
            position=lambda: self.frame.to_geo(*self.vehicle.position),
            dynamics=lambda: (self.vehicle.speed,
                              self.vehicle.heading_degrees),
            ntp=sc.ntp,
            http_config=sc.obu_http,
            stack_config=sc.stack,
            local_frame=self.frame,
            security=obu_security,
        )

        # --- RSU next to the camera.
        self.rsu = RoadSideUnit(
            self.sim, self.medium, self.streams,
            name="rsu",
            station_id=RSU_STATION_ID,
            station_type=StationType.ROAD_SIDE_UNIT,
            position=lambda: self.frame.to_geo(0.0, 0.5),
            ntp=sc.ntp,
            http_config=sc.rsu_http,
            stack_config=sc.stack,
            is_rsu=True,
            local_frame=self.frame,
            security=rsu_security,
        )

        # --- Warning delivery path: the edge posts /trigger_denm to
        # the RSU (802.11p DENM) or, in the future-work comparison, to
        # an application server that bridges it over a 5G cell.
        if sc.radio == "its_g5":
            hazard_target = self.rsu.http
        elif sc.radio == "5g":
            hazard_target = self._build_5g_bridge()
        else:
            raise ValueError(f"unknown radio {sc.radio!r}")

        # --- Edge node: camera at the origin looking along +x.
        self.edge = EdgeNode(
            self.sim, self.streams,
            rsu_server=hazard_target,
            camera_position=(0.0, 0.0),
            camera_facing=0.0,
            camera_fps=sc.camera_fps,
            camera_fov=sc.camera_fov,
            ntp=sc.ntp,
            yolo_config=sc.yolo,
            hazard_config=sc.hazard_config(),
            local_frame=self.frame,
            ldm=self.rsu.station.ldm,
        )
        self._register_scene_objects()

        # --- Message Handler polling the OBU (or a push channel).
        self.handler = MessageHandler(
            self.sim, self.obu.http, self.vehicle.planner,
            rng=self.streams.get("handler"),
            poll_interval=sc.obu_poll_interval,
            enabled=not sc.obu_push,
        )
        if sc.obu_push:
            self.obu.subscribe_push(self._on_pushed_denm)

        # --- Measurement wiring.
        self.edge.on_event(self._on_edge_event)
        self.rsu.on_event(self._on_rsu_event)
        self.obu.on_event(self._on_obu_event)
        self.vehicle.on_event(self._on_vehicle_event)
        self._detection_odometer: Optional[float] = None
        self._action_point_odometer: Optional[float] = None
        self._detection_record: Dict[str, Any] = {}
        self.sim.schedule(self.WATCH_PERIOD, self._watch_action_point)

    # ------------------------------------------------------------------
    # Security (TS 103 097 ablation)
    # ------------------------------------------------------------------

    def _build_security(self):
        from repro.security import RootCa
        from repro.security.certificates import TrustStore
        from repro.security.entity import SecurityEntity

        pki_rng = self.streams.get("pki")
        root = RootCa(pki_rng)
        authority = root.issue_authority(pki_rng, "aa-testbed")
        entities = []
        for name in ("obu", "rsu"):
            store = TrustStore(root.certificate, root.keys)
            store.add_authority(authority, now=self.sim.now)
            entities.append(SecurityEntity(
                self.sim, authority, store,
                self.streams.get(f"security.{name}")))
        return tuple(entities)

    # ------------------------------------------------------------------
    # 5G bridge (future-work comparison)
    # ------------------------------------------------------------------

    def _build_5g_bridge(self):
        from repro.net.fiveg import FivegCell
        from repro.openc2x.http import HttpServer

        self.cell = FivegCell(self.sim, self.streams.get("fiveg"))
        self._app_station = self.cell.station("app-server")
        self._ue = self.cell.station("obu-ue")
        self._ue.on_receive(self._on_5g_warning)
        self.app_server = HttpServer(
            self.sim, self.streams.get("appserver.http"), "app-server",
            self.scenario.rsu_http)
        self.app_server.route("/trigger_denm", self._handle_5g_trigger)
        return self.app_server

    def _handle_5g_trigger(self, body):
        # Step 3 equivalent: the application server dispatches the
        # warning towards the vehicle.
        self.timeline.record(
            Steps.RSU_SENT, sim_time=self.sim.now,
            clock_time=self.rsu.station.clock.now())
        self._app_station.send("obu-ue", body, 200)
        return 200, {"status": "dispatched"}

    def _on_5g_warning(self, body, _latency):
        self.obu.inject_denm({
            "actionId": {"originatingStationID": RSU_STATION_ID,
                         "sequenceNumber": 0},
            "situation": {
                "causeCode": body.get("causeCode", 97),
                "subCauseCode": body.get("subCauseCode", 0),
            },
            "termination": None,
        })

    # ------------------------------------------------------------------
    # Scene
    # ------------------------------------------------------------------

    def _register_scene_objects(self) -> None:
        sc = self.scenario
        vehicle = self.vehicle

        def vehicle_position():
            return vehicle.position

        def vehicle_heading():
            return vehicle.dynamics.state.heading

        def vehicle_speed():
            return vehicle.speed

        self.edge.watch(SceneObject(
            name="protagonist-marker",
            kind=sc.vehicle_marker,
            position=vehicle_position,
            heading=vehicle_heading,
            speed=vehicle_speed,
        ))
        if sc.include_bare_vehicle:
            self.edge.watch(SceneObject(
                name="protagonist-chassis",
                kind="scale_vehicle",
                position=vehicle_position,
                heading=vehicle_heading,
                speed=vehicle_speed,
            ))

    # ------------------------------------------------------------------
    # Step recording
    # ------------------------------------------------------------------

    def distance_to_camera(self) -> float:
        """Current true camera-to-vehicle distance (m)."""
        x, y = self.vehicle.position
        return math.hypot(x, y)

    def _trace(self, category: str, event: str, **fields) -> None:
        if self.tracer is not None:
            self.tracer.log(category, event, **fields)

    def _on_pushed_denm(self, record: Dict[str, Any]) -> None:
        if record.get("termination") is not None:
            return
        self.vehicle.planner.emergency_stop(reason="denm-push")

    def _watch_action_point(self) -> None:
        if self.timeline.has(Steps.ACTION_POINT):
            return
        if self.distance_to_camera() <= self.scenario.action_distance:
            self._trace("steps", "action_point_crossed",
                        speed=self.vehicle.speed)
            self._action_point_odometer = self.vehicle.dynamics.odometer
            self.timeline.record(
                Steps.ACTION_POINT, sim_time=self.sim.now,
                speed=self.vehicle.speed)
            return
        self.sim.schedule(
            # detlint: ignore[SCH001] -- benign: the watcher pulls
            # vehicle state via catch-up reads, so tick order at
            # shared sim-times is immaterial
            self.WATCH_PERIOD, self._watch_action_point)

    def _on_edge_event(self, event: str, record: Dict[str, Any]) -> None:
        if event != "hazard_detected":
            return
        if self._detection_odometer is None:
            self._detection_odometer = self.vehicle.dynamics.odometer
            self._detection_record = record
        self._trace("steps", "hazard_detected",
                    label=record.get("label"),
                    estimated_distance=record.get("estimated_distance"))
        self.timeline.record(
            Steps.DETECTION,
            sim_time=record["sim_time"],
            clock_time=record["clock_time"],
            label=record.get("label"),
            estimated_distance=record.get("estimated_distance"),
            true_distance=record.get("true_distance"),
        )

    def _on_rsu_event(self, event: str, record: Dict[str, Any]) -> None:
        if event == "denm_sent":
            self._trace("steps", "denm_sent")
            self.timeline.record(
                Steps.RSU_SENT,
                sim_time=record["sim_time"],
                clock_time=record["clock_time"])

    def _on_obu_event(self, event: str, record: Dict[str, Any]) -> None:
        if event == "denm_received":
            self._trace("steps", "denm_received")
            self.timeline.record(
                Steps.OBU_RECEIVED,
                sim_time=record["sim_time"],
                clock_time=record["clock_time"])

    def _on_vehicle_event(self, event: str, record: Dict[str, Any]) -> None:
        if event == "actuators_commanded":
            self._trace("steps", "actuators_commanded")
            self.timeline.record(
                Steps.ACTUATORS,
                sim_time=record["sim_time"],
                clock_time=record["clock_time"])
        elif event == "vehicle_halted":
            self._trace("steps", "vehicle_halted",
                        x=record.get("x"), y=record.get("y"))
            self.timeline.record(
                Steps.HALTED,
                sim_time=record["sim_time"],
                clock_time=record["clock_time"],
                x=record.get("x"), y=record.get("y"))
            obs = self.sim.obs
            if obs is not None:
                actuators = self.timeline.get(Steps.ACTUATORS)
                if actuators is not None:
                    obs.record_span("vehicle.brake", actuators.sim_time,
                                    record["sim_time"], device="vehicle")
            self.sim.stop()

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    #: End-to-end spans derived from the step timeline after a run,
    #: named after the paper's Table II rows (see EXPERIMENTS.md).
    _E2E_SPANS = (
        ("e2e.detection_to_send", Steps.DETECTION, Steps.RSU_SENT),
        ("e2e.send_to_receive", Steps.RSU_SENT, Steps.OBU_RECEIVED),
        ("e2e.receive_to_actuation", Steps.OBU_RECEIVED, Steps.ACTUATORS),
        ("e2e.total", Steps.DETECTION, Steps.ACTUATORS),
        ("e2e.action_to_halt", Steps.ACTION_POINT, Steps.HALTED),
    )

    def _record_e2e_spans(self, obs: "ObsContext") -> None:
        for name, start_step, end_step in self._E2E_SPANS:
            start = self.timeline.get(start_step)
            end = self.timeline.get(end_step)
            if start is None or end is None:
                continue
            obs.record_span(name, start.sim_time, end.sim_time,
                            device="run")

    def run(self) -> RunMeasurement:
        """Execute the run and return its measurement."""
        obs = self.sim.obs
        if obs is None:
            self.sim.run_until(self.scenario.timeout)
        else:
            with obs.profile("run.total"):
                self.sim.run_until(self.scenario.timeout)
            self._record_e2e_spans(obs)
        measurement = RunMeasurement(run_id=self.run_id,
                                     timeline=self.timeline)
        action = self.timeline.get(Steps.ACTION_POINT)
        if action is not None:
            measurement.speed_at_action_point = action.detail.get(
                "speed", 0.0)
        detection = self.timeline.get(Steps.DETECTION)
        if detection is not None:
            measurement.detection_distance = detection.detail.get(
                "true_distance", 0.0)
            measurement.estimated_distance = detection.detail.get(
                "estimated_distance", 0.0)
        if self.timeline.has(Steps.HALTED):
            odometer = self.vehicle.dynamics.odometer
            if self._detection_odometer is not None:
                measurement.braking_distance = (
                    odometer - self._detection_odometer)
            if self._action_point_odometer is not None:
                measurement.distance_from_action_point = (
                    odometer - self._action_point_odometer)
            measurement.final_distance_to_camera = self.distance_to_camera()
            measurement.completed = self.timeline.complete
        return measurement


@dataclasses.dataclass
class CampaignResult:
    """A set of runs of the same scenario with different seeds."""

    scenario: EmergencyBrakeScenario
    runs: List[RunMeasurement]
    #: Aggregated observability data when the campaign ran with an
    #: :class:`~repro.obs.ObsAggregate`; None otherwise.
    obs: Optional["ObsAggregate"] = None

    def __post_init__(self) -> None:
        # Aggregation must not depend on completion order: parallel
        # campaigns stream results back as workers finish, so the
        # population is canonicalised by run_id before any statistic.
        self.runs = sorted(self.runs, key=lambda run: run.run_id)

    @property
    def completed_runs(self) -> List[RunMeasurement]:
        """Runs in which the whole chain executed."""
        return [run for run in self.runs if run.completed]

    def interval_samples(self, name: str, use_clock: bool = True,
                         ) -> np.ndarray:
        """All samples of one Table II row, in milliseconds."""
        values = []
        for run in self.completed_runs:
            intervals = run.intervals_ms(use_clock)
            value = intervals.get(name)
            if value is not None and not math.isnan(value):
                values.append(value)
        return np.asarray(values)

    def table2(self, use_clock: bool = True) -> Dict[str, Dict[str, float]]:
        """Table II: per-row samples and averages (ms)."""
        rows = {}
        for name in ("detection_to_send", "send_to_receive",
                     "receive_to_actuation", "total"):
            samples = self.interval_samples(name, use_clock)
            rows[name] = {
                "runs": [float(v) for v in samples],
                "avg": float(samples.mean()) if samples.size else float(
                    "nan"),
            }
        return rows

    def braking_distances(self) -> np.ndarray:
        """Table III: distance travelled from detection to halt (m)."""
        return np.asarray([run.braking_distance
                           for run in self.completed_runs])

    def total_delays_ms(self, use_clock: bool = True) -> np.ndarray:
        """The Figure 11 sample population (ms)."""
        return self.interval_samples("total", use_clock)

    def digest(self) -> str:
        """SHA-256 over the canonical run population.

        The bit-identity witness the backend-equivalence tests pin:
        two campaigns agree on every measurement of every run -- and
        hence on every derived statistic -- iff their digests match.
        Hashes the ordered run dicts only (not the observability
        aggregate, whose wall-clock stats are real measured times).
        """
        import hashlib

        from repro.core.fingerprint import canonical_json

        text = canonical_json([run.to_dict() for run in self.runs])
        return hashlib.sha256(text.encode("utf-8")).hexdigest()


def run_campaign(scenario: Optional[EmergencyBrakeScenario] = None,
                 runs: int = 5, base_seed: int = 1) -> CampaignResult:
    """Run *runs* independent repetitions of *scenario*, serially.

    Thin compatibility wrapper over the campaign execution engine
    (:func:`repro.core.campaign.run_campaign_parallel`), which also
    offers worker pools, disk caching and progress streaming.
    """
    from repro.core.campaign import run_campaign_parallel

    return run_campaign_parallel(scenario, runs=runs,
                                 base_seed=base_seed, workers=1)
