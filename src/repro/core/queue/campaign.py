"""Queue-backed campaigns: enqueue, drive workers, fold results.

The glue between the durable queue and the existing campaign
results.  Three layers:

* **Enqueue** -- :func:`enqueue_campaign` /
  :func:`enqueue_fleet_campaign` turn ``(scenario, seed)`` work into
  :class:`~repro.core.queue.backend.QueueItem` rows whose
  ``result_key`` is the run's content fingerprint (the very key the
  pool path caches under) and record the campaign metadata the fold
  needs to rebuild the result object.
* **Drive** -- :func:`run_campaign_queue` /
  :func:`run_fleet_campaign_queue` spawn N worker processes, monitor
  the queue (expiring lost leases, streaming progress, respawning
  dead workers while retry budget remains) and fold when every item
  is done or dead.
* **Fold** -- :func:`fold_queue_campaign` /
  :func:`fold_queue_fleet_campaign` stream completed artifacts out of
  the store *in run-id order* and rebuild the exact
  :class:`~repro.core.testbed.CampaignResult` /
  :class:`~repro.core.fleet.result.FleetCampaignResult` (and
  :class:`~repro.obs.ObsAggregate`) the serial and pool paths
  produce.

**The bit-identity argument.**  Every item describes a run that is a
pure function of its payload (deterministic DES per seed); its
artifact is stored under the content fingerprint of that payload, so
a crashed-and-retried item recomputes the byte-identical entry; the
fold consumes items sorted by ``(plan_index, run_id)`` -- a total
order fixed at enqueue time -- so completion order, lease
interleaving, worker count, placement and crash history are all
invisible to the folded bytes.  Dead-lettered items are *not*
silently dropped: folding an incomplete campaign raises
:class:`DeadLetterError` naming them.
"""

from __future__ import annotations

import dataclasses
import os
import tempfile
import time
from typing import Any, Callable, Dict, List, Optional, Set, TYPE_CHECKING

from repro.core.artifacts import ArtifactStore
from repro.core.queue.backend import (
    DEFAULT_LEASE_SECONDS,
    DEFAULT_MAX_ATTEMPTS,
    QueueItem,
    WorkQueue,
    item_identity,
)
from repro.core.queue.worker import (
    DEFAULT_POLL_SECONDS,
    WorkerConfig,
    work_loop,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.fleet.result import FleetCampaignResult
    from repro.core.fleet.scenario import FleetScenario
    from repro.core.campaign import ProgressCallback
    from repro.core.scenario import EmergencyBrakeScenario
    from repro.core.testbed import CampaignResult
    from repro.faults.plan import FaultPlan
    from repro.obs import ObsAggregate


class QueueCampaignError(RuntimeError):
    """A queue campaign could not run to completion."""


class DeadLetterError(QueueCampaignError):
    """Folding was refused because items dead-lettered.

    Carries the dead-letter section so callers can surface *which*
    items were lost instead of a truncated population.
    """

    def __init__(self, dead: List[Dict[str, Any]]) -> None:
        self.dead = dead
        ids = ", ".join(entry["item_id"][:12] for entry in dead)
        super().__init__(
            f"{len(dead)} item(s) exceeded their retry budget and "
            f"dead-lettered: {ids}; see `queue status` for the "
            f"dead_letter section")


#: Filenames inside a queue directory.
QUEUE_DB = "queue.sqlite"
STORE_DIR = "store"


def queue_paths(queue_dir: str,
                cache_dir: Optional[str] = None) -> Dict[str, str]:
    """Resolve the queue DB and store root inside *queue_dir*.

    With a *cache_dir* the artifact store points there instead, so a
    queue campaign shares the pool path's run cache.
    """
    return {
        "queue": os.path.join(queue_dir, QUEUE_DB),
        "store": cache_dir if cache_dir is not None
        else os.path.join(queue_dir, STORE_DIR),
    }


# ---------------------------------------------------------------------------
# Enqueue
# ---------------------------------------------------------------------------


def enqueue_campaign(
    queue: WorkQueue,
    scenario: "EmergencyBrakeScenario",
    runs: int,
    base_seed: int = 1,
    fault_plan: Optional["FaultPlan"] = None,
    observe: bool = False,
    cache_salt: Optional[str] = None,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    plan_index: int = 0,
) -> int:
    """Enqueue one emergency-brake campaign's ``(scenario, seed)`` items.

    Work item ``i`` runs ``scenario.with_seed(base_seed + i)`` as
    ``run_id = i + 1`` -- exactly the pool path's sharding.  The
    campaign metadata (scenario, seeds, family) is recorded on the
    queue so ``queue fold`` can rebuild the result without the
    caller's objects.  Returns how many items were newly inserted
    (re-enqueueing is idempotent).
    """
    from repro.core.campaign import scenario_fingerprint

    if runs < 0:
        raise ValueError(f"runs must be >= 0, got {runs}")
    if fault_plan is not None and fault_plan.is_empty:
        fault_plan = None
    plan_dict = None if fault_plan is None else fault_plan.to_dict()
    items: List[QueueItem] = []
    for index in range(runs):
        run_id = index + 1
        run_scenario = scenario.with_seed(base_seed + index)
        payload: Dict[str, Any] = {
            "scenario": dataclasses.asdict(run_scenario),
            "fault_plan": plan_dict,
            "run_id": run_id,
            "plan_index": plan_index,
            "observe": observe,
            "result_key": scenario_fingerprint(
                run_scenario, fault_plan, salt=cache_salt),
        }
        items.append(QueueItem(
            item_id=item_identity("brake", payload),
            kind="brake", payload=payload))
    queue.set_meta("campaign", {
        "family": "brake",
        "scenario": dataclasses.asdict(scenario),
        "runs": runs,
        "base_seed": base_seed,
        "observe": observe,
        "cache_salt": cache_salt,
    })
    return queue.enqueue(items, max_attempts=max_attempts)


def enqueue_fleet_campaign(
    queue: WorkQueue,
    scenario: "FleetScenario",
    runs: int,
    base_seed: Optional[int] = None,
    observe: bool = False,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
) -> int:
    """Enqueue one fleet campaign (mirrors ``run_fleet_campaign``)."""
    from repro.core.fleet.scenario import fleet_fingerprint

    if runs < 0:
        raise ValueError(f"runs must be >= 0, got {runs}")
    if base_seed is None:
        base_seed = scenario.seed
    items: List[QueueItem] = []
    for index in range(runs):
        run_id = index + 1
        run_scenario = scenario.with_seed(base_seed + index)
        payload: Dict[str, Any] = {
            # to_dict (not asdict): emits the threshold tuple as a
            # list, so the payload is a JSON fixed point and hashes
            # identically before and after a queue round trip.
            "scenario": run_scenario.to_dict(),
            "run_id": run_id,
            "plan_index": 0,
            "observe": observe,
            "result_key": fleet_fingerprint(run_scenario),
        }
        items.append(QueueItem(
            item_id=item_identity("fleet", payload),
            kind="fleet", payload=payload))
    queue.set_meta("campaign", {
        "family": "fleet",
        "scenario": scenario.to_dict(),
        "runs": runs,
        "base_seed": base_seed,
        "observe": observe,
    })
    return queue.enqueue(items, max_attempts=max_attempts)


# ---------------------------------------------------------------------------
# Drive
# ---------------------------------------------------------------------------


def drive_queue(
    queue: WorkQueue,
    queue_path: str,
    store_root: str,
    workers: int,
    lease_seconds: float = DEFAULT_LEASE_SECONDS,
    poll_seconds: float = DEFAULT_POLL_SECONDS,
    on_completed: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> None:
    """Run workers until every item is done or dead.

    ``workers == 1`` executes the loop in-process (fast, easy to
    debug); more workers spawn independent processes.  The monitor
    loop expires lost leases and respawns workers that died (SIGKILL
    included) while any item still has retry budget -- the queue's
    bounded ``attempts`` guarantees termination: every lease consumes
    an attempt, so items either complete or dead-letter.

    *on_completed* streams newly completed item rows (queue order
    within each poll) to the caller -- the progress seam.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    reported: Set[str] = set()

    def report_new() -> None:
        if on_completed is None:
            return
        for item in queue.items(state="done"):
            if item["item_id"] not in reported:
                reported.add(item["item_id"])
                on_completed(item)

    if workers == 1 or queue.unfinished() <= 1:
        work_loop(WorkerConfig(
            queue_path=queue_path, store_root=store_root,
            worker_id="w1", lease_seconds=lease_seconds,
            poll_seconds=poll_seconds))
        queue.expire()
        report_new()
        return

    import multiprocessing

    context = multiprocessing.get_context("spawn")

    def spawn(index: int) -> Any:
        config = WorkerConfig(
            queue_path=queue_path, store_root=store_root,
            worker_id=f"w{index}", lease_seconds=lease_seconds,
            poll_seconds=poll_seconds)
        process = context.Process(target=work_loop, args=(config,))
        process.start()
        return process

    procs = [spawn(index + 1) for index in range(workers)]
    respawned = 0
    # Bounded respawn budget: enough to re-cover every attempt the
    # queue itself allows, never an unbounded supervisor.
    max_respawns = workers * DEFAULT_MAX_ATTEMPTS
    try:
        while queue.unfinished() > 0:
            queue.expire()
            report_new()
            alive = [p for p in procs if p.is_alive()]
            if not alive and queue.unfinished() > 0:
                if respawned >= max_respawns:
                    raise QueueCampaignError(
                        f"all workers died and the respawn budget "
                        f"({max_respawns}) is exhausted with "
                        f"{queue.unfinished()} item(s) unfinished")
                respawned += 1
                procs.append(spawn(workers + respawned))
            time.sleep(poll_seconds)
        for process in procs:
            process.join(timeout=30.0)
    finally:
        for process in procs:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
    queue.expire()
    report_new()


# ---------------------------------------------------------------------------
# Fold
# ---------------------------------------------------------------------------


def _completed_bodies(queue: WorkQueue, store: ArtifactStore,
                      ) -> List[Dict[str, Any]]:
    """Completed item rows + verified bodies, in (plan, run_id) order.

    Raises :class:`DeadLetterError` when items dead-lettered and
    :class:`QueueCampaignError` when items are still unfinished or an
    artifact fails integrity verification (a done item whose result
    cannot be read back is a lost result, not a silent hole).
    """
    dead = queue.dead_letter()
    if dead:
        raise DeadLetterError(dead)
    unfinished = queue.unfinished()
    if unfinished:
        raise QueueCampaignError(
            f"{unfinished} item(s) still pending or leased; drive "
            f"the queue (queue work/drain) before folding")
    rows = queue.items(state="done")
    rows.sort(key=lambda item: (int(item["payload"]["plan_index"]),
                                int(item["payload"]["run_id"])))
    out: List[Dict[str, Any]] = []
    for item in rows:
        body = store.get(item["result_key"])
        if body is None:
            raise QueueCampaignError(
                f"artifact {item['result_key'][:12]} for item "
                f"{item['item_id'][:12]} is missing or failed "
                f"integrity verification")
        out.append({"item": item, "body": body})
    return out


def _fold_obs(completed: List[Dict[str, Any]],
              obs: Optional["ObsAggregate"]) -> None:
    """Fold stored per-run obs contexts in run order (exact merge)."""
    if obs is None:
        return
    from repro.obs import ObsContext

    for entry in completed:
        body = entry["body"]
        if body.get("obs") is not None:
            obs.add_run(ObsContext.from_dict(body["obs"]),
                        body.get("wall_s"))
        else:
            obs.add_cached()


def fold_queue_campaign(queue: WorkQueue, store: ArtifactStore,
                        obs: Optional["ObsAggregate"] = None,
                        ) -> "CampaignResult":
    """Rebuild the emergency-brake :class:`CampaignResult`.

    Streams completed artifacts out of the store in run-id order --
    the same canonical order the pool path sorts into -- so the
    result (measurements and, when instrumented, the folded
    aggregate) is byte-identical to ``workers=1``.
    """
    from repro.core.measurement import RunMeasurement
    from repro.core.scenario import scenario_from_dict
    from repro.core.testbed import CampaignResult

    meta = queue.get_meta("campaign")
    if meta is None or meta.get("family") != "brake":
        raise QueueCampaignError(
            "queue holds no brake campaign metadata; was it enqueued "
            "with enqueue_campaign()?")
    completed = _completed_bodies(queue, store)
    measurements: List[RunMeasurement] = []
    for entry in completed:
        measurement = RunMeasurement.from_dict(
            entry["body"]["measurement"])
        # The artifact pins (scenario, seed), not the campaign
        # position; rebind run_id exactly like a pool cache hit.
        measurement.run_id = int(entry["item"]["payload"]["run_id"])
        measurements.append(measurement)
    _fold_obs(completed, obs)
    return CampaignResult(
        scenario=scenario_from_dict(meta["scenario"]),
        runs=measurements, obs=obs)


def fold_queue_fleet_campaign(queue: WorkQueue, store: ArtifactStore,
                              obs: Optional["ObsAggregate"] = None,
                              ) -> "FleetCampaignResult":
    """Rebuild the :class:`FleetCampaignResult` (see brake fold)."""
    from repro.core.fleet.result import (
        FleetCampaignResult,
        FleetRunResult,
    )
    from repro.core.fleet.scenario import FleetScenario

    meta = queue.get_meta("campaign")
    if meta is None or meta.get("family") != "fleet":
        raise QueueCampaignError(
            "queue holds no fleet campaign metadata; was it enqueued "
            "with enqueue_fleet_campaign()?")
    completed = _completed_bodies(queue, store)
    runs = [FleetRunResult.from_dict(entry["body"]["run"])
            for entry in completed]
    _fold_obs(completed, obs)
    return FleetCampaignResult(
        scenario=FleetScenario.from_dict(meta["scenario"]),
        runs=runs, obs=obs)


# ---------------------------------------------------------------------------
# One-call drivers (what the backend="queue" switch lands on)
# ---------------------------------------------------------------------------


def run_campaign_queue(
    scenario: Optional["EmergencyBrakeScenario"] = None,
    runs: int = 5,
    base_seed: int = 1,
    workers: int = 1,
    cache_dir: Optional[str] = None,
    progress: Optional["ProgressCallback"] = None,
    fault_plan: Optional["FaultPlan"] = None,
    obs: Optional["ObsAggregate"] = None,
    cache_salt: Optional[str] = None,
    queue_dir: Optional[str] = None,
    lease_seconds: float = DEFAULT_LEASE_SECONDS,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
) -> "CampaignResult":
    """The queue-backed twin of ``run_campaign_parallel``.

    Enqueues the campaign into *queue_dir* (a fresh temporary
    directory when None), drives *workers* worker processes to
    completion -- surviving worker loss via lease expiry and bounded
    retries -- and folds the streamed results into the bit-identical
    :class:`CampaignResult`.  With a *cache_dir* the artifact store
    doubles as the shared run cache, so warm entries complete without
    simulating (reported as cached through *progress*).
    """
    from repro.core.campaign import RunOutcome
    from repro.core.measurement import RunMeasurement
    from repro.core.scenario import EmergencyBrakeScenario

    if workers == 0:
        workers = os.cpu_count() or 1
    scenario = scenario or EmergencyBrakeScenario()
    owns_dir = queue_dir is None
    if owns_dir:
        queue_dir = tempfile.mkdtemp(prefix="repro-queue-")
    assert queue_dir is not None
    paths = queue_paths(queue_dir, cache_dir)
    queue = WorkQueue(paths["queue"])
    try:
        total = runs
        enqueue_campaign(
            queue, scenario, runs=runs, base_seed=base_seed,
            fault_plan=fault_plan, observe=obs is not None,
            cache_salt=cache_salt, max_attempts=max_attempts)
        store = ArtifactStore(paths["store"])
        done = 0

        def on_completed(item: Dict[str, Any]) -> None:
            nonlocal done
            done += 1
            if progress is None:
                return
            body = store.get(item["result_key"])
            if body is None:
                return
            measurement = RunMeasurement.from_dict(body["measurement"])
            run_id = int(item["payload"]["run_id"])
            measurement.run_id = run_id
            seed = int(item["payload"]["scenario"]["seed"])
            progress(RunOutcome(run_id=run_id, seed=seed,
                                cached=bool(item["cached"]),
                                measurement=measurement),
                     done, total)

        if runs > 0:
            drive_queue(queue, paths["queue"], paths["store"],
                        workers=min(workers, max(1, runs)),
                        lease_seconds=lease_seconds,
                        on_completed=on_completed)
        return fold_queue_campaign(queue, store, obs=obs)
    finally:
        queue.close()


def run_fleet_campaign_queue(
    scenario: Optional["FleetScenario"] = None,
    runs: int = 3,
    base_seed: Optional[int] = None,
    workers: int = 1,
    obs: Optional["ObsAggregate"] = None,
    queue_dir: Optional[str] = None,
    lease_seconds: float = DEFAULT_LEASE_SECONDS,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
) -> "FleetCampaignResult":
    """The queue-backed twin of ``run_fleet_campaign``."""
    from repro.core.fleet.scenario import FleetScenario

    if workers == 0:
        workers = os.cpu_count() or 1
    base = scenario or FleetScenario()
    owns_dir = queue_dir is None
    if owns_dir:
        queue_dir = tempfile.mkdtemp(prefix="repro-queue-")
    assert queue_dir is not None
    paths = queue_paths(queue_dir)
    queue = WorkQueue(paths["queue"])
    try:
        enqueue_fleet_campaign(
            queue, base, runs=runs, base_seed=base_seed,
            observe=obs is not None, max_attempts=max_attempts)
        store = ArtifactStore(paths["store"])
        if runs > 0:
            drive_queue(queue, paths["queue"], paths["store"],
                        workers=min(workers, max(1, runs)),
                        lease_seconds=lease_seconds)
        return fold_queue_fleet_campaign(queue, store, obs=obs)
    finally:
        queue.close()


__all__ = [
    "DeadLetterError",
    "QUEUE_DB",
    "QueueCampaignError",
    "STORE_DIR",
    "drive_queue",
    "enqueue_campaign",
    "enqueue_fleet_campaign",
    "fold_queue_campaign",
    "fold_queue_fleet_campaign",
    "queue_paths",
    "run_campaign_queue",
    "run_fleet_campaign_queue",
]
