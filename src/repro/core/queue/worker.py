"""Queue workers: lease, execute deterministically, store, complete.

A worker is a plain loop over one :class:`~repro.core.queue.backend.
WorkQueue` and one :class:`~repro.core.artifacts.ArtifactStore`:
claim the oldest pending item, execute the deterministic run it
describes, write the result under its content key, mark the item
done.  Workers are interchangeable and crash-safe:

* the result key is the run's SHA-256 content fingerprint, so a
  retry after a crash recomputes the byte-identical artifact;
* a worker that dies mid-lease simply stops heartbeating -- the
  campaign driver's ``expire()`` requeues the item;
* a worker that comes back *after* its lease expired gets a False
  from ``complete()`` and abandons the item (double-lease guard);
* an item whose artifact already verifies in the store is completed
  without simulating (``cached``), which is both the warm-cache path
  and the crashed-between-store-and-complete recovery path.

``python -m repro.core.queue.worker`` (or ``repro-testbed queue
work``) runs one worker process; the campaign driver spawns them via
``multiprocessing``.  The *stall_after_lease* hook exists for the
crash/recovery test battery (CONTRIBUTING.md): it makes the worker
hold its Nth lease without completing it, giving tests and the CI
smoke job a deterministic window in which to SIGKILL it.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Dict, Optional, Tuple

from repro.core.artifacts import ArtifactStore
from repro.core.queue.backend import (
    DEFAULT_LEASE_SECONDS,
    LeasedItem,
    WorkQueue,
)

#: How long an idle worker sleeps between polls (seconds).
DEFAULT_POLL_SECONDS = 0.05


@dataclasses.dataclass(frozen=True)
class WorkerConfig:
    """Everything one worker process needs (picklable for spawn)."""

    queue_path: str
    store_root: str
    worker_id: str
    lease_seconds: float = DEFAULT_LEASE_SECONDS
    poll_seconds: float = DEFAULT_POLL_SECONDS
    #: Stop after completing this many items (None = until empty).
    max_items: Optional[int] = None
    #: Keep polling even when the queue looks finished (a daemon
    #: worker); the default exits once nothing is pending or leased.
    exit_when_empty: bool = True
    #: Crash-test hook: hold the Nth lease (1-based) for
    #: *stall_seconds* without completing it.  See CONTRIBUTING.md.
    stall_after_lease: Optional[int] = None
    stall_seconds: float = 3600.0


def execute_item(kind: str, payload: Dict[str, Any],
                 store: ArtifactStore) -> Tuple[str, bool]:
    """Run one work item; returns ``(result_key, cached)``.

    The result key comes from the payload (it is the run's content
    fingerprint, minted at enqueue time).  A verified artifact that
    already satisfies the item -- including the observability context
    when the item asks for one -- short-circuits the simulation.
    """
    key = str(payload["result_key"])
    observe = bool(payload.get("observe", False))
    body = store.get(key)
    if body is not None and "error" not in body:
        if not observe or body.get("obs") is not None:
            return key, True

    if kind == "brake":
        from repro.core.campaign import _execute_run
        from repro.core.scenario import scenario_from_dict
        from repro.faults.plan import FaultPlan

        scenario = scenario_from_dict(payload["scenario"])
        plan = None
        if payload.get("fault_plan") is not None:
            plan = FaultPlan.from_dict(payload["fault_plan"])
        obs_ctx = None
        if observe:
            from repro.obs import ObsContext

            obs_ctx = ObsContext()
        started = time.perf_counter()
        measurement = _execute_run(scenario, int(payload["run_id"]),
                                   plan, obs_ctx=obs_ctx)
        wall = time.perf_counter() - started
        body = {"kind": "brake", "measurement": measurement.to_dict()}
        if obs_ctx is not None:
            body["obs"] = obs_ctx.to_dict()
            body["wall_s"] = wall
    elif kind == "fleet":
        from repro.core.fleet.campaign import _execute_fleet_run
        from repro.core.fleet.scenario import FleetScenario

        scenario = FleetScenario.from_dict(payload["scenario"])
        run_dict, obs_dict, wall = _execute_fleet_run(
            scenario, int(payload["run_id"]), observe)
        body = {"kind": "fleet", "run": run_dict}
        if obs_dict is not None:
            body["obs"] = obs_dict
            body["wall_s"] = wall
    else:
        raise ValueError(f"unknown work item kind {kind!r}")
    store.put(key, body)
    return key, False


def _stall(seconds: float) -> None:
    """Hold the current lease without progress (crash-test hook)."""
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        time.sleep(min(0.5, seconds))


def work_loop(config: WorkerConfig) -> int:
    """One worker's whole life; returns how many items it completed.

    Exits when the queue has nothing pending or leased (unless
    configured as a daemon) or after *max_items* completions.  An
    execution error is reported through ``fail()`` -- the queue
    requeues or dead-letters the item -- and the loop continues, so
    one poison item cannot take the worker down with it.
    """
    queue = WorkQueue(config.queue_path)
    store = ArtifactStore(config.store_root)
    completed = 0
    leases_taken = 0
    try:
        while True:
            queue.expire()
            leased: Optional[LeasedItem] = queue.lease(
                config.worker_id, config.lease_seconds)
            if leased is None:
                if config.exit_when_empty and queue.unfinished() == 0:
                    return completed
                time.sleep(config.poll_seconds)
                continue
            leases_taken += 1
            if (config.stall_after_lease is not None
                    and leases_taken >= config.stall_after_lease):
                _stall(config.stall_seconds)
                # The lease almost certainly expired during the
                # stall; complete() below then refuses (the
                # double-lease guard) and the loop moves on.
            try:
                key, cached = execute_item(leased.kind, leased.payload,
                                           store)
            except Exception as error:
                queue.fail(config.worker_id, leased.item_id,
                           f"{type(error).__name__}: {error}")
                continue
            queue.heartbeat(config.worker_id, leased.item_id,
                            config.lease_seconds)
            if queue.complete(config.worker_id, leased.item_id, key,
                              cached=cached):
                completed += 1
            if (config.max_items is not None
                    and completed >= config.max_items):
                return completed
    finally:
        queue.close()


def run_worker(queue_path: str, store_root: str, worker_id: str,
               lease_seconds: float = DEFAULT_LEASE_SECONDS,
               poll_seconds: float = DEFAULT_POLL_SECONDS,
               max_items: Optional[int] = None,
               exit_when_empty: bool = True,
               stall_after_lease: Optional[int] = None,
               stall_seconds: float = 3600.0) -> int:
    """Convenience wrapper: build a :class:`WorkerConfig` and loop.

    Module-level with scalar arguments so ``multiprocessing`` spawn
    contexts (and the CLI) can use it directly.
    """
    return work_loop(WorkerConfig(
        queue_path=queue_path, store_root=store_root,
        worker_id=worker_id, lease_seconds=lease_seconds,
        poll_seconds=poll_seconds, max_items=max_items,
        exit_when_empty=exit_when_empty,
        stall_after_lease=stall_after_lease,
        stall_seconds=stall_seconds))


def main(argv: Optional[list] = None) -> int:
    """``python -m repro.core.queue.worker``: one worker process."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.core.queue.worker",
        description="one work-queue worker process")
    parser.add_argument("--queue", required=True,
                        help="queue SQLite file")
    parser.add_argument("--store", required=True,
                        help="artifact store root")
    parser.add_argument("--worker-id", required=True)
    parser.add_argument("--lease", type=float,
                        default=DEFAULT_LEASE_SECONDS)
    parser.add_argument("--poll", type=float,
                        default=DEFAULT_POLL_SECONDS)
    parser.add_argument("--max-items", type=int, default=None)
    parser.add_argument("--daemon", action="store_true",
                        help="keep polling after the queue empties")
    parser.add_argument("--stall-after-lease", type=int, default=None,
                        help="crash-test hook: hold the Nth lease "
                             "without completing it")
    parser.add_argument("--stall-seconds", type=float, default=3600.0)
    args = parser.parse_args(argv)
    completed = run_worker(
        args.queue, args.store, args.worker_id,
        lease_seconds=args.lease, poll_seconds=args.poll,
        max_items=args.max_items,
        exit_when_empty=not args.daemon,
        stall_after_lease=args.stall_after_lease,
        stall_seconds=args.stall_seconds)
    print(f"worker {args.worker_id}: completed {completed} items")
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    import sys

    sys.exit(main())
