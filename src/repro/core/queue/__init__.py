"""Durable work-queue campaign backend (``backend="queue"``).

The distributed half of the campaign engine: ``(scenario/point,
seed)`` work items are enqueued into a SQLite-backed
:class:`~repro.core.queue.backend.WorkQueue`, leased by N independent
worker processes with heartbeat-based lease expiry, retried/requeued
when a worker is lost mid-lease (bounded retries, then a dead-letter
state), and folded via streamed result merging into the same
:class:`~repro.core.testbed.CampaignResult` /
:class:`~repro.obs.ObsAggregate` the serial and process-pool paths
produce -- byte-identical regardless of worker count, placement,
crash history or lease interleaving.

Results land in the content-addressed
:class:`~repro.core.artifacts.ArtifactStore` under the same SHA-256
content keys as the run cache, so a retried item recomputes into the
identical entry and pool and queue campaigns share one cache.

See ARCHITECTURE.md §14 for the lease state machine and the
bit-identity argument; ``repro-testbed queue --help`` for the CLI.
"""

from repro.core.queue.backend import (
    DEFAULT_LEASE_SECONDS,
    DEFAULT_MAX_ATTEMPTS,
    LeasedItem,
    QueueItem,
    WorkQueue,
)
from repro.core.queue.campaign import (
    DeadLetterError,
    QueueCampaignError,
    enqueue_campaign,
    enqueue_fleet_campaign,
    fold_queue_campaign,
    fold_queue_fleet_campaign,
    run_campaign_queue,
    run_fleet_campaign_queue,
)
from repro.core.queue.worker import work_loop

__all__ = [
    "DEFAULT_LEASE_SECONDS",
    "DEFAULT_MAX_ATTEMPTS",
    "DeadLetterError",
    "LeasedItem",
    "QueueCampaignError",
    "QueueItem",
    "WorkQueue",
    "enqueue_campaign",
    "enqueue_fleet_campaign",
    "fold_queue_campaign",
    "fold_queue_fleet_campaign",
    "run_campaign_queue",
    "run_fleet_campaign_queue",
    "work_loop",
]
