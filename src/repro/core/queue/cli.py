"""The ``repro-testbed queue`` subcommand.

Operational surface of the durable work-queue backend
(:mod:`repro.core.queue`).  A queue directory holds one campaign's
whole durable state -- ``queue.sqlite`` plus the content-addressed
``store/`` -- so every action takes ``--dir``:

* ``enqueue`` -- populate the queue with one campaign's work items
  (idempotent: re-running after a crash never duplicates work);
* ``work`` -- run one worker process against the queue (the unit the
  crash tests SIGKILL);
* ``drain`` -- drive N workers until every item is done or dead;
* ``status`` -- print the canonical queue-status JSON (state counts,
  live leases, retries, and the ``dead_letter`` section);
* ``fold`` -- rebuild the campaign result from the store and print
  its digest (bit-identical to the serial and pool paths).

Example -- a crash-tolerant campaign in three terminals::

    repro-testbed queue enqueue --dir /tmp/q --runs 50 --seed 1
    repro-testbed queue drain --dir /tmp/q --workers 4
    repro-testbed queue fold --dir /tmp/q
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, Optional

from repro.core.queue.backend import (
    DEFAULT_LEASE_SECONDS,
    DEFAULT_MAX_ATTEMPTS,
    WorkQueue,
)
from repro.core.queue.campaign import (
    DeadLetterError,
    QueueCampaignError,
    drive_queue,
    enqueue_campaign,
    enqueue_fleet_campaign,
    fold_queue_campaign,
    fold_queue_fleet_campaign,
    queue_paths,
)
from repro.core.queue.worker import (
    DEFAULT_POLL_SECONDS,
    run_worker,
)


def _open_queue(args: argparse.Namespace) -> tuple:
    paths = queue_paths(args.dir)
    return WorkQueue(paths["queue"]), paths


def _dump(document: Dict[str, Any], path: Optional[str]) -> None:
    text = json.dumps(document, indent=2, sort_keys=True,
                      default=repr)
    if path:
        # A report for humans, not durable store state: a truncated
        # dump is harmless because the command is re-runnable.
        with open(path, "w",  # detlint: ignore[EFF001] -- report output, re-runnable, not store state
                  encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {path}", file=sys.stderr)
    else:
        print(text)


def cmd_enqueue(args: argparse.Namespace) -> int:
    queue, _ = _open_queue(args)
    try:
        if args.family == "fleet":
            from repro.core.fleet.scenario import FleetScenario

            inserted = enqueue_fleet_campaign(
                queue, FleetScenario(), runs=args.runs,
                base_seed=args.seed, observe=args.observe,
                max_attempts=args.max_attempts)
        else:
            from repro.core.scenario import EmergencyBrakeScenario

            inserted = enqueue_campaign(
                queue, EmergencyBrakeScenario(), runs=args.runs,
                base_seed=args.seed, observe=args.observe,
                max_attempts=args.max_attempts)
        counts = queue.counts()
    finally:
        queue.close()
    print(f"enqueued {inserted} new item(s) "
          f"({args.runs} requested) into {args.dir}; "
          f"queue now: {counts}")
    return 0


def cmd_work(args: argparse.Namespace) -> int:
    paths = queue_paths(args.dir)
    completed = run_worker(
        paths["queue"], paths["store"], args.worker_id,
        lease_seconds=args.lease, poll_seconds=args.poll,
        max_items=args.max_items,
        exit_when_empty=not args.daemon,
        stall_after_lease=args.stall_after_lease,
        stall_seconds=args.stall_seconds)
    print(f"worker {args.worker_id}: completed {completed} item(s)")
    return 0


def cmd_drain(args: argparse.Namespace) -> int:
    queue, paths = _open_queue(args)
    try:
        drive_queue(queue, paths["queue"], paths["store"],
                    workers=args.workers, lease_seconds=args.lease)
        counts = queue.counts()
        dead = queue.dead_letter()
    finally:
        queue.close()
    print(f"drained {args.dir}: {counts}")
    if dead:
        print(f"WARNING: {len(dead)} item(s) dead-lettered "
              f"(see `queue status`)", file=sys.stderr)
        return 1
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    queue, _ = _open_queue(args)
    try:
        document = queue.status()
    finally:
        queue.close()
    _dump(document, args.json)
    return 0


def cmd_fold(args: argparse.Namespace) -> int:
    from repro.core.artifacts import ArtifactStore

    queue, paths = _open_queue(args)
    try:
        meta = queue.get_meta("campaign")
        if meta is None:
            print("repro-testbed: error: queue holds no campaign "
                  "metadata (run `queue enqueue` first)",
                  file=sys.stderr)
            return 1
        store = ArtifactStore(paths["store"])
        try:
            if meta.get("family") == "fleet":
                fleet_result = fold_queue_fleet_campaign(queue, store)
                document = {
                    "family": "fleet",
                    "runs": len(fleet_result.runs),
                    "digest": fleet_result.digest(),
                }
            else:
                result = fold_queue_campaign(queue, store)
                document = {
                    "family": "brake",
                    "runs": len(result.runs),
                    "digest": result.digest(),
                }
        except DeadLetterError as error:
            print(f"repro-testbed: error: {error}", file=sys.stderr)
            return 1
        except QueueCampaignError as error:
            print(f"repro-testbed: error: {error}", file=sys.stderr)
            return 1
    finally:
        queue.close()
    _dump(document, args.json)
    return 0


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``queue`` action sub-parsers to *parser*."""
    actions = parser.add_subparsers(dest="queue_command",
                                    required=True)

    def add_dir(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--dir", required=True, metavar="QUEUE_DIR",
                         help="queue directory (queue.sqlite + store/)")

    enqueue_parser = actions.add_parser(
        "enqueue", help="populate the queue with campaign items "
                        "(idempotent)")
    add_dir(enqueue_parser)
    enqueue_parser.add_argument("--family",
                                choices=("brake", "fleet"),
                                default="brake",
                                help="campaign family")
    enqueue_parser.add_argument("--runs", type=int, default=5,
                                help="number of (scenario, seed) items")
    enqueue_parser.add_argument("--seed", type=int, default=1,
                                help="base seed (item i gets seed+i)")
    enqueue_parser.add_argument("--observe", action="store_true",
                                help="instrument every run "
                                     "(obs context stored per item)")
    enqueue_parser.add_argument("--max-attempts", type=int,
                                default=DEFAULT_MAX_ATTEMPTS,
                                help="leases before an item "
                                     "dead-letters")
    enqueue_parser.set_defaults(func=cmd_enqueue)

    work_parser = actions.add_parser(
        "work", help="run one worker process against the queue")
    add_dir(work_parser)
    work_parser.add_argument("--worker-id", required=True,
                             help="unique id for lease ownership")
    work_parser.add_argument("--lease", type=float,
                             default=DEFAULT_LEASE_SECONDS,
                             help="lease/heartbeat horizon (s)")
    work_parser.add_argument("--poll", type=float,
                             default=DEFAULT_POLL_SECONDS,
                             help="idle poll interval (s)")
    work_parser.add_argument("--max-items", type=int, default=None,
                             help="stop after N completions")
    work_parser.add_argument("--daemon", action="store_true",
                             help="keep polling after the queue "
                                  "empties")
    work_parser.add_argument("--stall-after-lease", type=int,
                             default=None, metavar="N",
                             help="crash-test hook: hold the Nth "
                                  "lease without completing it")
    work_parser.add_argument("--stall-seconds", type=float,
                             default=3600.0,
                             help="how long the stall hook holds")
    work_parser.set_defaults(func=cmd_work)

    drain_parser = actions.add_parser(
        "drain", help="drive N workers until done or dead "
                      "(exit 1 on dead letters)")
    add_dir(drain_parser)
    drain_parser.add_argument("--workers", type=int, default=1,
                              help="worker processes to run")
    drain_parser.add_argument("--lease", type=float,
                              default=DEFAULT_LEASE_SECONDS,
                              help="lease/heartbeat horizon (s)")
    drain_parser.set_defaults(func=cmd_drain)

    status_parser = actions.add_parser(
        "status", help="print the canonical queue-status JSON")
    add_dir(status_parser)
    status_parser.add_argument("--json", default=None, metavar="FILE",
                               help="write the document to FILE "
                                    "instead of stdout")
    status_parser.set_defaults(func=cmd_status)

    fold_parser = actions.add_parser(
        "fold", help="fold the completed items into the campaign "
                     "result and print its digest")
    add_dir(fold_parser)
    fold_parser.add_argument("--json", default=None, metavar="FILE",
                             help="write the summary to FILE "
                                  "instead of stdout")
    fold_parser.set_defaults(func=cmd_fold)


__all__ = [
    "add_arguments",
    "cmd_drain",
    "cmd_enqueue",
    "cmd_fold",
    "cmd_status",
    "cmd_work",
]
