"""The durable SQLite work queue: leases, retries, dead letters.

One :class:`WorkQueue` is one campaign's durable state, a single
SQLite file shared by every worker process (WAL journal, immediate
transactions, busy timeout).  The item life cycle is a small state
machine::

                enqueue
                   |
                   v            lease (atomic claim)
               [pending] ----------------------------> [leased]
                   ^                                      |  |
                   |   expire / fail, attempts < max      |  |
                   +--------------------------------------+  | complete
                   |                                         | (owner only)
                   |   expire / fail, attempts >= max        v
                   +----------------------------------->  [done]
                   |
                   v
                [dead]   (the dead-letter state: surfaced by
                          ``status()``, never silently dropped)

Leases carry a heartbeat deadline in *real* time (leases schedule
work; they never feed a simulation, whose clocks are all
``sim.now``).  ``expire()`` requeues items whose deadline passed --
the worker holding them is presumed lost -- and moves items out of
retries into ``dead``.  ``complete()`` and ``fail()`` only honour the
*current* lease owner, so a worker that stalled past its lease and
came back cannot double-complete an item that was re-leased to
someone else.

Determinism: nothing in this module touches simulation state.  Item
payloads describe deterministic runs, results are content-addressed,
and the fold (:mod:`repro.core.queue.campaign`) orders by run id --
so crash history, lease interleaving and worker placement can change
*when* and *where* an item runs, never what it computes.
"""

from __future__ import annotations

import dataclasses
import json
import os
import sqlite3
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, TYPE_CHECKING

from repro.core.fingerprint import canonical_json

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs import ObsContext

#: How long a lease lives without a heartbeat before ``expire()``
#: presumes the worker lost and requeues the item (seconds).
DEFAULT_LEASE_SECONDS = 30.0

#: How many leases an item may consume before it dead-letters.
DEFAULT_MAX_ATTEMPTS = 3

#: Item states (see the module docstring's state machine).
STATES = ("pending", "leased", "done", "dead")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS items (
    item_id        TEXT PRIMARY KEY,
    seq            INTEGER NOT NULL,
    kind           TEXT NOT NULL,
    payload        TEXT NOT NULL,
    state          TEXT NOT NULL DEFAULT 'pending',
    attempts       INTEGER NOT NULL DEFAULT 0,
    max_attempts   INTEGER NOT NULL,
    lease_owner    TEXT,
    lease_deadline REAL,
    completed_by   TEXT,
    cached         INTEGER,
    result_key     TEXT,
    last_error     TEXT
);
CREATE INDEX IF NOT EXISTS idx_items_state_seq ON items (state, seq);
"""


@dataclasses.dataclass(frozen=True)
class QueueItem:
    """One unit of work to enqueue: a deterministic run description."""

    #: Stable identity: SHA-256 over (kind, payload); enqueueing the
    #: same item twice is a no-op.
    item_id: str
    #: ``"brake"`` or ``"fleet"`` (what the worker will execute).
    kind: str
    #: Canonical JSON-serialisable run description (scenario dict,
    #: run_id, fold ordering, result_key, ...).
    payload: Dict[str, Any]


@dataclasses.dataclass(frozen=True)
class LeasedItem:
    """One claimed item: what to run and under which lease."""

    item_id: str
    kind: str
    payload: Dict[str, Any]
    attempts: int
    lease_deadline: float


def item_identity(kind: str, payload: Dict[str, Any]) -> str:
    """The stable item id: SHA-256 over the canonical (kind, payload)."""
    import hashlib

    text = canonical_json({"kind": kind, "payload": payload})
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class WorkQueue:
    """One campaign's durable queue state (a single SQLite file).

    Every worker process opens its own :class:`WorkQueue` on the same
    path; SQLite's locking makes claims atomic across processes.  A
    *clock* may be injected for tests (it must agree across the
    processes sharing the queue); the default is the host's epoch
    clock, which only ever schedules leases -- simulated results are
    functions of the item payload alone.
    """

    def __init__(self, path: str,
                 clock: Optional[Callable[[], float]] = None,
                 obs: Optional["ObsContext"] = None) -> None:
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        # Lease bookkeeping is real-time infrastructure, never
        # simulation input; time.time stays out of simulated paths.
        self._clock: Callable[[], float] = (
            clock if clock is not None else time.time)
        self.obs = obs
        self._db = sqlite3.connect(path, timeout=30.0)
        self._db.isolation_level = None  # explicit transactions only
        self._db.execute("PRAGMA busy_timeout = 30000")
        self._db.execute("PRAGMA journal_mode = WAL")
        self._db.execute("PRAGMA synchronous = NORMAL")
        self._db.executescript(_SCHEMA)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Close the underlying connection (the file stays durable)."""
        self._db.close()

    def __enter__(self) -> "WorkQueue":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _now(self, now: Optional[float]) -> float:
        return self._clock() if now is None else now

    def _count(self, name: str, amount: int = 1) -> None:
        if self.obs is not None:
            self.obs.count(name, float(amount))

    # ------------------------------------------------------------------
    # Campaign metadata
    # ------------------------------------------------------------------

    def set_meta(self, key: str, value: Any) -> None:
        """Attach one JSON-serialisable campaign metadata entry."""
        self._db.execute(
            "INSERT INTO meta (key, value) VALUES (?, ?) "
            "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
            (key, canonical_json(value)))

    def get_meta(self, key: str) -> Optional[Any]:
        """One metadata entry, or None when absent."""
        row = self._db.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)).fetchone()
        return None if row is None else json.loads(row[0])

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------

    def enqueue(self, items: Iterable[QueueItem],
                max_attempts: int = DEFAULT_MAX_ATTEMPTS) -> int:
        """Add *items* in order; already-known ids are skipped.

        Returns how many items were actually inserted.  Idempotent by
        item id, so re-running ``queue enqueue`` after a crash never
        duplicates work.
        """
        if max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {max_attempts}")
        inserted = 0
        self._db.execute("BEGIN IMMEDIATE")
        try:
            row = self._db.execute(
                "SELECT COALESCE(MAX(seq), 0) FROM items").fetchone()
            seq = int(row[0])
            for item in items:
                seq += 1
                cursor = self._db.execute(
                    "INSERT OR IGNORE INTO items "
                    "(item_id, seq, kind, payload, state, max_attempts) "
                    "VALUES (?, ?, ?, ?, 'pending', ?)",
                    (item.item_id, seq, item.kind,
                     canonical_json(item.payload), max_attempts))
                inserted += cursor.rowcount
            self._db.execute("COMMIT")
        except BaseException:
            self._db.execute("ROLLBACK")
            raise
        self._count("queue.enqueued", inserted)
        return inserted

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------

    def lease(self, worker_id: str,
              lease_seconds: float = DEFAULT_LEASE_SECONDS,
              now: Optional[float] = None) -> Optional[LeasedItem]:
        """Atomically claim the oldest pending item, or None.

        The claim happens inside one immediate transaction, so two
        workers can never hold the same item: a second ``lease()``
        either sees the row already ``leased`` or claims the next
        one.  Claiming consumes one attempt.
        """
        timestamp = self._now(now)
        deadline = timestamp + lease_seconds
        self._db.execute("BEGIN IMMEDIATE")
        try:
            row = self._db.execute(
                "SELECT item_id, kind, payload, attempts FROM items "
                "WHERE state = 'pending' ORDER BY seq LIMIT 1"
            ).fetchone()
            if row is None:
                self._db.execute("COMMIT")
                return None
            item_id, kind, payload_text, attempts = row
            self._db.execute(
                "UPDATE items SET state = 'leased', lease_owner = ?, "
                "lease_deadline = ?, attempts = attempts + 1 "
                "WHERE item_id = ? AND state = 'pending'",
                (worker_id, deadline, item_id))
            self._db.execute("COMMIT")
        except BaseException:
            self._db.execute("ROLLBACK")
            raise
        self._count("queue.leases")
        return LeasedItem(item_id=item_id, kind=kind,
                          payload=json.loads(payload_text),
                          attempts=int(attempts) + 1,
                          lease_deadline=deadline)

    def heartbeat(self, worker_id: str, item_id: str,
                  lease_seconds: float = DEFAULT_LEASE_SECONDS,
                  now: Optional[float] = None) -> bool:
        """Extend the lease on *item_id*; False if no longer held.

        A False return tells a slow worker its lease expired and the
        item now belongs to someone else (or was requeued): it must
        abandon the item, not complete it.
        """
        deadline = self._now(now) + lease_seconds
        cursor = self._db.execute(
            "UPDATE items SET lease_deadline = ? "
            "WHERE item_id = ? AND state = 'leased' "
            "AND lease_owner = ?",
            (deadline, item_id, worker_id))
        return cursor.rowcount == 1

    def complete(self, worker_id: str, item_id: str, result_key: str,
                 cached: bool = False,
                 now: Optional[float] = None) -> bool:
        """Mark *item_id* done with its artifact key; owner only.

        Returns False when the caller no longer holds the lease --
        the double-lease guard: an expired worker that finished late
        cannot overwrite the completion of the worker that the item
        was re-leased to (results are content-addressed and byte-
        identical anyway, but attempts/ownership accounting must not
        lie).
        """
        cursor = self._db.execute(
            "UPDATE items SET state = 'done', completed_by = ?, "
            "cached = ?, result_key = ?, lease_owner = NULL, "
            "lease_deadline = NULL "
            "WHERE item_id = ? AND state = 'leased' "
            "AND lease_owner = ?",
            (worker_id, 1 if cached else 0, result_key, item_id,
             worker_id))
        completed = cursor.rowcount == 1
        if completed:
            self._count("queue.completed")
        else:
            self._count("queue.stale_completions")
        return completed

    def fail(self, worker_id: str, item_id: str, error: str,
             now: Optional[float] = None) -> Optional[str]:
        """Report a failed execution attempt; owner only.

        The item requeues while attempts remain, otherwise it
        dead-letters with *error* recorded.  Returns the new state
        (``"pending"`` / ``"dead"``) or None when the caller no
        longer held the lease.
        """
        self._db.execute("BEGIN IMMEDIATE")
        try:
            row = self._db.execute(
                "SELECT attempts, max_attempts FROM items "
                "WHERE item_id = ? AND state = 'leased' "
                "AND lease_owner = ?",
                (item_id, worker_id)).fetchone()
            if row is None:
                self._db.execute("COMMIT")
                return None
            attempts, max_attempts = int(row[0]), int(row[1])
            state = "dead" if attempts >= max_attempts else "pending"
            self._db.execute(
                "UPDATE items SET state = ?, lease_owner = NULL, "
                "lease_deadline = NULL, last_error = ? "
                "WHERE item_id = ?",
                (state, error, item_id))
            self._db.execute("COMMIT")
        except BaseException:
            self._db.execute("ROLLBACK")
            raise
        self._count("queue.failures")
        if state == "dead":
            self._count("queue.dead_letter")
        return state

    def expire(self, now: Optional[float] = None) -> Dict[str, List[str]]:
        """Requeue or dead-letter every item whose lease lapsed.

        The recovery path for lost workers: any ``leased`` item whose
        deadline is behind *now* goes back to ``pending`` (attempts
        permitting) or to ``dead``.  Safe to call from anyone, any
        number of times -- workers call it opportunistically before
        polling, the campaign driver calls it in its monitor loop.
        Returns ``{"requeued": [...], "dead": [...]}`` item ids in
        queue order.
        """
        timestamp = self._now(now)
        requeued: List[str] = []
        dead: List[str] = []
        self._db.execute("BEGIN IMMEDIATE")
        try:
            rows = self._db.execute(
                "SELECT item_id, attempts, max_attempts, lease_owner "
                "FROM items WHERE state = 'leased' "
                "AND lease_deadline < ? ORDER BY seq",
                (timestamp,)).fetchall()
            for item_id, attempts, max_attempts, owner in rows:
                if int(attempts) >= int(max_attempts):
                    dead.append(item_id)
                    self._db.execute(
                        "UPDATE items SET state = 'dead', "
                        "lease_owner = NULL, lease_deadline = NULL, "
                        "last_error = ? WHERE item_id = ?",
                        (f"lease expired (worker {owner!r} lost, "
                         f"attempt {attempts}/{max_attempts})",
                         item_id))
                else:
                    requeued.append(item_id)
                    self._db.execute(
                        "UPDATE items SET state = 'pending', "
                        "lease_owner = NULL, lease_deadline = NULL, "
                        "last_error = ? WHERE item_id = ?",
                        (f"lease expired (worker {owner!r} lost, "
                         f"attempt {attempts}/{max_attempts}); "
                         f"requeued", item_id))
            self._db.execute("COMMIT")
        except BaseException:
            self._db.execute("ROLLBACK")
            raise
        self._count("queue.expired", len(requeued) + len(dead))
        self._count("queue.requeued", len(requeued))
        self._count("queue.dead_letter", len(dead))
        return {"requeued": requeued, "dead": dead}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        """state -> item count, every state present."""
        rows = self._db.execute(
            "SELECT state, COUNT(*) FROM items GROUP BY state"
        ).fetchall()
        found = {state: int(count) for state, count in rows}
        return {state: found.get(state, 0) for state in STATES}

    def unfinished(self) -> int:
        """How many items still need work (pending + leased)."""
        counts = self.counts()
        return counts["pending"] + counts["leased"]

    def items(self, state: Optional[str] = None) -> List[Dict[str, Any]]:
        """Item rows (payload parsed), queue order, optionally filtered."""
        query = ("SELECT item_id, seq, kind, payload, state, attempts, "
                 "max_attempts, lease_owner, lease_deadline, "
                 "completed_by, cached, result_key, last_error "
                 "FROM items")
        args: tuple = ()
        if state is not None:
            if state not in STATES:
                raise ValueError(
                    f"unknown state {state!r}; choose from {STATES}")
            query += " WHERE state = ?"
            args = (state,)
        query += " ORDER BY seq"
        out: List[Dict[str, Any]] = []
        for row in self._db.execute(query, args).fetchall():
            out.append({
                "item_id": row[0],
                "seq": int(row[1]),
                "kind": row[2],
                "payload": json.loads(row[3]),
                "state": row[4],
                "attempts": int(row[5]),
                "max_attempts": int(row[6]),
                "lease_owner": row[7],
                "lease_deadline": row[8],
                "completed_by": row[9],
                "cached": None if row[10] is None else bool(row[10]),
                "result_key": row[11],
                "last_error": row[12],
            })
        return out

    def dead_letter(self) -> List[Dict[str, Any]]:
        """The dead-letter section: exhausted items, queue order."""
        return [
            {"item_id": item["item_id"],
             "kind": item["kind"],
             "attempts": item["attempts"],
             "max_attempts": item["max_attempts"],
             "last_error": item["last_error"]}
            for item in self.items(state="dead")
        ]

    def status(self) -> Dict[str, Any]:
        """The canonical queue-status document (``queue status``)."""
        counts = self.counts()
        attempts_total = self._db.execute(
            "SELECT COALESCE(SUM(attempts), 0) FROM items").fetchone()
        leased = [
            {"item_id": item["item_id"],
             "lease_owner": item["lease_owner"],
             "lease_deadline": item["lease_deadline"],
             "attempts": item["attempts"]}
            for item in self.items(state="leased")
        ]
        if self.obs is not None:
            self.obs.set_gauge("queue.depth", float(counts["pending"]))
        return {
            "counts": counts,
            "depth": counts["pending"],
            "unfinished": counts["pending"] + counts["leased"],
            "attempts_total": int(attempts_total[0]),
            "retries_total": max(
                0, int(attempts_total[0])
                - sum(1 for item in self.items()
                      if item["attempts"] > 0)),
            "leases": leased,
            "dead_letter": self.dead_letter(),
        }


__all__ = [
    "DEFAULT_LEASE_SECONDS",
    "DEFAULT_MAX_ATTEMPTS",
    "LeasedItem",
    "QueueItem",
    "STATES",
    "WorkQueue",
    "item_identity",
]
