"""The blind-corner intersection: the use-case the testbed motivates.

Two roads cross at the origin; a building wall occludes the corner so
"approaching vehicle do not have Line-of-Sight to other inflow roads"
(paper Section I).  The protagonist (a full robotic vehicle with OBU)
approaches along -x -> 0 -> +x; a non-ITS road user crosses on the
other road.  Two configurations are compared (ablation A4):

* **onboard-only**: the protagonist relies on its own LiDAR.  The
  wall hides the crossing vehicle until the last metres, so braking
  starts too late and the conflict zone is violated.
* **network-aided**: the road-side camera sees the crossing road
  (it is placed past the wall), the edge node issues a Collision Risk
  DENM through the RSU, and the protagonist stops short of the
  conflict zone.

The experiment reports, per configuration: whether a collision
occurred, the minimum vehicle separation, and the stop margin to the
conflict zone.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional, Tuple

from repro.core.measurement import StepTimeline, Steps
from repro.geonet.position import LocalFrame
from repro.messages.common import StationType
from repro.net.medium import WirelessMedium
from repro.net.propagation import LinkBudget, LogDistancePathLoss
from repro.openc2x.unit import OnBoardUnit, RoadSideUnit
from repro.roadside.camera import SceneObject
from repro.roadside.edge_node import EdgeNode
from repro.roadside.hazard_service import HazardConfig
from repro.sim.kernel import Simulator, build_simulator
from repro.sim.randomness import RandomStreams
from repro.sim.tie_audit import TieAudit
from repro.vehicle.dynamics import VehicleState
from repro.vehicle.message_handler import MessageHandler
from repro.vehicle.robot import RoboticVehicle
from repro.vehicle.sensors import Lidar, LidarScan
from repro.vehicle.track import StraightTrack


@dataclasses.dataclass(frozen=True)
class BlindCornerScenario:
    """Geometry and parameters of the intersection experiment."""

    #: Protagonist start (m before the intersection, on the -x road).
    protagonist_start: float = 7.0
    #: Protagonist cruise throttle (faster than the braking test: the
    #: point is arriving with too little stopping distance).
    protagonist_throttle: float = 0.25
    #: Crossing road user start (m before the intersection, on +y).
    crosser_start: float = 4.9
    #: Crossing road user speed (m/s), constant.
    crosser_speed: float = 1.1
    #: Half-size of the square conflict zone at the origin (m).
    conflict_half_width: float = 0.35
    #: The occluding wall: a segment near the (-x, +y) corner.
    wall: Tuple[Tuple[float, float], Tuple[float, float]] = (
        (-0.8, 0.8), (-6.0, 0.8))
    #: Second wall leg along the crossing road.
    wall_leg: Tuple[Tuple[float, float], Tuple[float, float]] = (
        (-0.8, 0.8), (-0.8, 6.0))
    #: Camera position: mounted past the corner, viewing the crossing
    #: road (judicious placement, per the paper).
    camera_position: Tuple[float, float] = (0.6, 0.4)
    #: Camera facing: up the crossing road.
    camera_facing: float = math.radians(90.0)
    #: Hazard action distance along the crossing road (m from camera).
    action_distance: float = 2.8
    #: LiDAR braking rule: stop when an obstacle is within this
    #: time-to-collision (s).
    lidar_ttc_threshold: float = 1.2
    timeout: float = 30.0
    seed: int = 1
    #: Kernel tie-break policy for same-timestamp events (``"fifo"``,
    #: ``"lifo"`` or ``"seeded"``); results must be bit-identical
    #: under all three (the ``tie-audit`` workflow's default check).
    tie_break: str = "fifo"
    infrastructure: bool = True
    #: Infrastructure channel: "denm" (reactive warning, the paper's
    #: pattern) or "cpm" (proactive collective perception -- the edge
    #: shares its sensor picture and the vehicle decides itself).
    warning: str = "denm"
    #: CPM mode: conflict declared when both parties' ETAs to the
    #: conflict zone are within this window (s).
    conflict_window: float = 1.2
    #: Full event lifecycle: the edge cancels the DENM once the
    #: crossing road user has left the hazard region, and the
    #: protagonist resumes on the cancellation.
    all_clear: bool = False

    def with_seed(self, seed: int) -> "BlindCornerScenario":
        """Copy with a different seed."""
        return dataclasses.replace(self, seed=seed)


@dataclasses.dataclass
class BlindCornerResult:
    """Outcome of one intersection run."""

    infrastructure: bool
    collision: bool
    min_separation: float
    protagonist_stopped: bool
    stop_margin: float           # distance short of the conflict zone (m)
    denm_received: bool
    lidar_triggered: bool
    timeline: StepTimeline
    cpm_objects_learned: int = 0
    cpm_triggered: bool = False

    def to_dict(self) -> dict:
        """Canonical JSON-serialisable form (infinities as strings)."""
        return {
            "infrastructure": self.infrastructure,
            "collision": self.collision,
            "min_separation": _encode_float(self.min_separation),
            "protagonist_stopped": self.protagonist_stopped,
            "stop_margin": _encode_float(self.stop_margin),
            "denm_received": self.denm_received,
            "lidar_triggered": self.lidar_triggered,
            "timeline": self.timeline.to_dict(),
            "cpm_objects_learned": self.cpm_objects_learned,
            "cpm_triggered": self.cpm_triggered,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BlindCornerResult":
        """Rebuild a result serialised by :meth:`to_dict`."""
        return cls(
            infrastructure=bool(data["infrastructure"]),
            collision=bool(data["collision"]),
            min_separation=_decode_float(data["min_separation"]),
            protagonist_stopped=bool(data["protagonist_stopped"]),
            stop_margin=_decode_float(data["stop_margin"]),
            denm_received=bool(data["denm_received"]),
            lidar_triggered=bool(data["lidar_triggered"]),
            timeline=StepTimeline.from_dict(data["timeline"]),
            cpm_objects_learned=int(data["cpm_objects_learned"]),
            cpm_triggered=bool(data["cpm_triggered"]),
        )


def _encode_float(value: float) -> object:
    """JSON-portable float: infinities become tagged strings."""
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


def _decode_float(value: object) -> float:
    """Inverse of :func:`_encode_float`."""
    if value == "inf":
        return math.inf
    if value == "-inf":
        return -math.inf
    return float(value)  # type: ignore[arg-type]


class _ScriptedCrosser:
    """The non-ITS road user: constant speed along -y towards/through
    the intersection.

    Position reads pull the update due at the current sim time (the
    same catch-up discipline as
    :class:`~repro.vehicle.dynamics.VehicleDynamics`), so observers
    tied with the movement tick see identical positions under any
    kernel tie-break order.
    """

    def __init__(self, sim: Simulator, start_y: float, speed: float,
                 dt: float = 5e-3):
        self.sim = sim
        self.x = 0.0
        self.y = start_y
        self.speed = speed
        self.heading = -math.pi / 2.0
        self.dt = dt
        self._due = sim.now + dt
        sim.schedule(dt, self._tick)

    def _tick(self) -> None:
        self._catch_up()
        self.sim.schedule(
            # detlint: ignore[SCH001] -- benign: position() pulls via
            # _catch_up, so same-time tick order is immaterial
            self.dt, self._tick)

    def _catch_up(self) -> None:
        if self.sim.now >= self._due:
            self._due = self.sim.now + self.dt
            self.y -= self.speed * self.dt

    def position(self) -> Tuple[float, float]:
        """Current (x, y)."""
        self._catch_up()
        return (self.x, self.y)


class BlindCornerTestbed:
    """One instantiated intersection run."""

    WATCH_PERIOD = 2e-3

    def __init__(self, scenario: Optional[BlindCornerScenario] = None,
                 tie_audit: Optional["TieAudit"] = None):
        self.scenario = scenario or BlindCornerScenario()
        sc = self.scenario
        self.streams = RandomStreams(sc.seed)
        self.sim = build_simulator(sc.tie_break, self.streams)
        # Install the audit before any device schedules, so even
        # constructor-armed first shots carry real site ids.
        if tie_audit is not None:
            self.sim.tie_audit = tie_audit
        self.frame = LocalFrame()
        self.timeline = StepTimeline()
        self.min_separation = math.inf
        self.collision = False
        self.lidar_triggered = False
        self.denm_received = False

        # Protagonist drives +x towards (and through) the origin.
        self.protagonist = RoboticVehicle(
            self.sim, self.streams, name="protagonist",
            track=StraightTrack(direction=0.0),
            initial_state=VehicleState(x=-sc.protagonist_start, y=0.0,
                                       heading=0.0),
            cruise_throttle=sc.protagonist_throttle,
        )
        self.crosser = _ScriptedCrosser(self.sim, sc.crosser_start,
                                        sc.crosser_speed)

        # LiDAR with the occluding wall (both configurations carry it;
        # only the onboard-only configuration acts on it).
        walls = [sc.wall, sc.wall_leg]
        self.lidar = Lidar(
            self.sim, self.protagonist.dynamics,
            obstacles=lambda: [(*self.crosser.position(), 0.25)],
            walls=lambda: walls,
            publish=self._on_lidar_scan,
            rate_hz=10.0,
            rng=self.streams.get("lidar"),
        )

        self.cpm_triggered = False
        self._vehicle_cp = None
        if sc.infrastructure:
            self._build_infrastructure()
            if sc.warning == "cpm":
                self._build_collective_perception()
            elif sc.warning != "denm":
                raise ValueError(f"unknown warning mode {sc.warning!r}")
        self.sim.schedule(self.WATCH_PERIOD, self._watch)

    def _build_infrastructure(self) -> None:
        sc = self.scenario
        self.medium = WirelessMedium(
            self.sim, self.streams.get("medium"),
            LinkBudget(path_loss=LogDistancePathLoss()))
        self.obu = OnBoardUnit(
            self.sim, self.medium, self.streams, name="obu",
            station_id=101, station_type=StationType.PASSENGER_CAR,
            position=lambda: self.frame.to_geo(*self.protagonist.position),
            dynamics=lambda: (self.protagonist.speed,
                              self.protagonist.heading_degrees),
            local_frame=self.frame,
        )
        self.rsu = RoadSideUnit(
            self.sim, self.medium, self.streams, name="rsu",
            station_id=900, station_type=StationType.ROAD_SIDE_UNIT,
            position=lambda: self.frame.to_geo(1.0, 1.0),
            is_rsu=True, local_frame=self.frame,
        )
        if sc.warning == "cpm":
            # Collective perception replaces the reactive DENM path:
            # neutralise the hazard trigger entirely.
            hazard_config = HazardConfig(
                action_distance=0.0, mode="threshold",
                treat_default_as_close=False)
        else:
            hazard_config = HazardConfig(
                action_distance=sc.action_distance, mode="ldm",
                cancel_when_clear=sc.all_clear)
        self.edge = EdgeNode(
            self.sim, self.streams, rsu_server=self.rsu.http,
            camera_position=sc.camera_position,
            camera_facing=sc.camera_facing,
            camera_fps=15.0,
            hazard_config=hazard_config,
            local_frame=self.frame,
            ldm=self.rsu.station.ldm,
        )
        # The crossing road user is a bare (shell-less) scale vehicle:
        # exactly the unreliable-detection case of Figure 7a... we give
        # it the body shell so detection works at the camera's range.
        self.edge.watch(SceneObject(
            name="crosser", kind="shell_vehicle",
            position=self.crosser.position,
            heading=lambda: self.crosser.heading,
            speed=lambda: self.crosser.speed,
        ))
        self.handler = MessageHandler(
            self.sim, self.obu.http, self.protagonist.planner,
            rng=self.streams.get("handler"), poll_interval=0.02,
            stop_on_denm=(self.scenario.warning == "denm"),
            resume_on_termination=self.scenario.all_clear)
        self.edge.on_event(self._on_edge_event)
        self.obu.on_event(self._on_obu_event)

    def _build_collective_perception(self) -> None:
        from repro.facilities.cp_service import CpConfig, CpService
        from repro.messages.cpm import PerceivedObject

        rsu_position = (1.0, 1.0)

        def provider():
            # Share what the edge camera currently sees, with the
            # crossing direction from the scripted dynamics (a real
            # deployment would read the tracker's velocity estimate).
            objects = []
            for index, visible in enumerate(self.edge.camera.observe()):
                objects.append(PerceivedObject(
                    object_id=index,
                    x_offset=visible.position[0] - rsu_position[0],
                    y_offset=visible.position[1] - rsu_position[1],
                    x_speed=0.0,
                    y_speed=-visible.speed,
                    confidence=0.8,
                    classification="passengerCar",
                ))
            return objects

        self.rsu_cp = CpService(
            self.sim, self.rsu.station.router, self.rsu.station.ldm,
            station_id=900, station_type=StationType.ROAD_SIDE_UNIT,
            position=lambda: self.frame.to_geo(*rsu_position),
            its_time=self.rsu.station.its_time,
            local_frame=self.frame,
            provider=provider,
            config=CpConfig(rate=5.0))
        self._vehicle_cp = CpService(
            self.sim, self.obu.station.router, self.obu.station.ldm,
            station_id=101, station_type=StationType.PASSENGER_CAR,
            position=lambda: self.frame.to_geo(
                *self.protagonist.position),
            its_time=self.obu.station.its_time,
            local_frame=self.frame)
        self.sim.schedule(0.05, self._collision_monitor)

    def _collision_monitor(self) -> None:
        """The protagonist's own decision loop over the shared LDM."""
        from repro.facilities.ldm import ObjectKind

        if not self.protagonist.planner.emergency_engaged:
            speed = self.protagonist.speed
            px, _py = self.protagonist.position
            my_eta = math.inf if speed < 0.05 else (0.0 - px) / speed
            for entry in self.obu.station.ldm.query(
                    kinds=[ObjectKind.ROAD_USER], not_older_than=0.6):
                ox, oy = self.frame.to_local(entry.position)
                obj = entry.data
                vy = getattr(obj, "y_speed", 0.0)
                if vy >= -0.05:
                    continue  # not approaching the conflict zone
                their_eta = oy / -vy
                if (0.0 <= my_eta < 8.0
                        and abs(their_eta - my_eta)
                        < self.scenario.conflict_window):
                    # Would we still be able to stop short of the zone?
                    margin = (-self.scenario.conflict_half_width - px)
                    stopping = (speed * speed
                                / (2.0 * self.protagonist.dynamics
                                   .params.max_braking))
                    if margin <= stopping + 0.6:
                        self.cpm_triggered = True
                        self.protagonist.emergency_stop(reason="cpm")
                        break
        self.sim.schedule(
            # detlint: ignore[SCH001] -- benign: the monitor only
            # reads catch-up state; tie-audit shows bit-identity
            0.05, self._collision_monitor)

    # ------------------------------------------------------------------
    # Event wiring
    # ------------------------------------------------------------------

    def _on_edge_event(self, event: str, record: dict) -> None:
        if event == "hazard_detected":
            self.timeline.record(Steps.DETECTION,
                                 sim_time=record["sim_time"],
                                 clock_time=record["clock_time"])

    def _on_obu_event(self, event: str, record: dict) -> None:
        if event == "denm_received":
            self.denm_received = True
            self.timeline.record(Steps.OBU_RECEIVED,
                                 sim_time=record["sim_time"],
                                 clock_time=record["clock_time"])

    def _on_lidar_scan(self, scan: LidarScan) -> None:
        if self.scenario.infrastructure:
            return  # network-aided configuration ignores the LiDAR rule
        speed = self.protagonist.speed
        if speed < 0.05:
            return
        state = self.protagonist.dynamics.state
        corridor = self.scenario.conflict_half_width + 0.15
        for bearing, distance in zip(scan.bearings, scan.ranges):
            if distance >= self.lidar.max_range:
                continue
            # Where did this beam land?  Static walls sit outside the
            # driving corridor; only in-corridor returns are treated as
            # obstacles (a real planner filters against the map).
            direction = state.heading + bearing
            hit_y = state.y + distance * math.sin(direction)
            hit_x = state.x + distance * math.cos(direction)
            if abs(hit_y) > corridor or hit_x <= state.x:
                continue
            ttc = distance / speed
            if ttc < self.scenario.lidar_ttc_threshold:
                self.lidar_triggered = True
                self.protagonist.emergency_stop(reason="lidar")
                return

    # ------------------------------------------------------------------
    # Conflict monitoring
    # ------------------------------------------------------------------

    def _watch(self) -> None:
        px, py = self.protagonist.position
        cx, cy = self.crosser.position()
        separation = math.hypot(px - cx, py - cy)
        self.min_separation = min(self.min_separation, separation)
        half = self.scenario.conflict_half_width
        protagonist_in = abs(px) <= half and abs(py) <= half
        crosser_in = abs(cx) <= half and abs(cy) <= half
        if protagonist_in and crosser_in:
            self.collision = True
            self.sim.stop()
            return
        self.sim.schedule(
            # detlint: ignore[SCH001] -- benign: the watcher only
            # reads catch-up state; tie-audit shows bit-identity
            self.WATCH_PERIOD, self._watch)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def run(self) -> BlindCornerResult:
        """Execute the run and report the outcome."""
        self.sim.run_until(self.scenario.timeout)
        px, _py = self.protagonist.position
        stopped = self.protagonist.dynamics.is_stopped \
            and self.protagonist.planner.emergency_engaged
        half = self.scenario.conflict_half_width
        stop_margin = (-half - px) if stopped else -math.inf
        return BlindCornerResult(
            infrastructure=self.scenario.infrastructure,
            collision=self.collision,
            min_separation=self.min_separation,
            protagonist_stopped=stopped,
            stop_margin=stop_margin,
            denm_received=self.denm_received,
            lidar_triggered=self.lidar_triggered,
            timeline=self.timeline,
            cpm_objects_learned=(
                self._vehicle_cp.objects_learned
                if self._vehicle_cp is not None else 0),
            cpm_triggered=self.cpm_triggered,
        )


def compare_configurations(seed: int = 1,
                           scenario: Optional[BlindCornerScenario] = None,
                           ) -> Tuple[BlindCornerResult, BlindCornerResult]:
    """Run the same seed with and without infrastructure.

    Returns ``(network_aided, onboard_only)``.
    """
    base = scenario or BlindCornerScenario()
    aided = BlindCornerTestbed(
        dataclasses.replace(base, seed=seed, infrastructure=True)).run()
    onboard = BlindCornerTestbed(
        dataclasses.replace(base, seed=seed, infrastructure=False)).run()
    return aided, onboard
