"""Parallel campaign execution engine with an on-disk run cache.

The paper's populations (Table II latency, Table III braking, the
Figure 11 EDF) are built from repeated runs of the same scenario with
different seeds.  Each run is an independent, fully deterministic
discrete-event simulation, which makes a campaign embarrassingly
parallel: this module shards the ``(scenario, seed)`` work items
across a :class:`concurrent.futures.ProcessPoolExecutor`, streams
:class:`~repro.core.measurement.RunMeasurement` results back as they
complete, and aggregates them into the ordinary
:class:`~repro.core.testbed.CampaignResult`.

Two guarantees hold by construction and are enforced by the test
suite (``tests/test_campaign_engine.py``):

* **Serial/parallel equivalence** — the DES kernel is deterministic
  per seed, every run gets its own :class:`ScaleTestbed`, and results
  are re-sorted by ``run_id`` before aggregation, so ``workers=N``
  produces *bit-identical* measurements to ``workers=1``.
* **Cache transparency** — completed runs are cached on disk keyed by
  a SHA-256 fingerprint of the frozen scenario config (seed included),
  so repeated campaigns (e.g. ``cdf`` after ``campaign``) skip
  already-computed runs; a hit deserialises to the identical
  measurement, any change to the scenario or seed changes the key,
  and a corrupt cache entry silently falls back to recomputing.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import os
from time import perf_counter
from typing import Callable, Optional, TYPE_CHECKING

from repro.core.artifacts import ArtifactStore, CACHE_FORMAT
from repro.core.fingerprint import spec_fingerprint
from repro.core.measurement import RunMeasurement
from repro.core.scenario import EmergencyBrakeScenario

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.testbed import CampaignResult
    from repro.faults.plan import FaultPlan
    from repro.obs import ObsAggregate, ObsContext

#: The campaign execution backends ``run_campaign_parallel`` (and
#: everything riding it) can shard over: ``pool`` is the in-process
#: ``ProcessPoolExecutor`` sharding of PR 1, ``queue`` the durable
#: SQLite work queue of :mod:`repro.core.queue` (leases, heartbeat
#: expiry, retry/requeue on worker loss, dead-letter after bounded
#: retries).  Both fold to bit-identical results by construction.
BACKENDS = ("pool", "queue")


# ---------------------------------------------------------------------------
# Scenario fingerprinting
# ---------------------------------------------------------------------------


def scenario_fingerprint(scenario: EmergencyBrakeScenario,
                         fault_plan: Optional["FaultPlan"] = None,
                         salt: Optional[str] = None) -> str:
    """A stable SHA-256 key for one ``(scenario, plan, seed)`` item.

    The frozen scenario dataclass (nested configs included) is
    flattened to canonical JSON -- sorted keys, exact float reprs --
    and hashed together with :data:`CACHE_FORMAT`, the installed
    package version and the fault plan (if any).  Changing *any*
    scenario field (the seed included), any fault parameter or the
    package itself changes the key; an absent plan and an *empty*
    plan fingerprint identically, because they run identically.

    *salt* namespaces callers that derive scenarios from a wider
    context: the variation engine passes ``"<spec hash>:<point
    hash>"`` so varied runs cache under (spec, point, seed) and can
    never collide with a plain campaign over the same scenario.
    """
    plan_dict = None
    if fault_plan is not None and not fault_plan.is_empty:
        plan_dict = fault_plan.to_dict()
    return spec_fingerprint("scenario", CACHE_FORMAT, {
        # detlint: ignore[FPR004] -- tie_break is deliberately cache-separating: policies are proven bit-identical by the tie-audit, but cached entries must never mix policies (ARCHITECTURE.md §11)
        "scenario": dataclasses.asdict(scenario),
        "fault_plan": plan_dict,
        "salt": salt,
    })


# ---------------------------------------------------------------------------
# On-disk run cache
# ---------------------------------------------------------------------------


class RunCache:
    """The campaign-facing view of the content-addressed store.

    Since CACHE_FORMAT v5 this is a thin measurement-typed wrapper
    over :class:`~repro.core.artifacts.ArtifactStore`: entries live
    in the sharded ``objects/`` layout, writes are atomic, and every
    read verifies the embedded body digest.  The queue backend's
    workers write to the *same* store under the *same* content keys,
    so pool and queue campaigns share one cache.  Flat v4 entries in
    the same directory are ignored (recomputed), never touched.
    """

    def __init__(self, root: str):
        self.root = root
        self.store = ArtifactStore(root)

    def path(self, key: str) -> str:
        """Where the entry for *key* lives."""
        return self.store.path(key)

    def get(self, key: str) -> Optional[RunMeasurement]:
        """The cached measurement for *key*, or None on any problem."""
        body = self.store.get(key)
        if body is None:
            return None
        try:
            return RunMeasurement.from_dict(body["measurement"])
        except (ValueError, KeyError, TypeError):
            return None

    def put(self, key: str, measurement: RunMeasurement) -> None:
        """Store *measurement* under *key*, atomically."""
        self.store.put(key, {"kind": "brake",
                             "measurement": measurement.to_dict()})


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class RunOutcome:
    """One streamed completion: which run finished, and from where."""

    run_id: int
    seed: int
    cached: bool
    measurement: RunMeasurement


#: Called after each run completes: ``progress(outcome, done, total)``.
ProgressCallback = Callable[[RunOutcome, int, int], None]


def _execute_run(scenario: EmergencyBrakeScenario,
                 run_id: int,
                 fault_plan: Optional["FaultPlan"] = None,
                 obs_ctx: Optional["ObsContext"] = None,
                 ) -> RunMeasurement:
    """Worker entry point: one fresh testbed, one run.

    Module-level so it pickles into pool workers; imports the testbed
    (and, only when a plan is present, the injector) lazily to keep
    the campaign module import-light.
    """
    from repro.core.testbed import ScaleTestbed

    testbed = ScaleTestbed(scenario, run_id=run_id, obs=obs_ctx)
    if fault_plan is not None and not fault_plan.is_empty:
        from repro.faults.injector import install_faults

        install_faults(testbed, fault_plan)
    return testbed.run()


def _execute_run_observed(scenario: EmergencyBrakeScenario,
                          run_id: int,
                          fault_plan: Optional["FaultPlan"] = None,
                          ):
    """Pool entry point for instrumented runs.

    Builds a fresh :class:`~repro.obs.ObsContext` inside the worker and
    ships it home as its canonical dict (the round trip is byte-exact),
    plus the worker-measured wall time of the run.
    """
    from repro.obs import ObsContext

    obs_ctx = ObsContext()
    started = perf_counter()
    measurement = _execute_run(scenario, run_id, fault_plan,
                               obs_ctx=obs_ctx)
    return measurement, obs_ctx.to_dict(), perf_counter() - started


def run_campaign_parallel(
    scenario: Optional[EmergencyBrakeScenario] = None,
    runs: int = 5,
    base_seed: int = 1,
    workers: int = 1,
    cache_dir: Optional[str] = None,
    progress: Optional[ProgressCallback] = None,
    fault_plan: Optional["FaultPlan"] = None,
    obs: Optional["ObsAggregate"] = None,
    cache_salt: Optional[str] = None,
    backend: str = "pool",
    queue_dir: Optional[str] = None,
) -> "CampaignResult":
    """Run *runs* repetitions of *scenario*, sharded over *workers*.

    Work item ``i`` runs ``scenario.with_seed(base_seed + i)`` as
    ``run_id = i + 1`` -- exactly what the serial
    :func:`~repro.core.testbed.run_campaign` does.  ``workers=0``
    auto-sizes the pool to the machine (``os.cpu_count()``).  With a
    *cache_dir* already-computed runs are loaded instead of
    re-simulated.  A *fault_plan* is installed on every run's fresh
    testbed (and folded into the cache fingerprint); an empty or
    absent plan reproduces the fault-free campaign bit for bit.
    Results stream back in completion order (reported through
    *progress*) but are sorted by ``run_id`` before aggregation, so
    the returned :class:`CampaignResult` is independent of scheduling
    order.

    With an *obs* aggregate, every simulated run is instrumented with
    a fresh :class:`~repro.obs.ObsContext` that is merged into the
    aggregate (cache hits count via ``add_cached``).  Instrumented
    campaigns shard across the pool like plain ones: each worker
    builds its context locally and ships it back as a canonical dict,
    and the parent folds the contexts in ``run_id`` order through the
    exactly-mergeable metric fold, so the aggregate is bit-identical
    to a serial instrumented campaign (wall-clock profile stats aside,
    which are real measured times and never deterministic).
    Instrumentation never touches RNG draws or event scheduling, so
    measurements stay bit-identical to an unobserved campaign.

    *cache_salt* is folded into every run's cache fingerprint (see
    :func:`scenario_fingerprint`); it never changes what is simulated,
    only under which key the result is cached.

    *backend* selects where the work items execute: ``"pool"`` (the
    in-process ``ProcessPoolExecutor``, the default) or ``"queue"``
    (the durable SQLite work queue of :mod:`repro.core.queue`:
    *workers* independent worker processes lease items, lost leases
    are requeued after heartbeat expiry, and exhausted items
    dead-letter).  Both backends fold to bit-identical results; the
    queue keeps its state under *queue_dir* (a temporary directory
    when None) so a killed campaign can be resumed or inspected with
    the ``queue`` CLI.
    """
    from repro.core.testbed import CampaignResult

    if runs < 0:
        raise ValueError(f"runs must be >= 0, got {runs}")
    if workers < 0:
        raise ValueError(f"workers must be >= 0 (0 = auto), "
                         f"got {workers}")
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {BACKENDS}")
    if backend == "queue":
        from repro.core.queue.campaign import run_campaign_queue

        return run_campaign_queue(
            scenario, runs=runs, base_seed=base_seed, workers=workers,
            cache_dir=cache_dir, progress=progress,
            fault_plan=fault_plan, obs=obs, cache_salt=cache_salt,
            queue_dir=queue_dir)
    if workers == 0:
        workers = os.cpu_count() or 1
    scenario = scenario or EmergencyBrakeScenario()
    cache = RunCache(cache_dir) if cache_dir else None
    if fault_plan is not None and fault_plan.is_empty:
        fault_plan = None

    measurements = {}
    done = 0

    def finish(run_id: int, seed: int, cached: bool,
               measurement: RunMeasurement) -> None:
        nonlocal done
        measurements[run_id] = measurement
        done += 1
        if progress is not None:
            progress(RunOutcome(run_id=run_id, seed=seed, cached=cached,
                                measurement=measurement), done, runs)

    # --- Resolve cache hits up front; everything else is pending.
    pending = []  # (run_id, run_scenario, key)
    for index in range(runs):
        run_id = index + 1
        run_scenario = scenario.with_seed(base_seed + index)
        key = scenario_fingerprint(run_scenario, fault_plan,
                                   salt=cache_salt) \
            if cache else None
        if cache is not None:
            hit = cache.get(key)
            if hit is not None:
                # The fingerprint pins (scenario, seed) but not the
                # position in the campaign; rebind run_id so a cache
                # shared across differently-offset campaigns stays
                # consistent with this one's numbering.
                hit.run_id = run_id
                if obs is not None:
                    obs.add_cached()
                finish(run_id, run_scenario.seed, True, hit)
                continue
        pending.append((run_id, run_scenario, key))

    # --- Simulate the misses, in-process or across a pool.
    if workers > 1 and len(pending) > 1:
        pool_size = min(workers, len(pending))
        observed = {}  # run_id -> (obs dict, wall seconds)
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=pool_size) as pool:
            entry = _execute_run_observed if obs is not None \
                else _execute_run
            futures = {
                pool.submit(entry, run_scenario, run_id, fault_plan):
                    (run_id, run_scenario, key)
                for run_id, run_scenario, key in pending
            }
            for future in concurrent.futures.as_completed(futures):
                run_id, run_scenario, key = futures[future]
                if obs is not None:
                    measurement, obs_dict, wall = future.result()
                    observed[run_id] = (obs_dict, wall)
                else:
                    measurement = future.result()
                if cache is not None:
                    cache.put(key, measurement)
                finish(run_id, run_scenario.seed, False, measurement)
        if obs is not None:
            from repro.obs import ObsContext

            # Fold in run_id order: the fold is associative and
            # commutative over metrics, but a fixed order keeps even
            # order-sensitive consumers (span concatenation) identical
            # to the serial path.
            for run_id in sorted(observed):
                obs_dict, wall = observed[run_id]
                obs.add_run(ObsContext.from_dict(obs_dict), wall)
    else:
        for run_id, run_scenario, key in pending:
            obs_ctx = None
            if obs is not None:
                from repro.obs import ObsContext

                obs_ctx = ObsContext()
            started = perf_counter()
            measurement = _execute_run(run_scenario, run_id, fault_plan,
                                       obs_ctx=obs_ctx)
            if obs is not None:
                obs.add_run(obs_ctx, perf_counter() - started)
            if cache is not None:
                cache.put(key, measurement)
            finish(run_id, run_scenario.seed, False, measurement)

    ordered = [measurements[run_id] for run_id in sorted(measurements)]
    return CampaignResult(scenario=scenario, runs=ordered, obs=obs)
