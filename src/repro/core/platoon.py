"""Platooning extension (the paper's future work, Section V).

"We also plan to extend the testbed to support connected platoons
(i.e., more robotic vehicles that are following each other), and
evaluate the detection-to-action delay for the entire platoon.  There
is room to explore multi-technology solutions in this later case
(e.g., platoon leader is 5G-capable while intra-platoon message
forwarding is based on IEEE 802.11p)."

This module implements both arrangements:

* **all-ITS-G5**: the RSU GeoBroadcasts the DENM; members that cannot
  hear the RSU directly receive it through GBC re-forwarding by the
  members ahead (multi-hop).  A short-range radio profile makes the
  hops visible.
* **multi-technology**: the edge server delivers the warning to the
  5G-capable leader over the cellular link; the leader's own DEN
  service then GeoBroadcasts it to the followers over 802.11p.

Members are simplified longitudinal vehicles (constant-spacing
follower control) with full OBUs; each polls its OBU like the real
vehicle does.  The experiment reports the per-member
warning-to-actuation delay and the platoon's minimum inter-vehicle
gap during the stop (no pile-up = success).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Tuple

from repro.facilities.den_service import DenConfig
from repro.geonet.position import LocalFrame
from repro.messages.common import StationType
from repro.net.fiveg import FivegCell, FivegConfig
from repro.net.medium import WirelessMedium
from repro.net.phy import PhyConfig
from repro.net.propagation import LinkBudget, LogDistancePathLoss
from repro.openc2x.http import HttpClient
from repro.openc2x.unit import OpenC2XUnit, RoadSideUnit
from repro.sim.kernel import Simulator, build_simulator
from repro.sim.randomness import RandomStreams
from repro.vehicle.message_handler import MessageHandler


@dataclasses.dataclass(frozen=True)
class PlatoonScenario:
    """Parameters of the platoon emergency-stop experiment."""

    members: int = 4
    #: Inter-vehicle spacing (m) and speed (m/s).
    spacing: float = 6.0
    speed: float = 2.0
    desired_gap: float = 6.0
    #: Leader's distance from the RSU when the DENM fires (m).
    leader_distance: float = 12.0
    #: "its_g5" (RSU GeoBroadcast + forwarding) or "5g_leader"
    #: (cellular to the leader, 802.11p intra-platoon).
    leader_interface: str = "its_g5"
    #: Short-range radio profile: low power + steeper path loss, so a
    #: tail member cannot hear the RSU directly and GBC forwarding is
    #: what reaches it.
    tx_power_dbm: float = -20.0
    path_loss_exponent: float = 3.0
    gbc_hop_limit: int = 5
    poll_interval: float = 0.02
    #: Emergency deceleration (m/s^2).
    brake_deceleration: float = 4.5
    #: Follower control gains.
    gap_gain: float = 0.8
    speed_gain: float = 1.6
    timeout: float = 20.0
    seed: int = 1
    #: Kernel tie-break policy for same-timestamp events.
    tie_break: str = "fifo"

    def with_seed(self, seed: int) -> "PlatoonScenario":
        """Copy with a different seed."""
        return dataclasses.replace(self, seed=seed)


@dataclasses.dataclass
class MemberOutcome:
    """Per-member measurement."""

    index: int
    denm_received_at: Optional[float] = None
    actuated_at: Optional[float] = None
    halted_at: Optional[float] = None
    stop_position: float = 0.0

    def warning_delay(self, warning_time: float) -> Optional[float]:
        """Warning issue -> this member's actuation (s)."""
        if self.actuated_at is None:
            return None
        return self.actuated_at - warning_time


@dataclasses.dataclass
class PlatoonResult:
    """Outcome of one platoon run."""

    scenario: PlatoonScenario
    warning_time: float
    members: List[MemberOutcome]
    min_gap: float
    collisions: int

    @property
    def all_stopped(self) -> bool:
        """Whether every member halted."""
        return all(m.halted_at is not None for m in self.members)

    def member_delays_ms(self) -> List[Optional[float]]:
        """Warning-to-actuation delay per member (ms)."""
        out = []
        for member in self.members:
            delay = member.warning_delay(self.warning_time)
            out.append(None if delay is None else delay * 1000.0)
        return out

    @property
    def platoon_delay_ms(self) -> Optional[float]:
        """The entire platoon's detection-to-action delay (ms): the
        slowest member."""
        delays = [d for d in self.member_delays_ms() if d is not None]
        return max(delays) if delays and len(delays) == len(
            self.members) else None


class PlatoonMember:
    """A simplified longitudinal vehicle with an OBU and a poller.

    Drives in -x towards the RSU at the origin; ``emergency_stop`` is
    the planner-compatible entry point the MessageHandler calls.
    """

    DT = 5e-3

    def __init__(self, sim: Simulator, scenario: PlatoonScenario,
                 index: int, x: float,
                 predecessor: Optional["PlatoonMember"],
                 first_tick: Optional[float] = None):
        self.sim = sim
        self.scenario = scenario
        self.index = index
        self.x = x
        self.speed = scenario.speed
        self.predecessor = predecessor
        self.braking = False
        self.outcome = MemberOutcome(index=index)
        self.emergency_engaged = False
        #: Actuation latency before brake force applies (s).
        self.actuation_delay = 0.012
        # Fleet scenarios stagger members' first ticks so control
        # updates never share a timestamp (follower control reads its
        # predecessor's state, so tied ticks would be order-sensitive
        # across tie-break policies); the default keeps the platoon
        # experiment's shared DT grid.
        sim.schedule(self.DT if first_tick is None else first_tick,
                     self._tick)

    # The MessageHandler duck-types against MotionPlanner.
    def emergency_stop(self, reason: str = "denm") -> None:
        """Engage braking (idempotent); records the actuation time."""
        if self.emergency_engaged:
            return
        self.emergency_engaged = True
        self.outcome.actuated_at = self.sim.now
        self.sim.schedule(self.actuation_delay, self._apply_brake)

    def _apply_brake(self) -> None:
        self.braking = True

    def _tick(self) -> None:
        sc = self.scenario
        if self.braking:
            accel = -sc.brake_deceleration
        elif self.predecessor is None:
            accel = 0.0  # leader cruises
        else:
            gap = self.x - self.predecessor.x - 0.53
            accel = (sc.gap_gain * (gap - sc.desired_gap)
                     + sc.speed_gain * (self.predecessor.speed - self.speed))
            accel = max(-sc.brake_deceleration, min(2.0, accel))
        new_speed = max(0.0, self.speed + accel * self.DT)
        self.x -= 0.5 * (self.speed + new_speed) * self.DT
        self.speed = new_speed
        if self.braking and self.speed <= 1e-3 \
                and self.outcome.halted_at is None:
            self.outcome.halted_at = self.sim.now
            self.outcome.stop_position = self.x
        self.sim.schedule(
            # detlint: ignore[SCH001] -- deliberate shared DT: members
            # interact only via CAM delivery at strictly later times,
            # and the ordering is pinned by the scenario tie_break input
            self.DT, self._tick)

    def position(self) -> Tuple[float, float]:
        """(x, y) in the lab frame."""
        return (self.x, 0.0)


class PlatoonTestbed:
    """One instantiated platoon emergency-stop run."""

    def __init__(self, scenario: Optional[PlatoonScenario] = None):
        self.scenario = scenario or PlatoonScenario()
        sc = self.scenario
        if sc.leader_interface not in ("its_g5", "5g_leader"):
            raise ValueError(
                f"unknown leader interface {sc.leader_interface!r}")
        self.streams = RandomStreams(sc.seed)
        self.sim = build_simulator(sc.tie_break, self.streams)
        self.frame = LocalFrame()
        self.medium = WirelessMedium(
            self.sim, self.streams.get("medium"),
            LinkBudget(path_loss=LogDistancePathLoss(
                exponent=sc.path_loss_exponent)))
        phy = PhyConfig(tx_power_dbm=sc.tx_power_dbm)
        den_config = DenConfig(hop_limit=sc.gbc_hop_limit)

        # RSU at the origin.
        self.rsu = RoadSideUnit(
            self.sim, self.medium, self.streams, name="rsu",
            station_id=900, station_type=StationType.ROAD_SIDE_UNIT,
            position=lambda: self.frame.to_geo(0.0, 1.0),
            phy=phy, is_rsu=True, local_frame=self.frame,
            den_config=den_config)

        # Members, leader first, spaced behind.
        self.members: List[PlatoonMember] = []
        self.units: List[OpenC2XUnit] = []
        self.handlers: List[MessageHandler] = []
        predecessor: Optional[PlatoonMember] = None
        for index in range(sc.members):
            x = sc.leader_distance + index * sc.spacing
            member = PlatoonMember(self.sim, sc, index, x, predecessor)
            unit = OpenC2XUnit(
                self.sim, self.medium, self.streams,
                name=f"obu-{index}",
                station_id=101 + index,
                station_type=StationType.PASSENGER_CAR,
                position=lambda m=member: self.frame.to_geo(*m.position()),
                dynamics=lambda m=member: (m.speed, 270.0),
                phy=phy,
                local_frame=self.frame,
                den_config=den_config,
            )
            unit.on_event(
                lambda event, record, m=member: self._on_unit_event(
                    m, event, record))
            handler = MessageHandler(
                self.sim, unit.http, member,
                rng=self.streams.get(f"handler.{index}"),
                poll_interval=sc.poll_interval)
            self.members.append(member)
            self.units.append(unit)
            self.handlers.append(handler)
            predecessor = member

        # Warning delivery path.
        self.warning_time: Optional[float] = None
        self._client = HttpClient(self.sim, self.streams.get("edge.http"),
                                  name="edge")
        if sc.leader_interface == "5g_leader":
            self.cell = FivegCell(self.sim, self.streams.get("fiveg"),
                                  FivegConfig())
            self._server_station = self.cell.station("edge-server")
            self._leader_station = self.cell.station("leader")
            self._leader_station.on_receive(self._on_leader_5g)
        self.min_gap = math.inf
        self.sim.schedule(PlatoonMember.DT, self._watch_gaps)

    # ------------------------------------------------------------------
    # Warning paths
    # ------------------------------------------------------------------

    def issue_warning(self) -> None:
        """The edge detected a hazard: deliver the warning now."""
        self.warning_time = self.sim.now
        sc = self.scenario
        if sc.leader_interface == "its_g5":
            body = self._denm_body()
            self._client.post(self.rsu.http, "/trigger_denm", body)
        else:
            # Cellular to the leader; ~200 bytes of application JSON.
            self._server_station.send("leader", self._denm_body(), 200)

    def _denm_body(self) -> Dict:
        event_geo = self.frame.to_geo(0.0, 0.0)
        return {
            "causeCode": 97,
            "subCauseCode": 1,
            "latitude": event_geo.latitude,
            "longitude": event_geo.longitude,
            "areaRadius": 120.0,
            "validityDuration": 10,
        }

    def _on_leader_5g(self, body: Dict, _latency: float) -> None:
        # The leader brakes on the cellular warning and re-advertises
        # it to the followers over 802.11p through its own DEN service.
        self.members[0].emergency_stop(reason="5g")
        if self.members[0].outcome.denm_received_at is None:
            self.members[0].outcome.denm_received_at = self.sim.now
        self._client.post(self.units[0].http, "/trigger_denm", body)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def _on_unit_event(self, member: PlatoonMember, event: str,
                       record: Dict) -> None:
        if event == "denm_received" \
                and member.outcome.denm_received_at is None:
            member.outcome.denm_received_at = record["sim_time"]

    def _watch_gaps(self) -> None:
        for ahead, behind in zip(self.members, self.members[1:]):
            gap = behind.x - ahead.x - 0.53
            self.min_gap = min(self.min_gap, gap)
        self.sim.schedule(PlatoonMember.DT, self._watch_gaps)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def run(self, warning_after: float = 2.0) -> PlatoonResult:
        """Cruise, fire the warning at *warning_after*, run to stop."""
        self.sim.schedule(warning_after, self.issue_warning)
        self.sim.run_until(self.scenario.timeout)
        collisions = sum(1 for ahead, behind in zip(self.members,
                                                    self.members[1:])
                         if behind.x - ahead.x - 0.53 <= 0.0)
        assert self.warning_time is not None
        return PlatoonResult(
            scenario=self.scenario,
            warning_time=self.warning_time,
            members=[member.outcome for member in self.members],
            min_gap=self.min_gap,
            collisions=collisions,
        )


def run_platoon(scenario: Optional[PlatoonScenario] = None,
                warning_after: float = 2.0) -> PlatoonResult:
    """Build and run one platoon experiment."""
    return PlatoonTestbed(scenario).run(warning_after)
