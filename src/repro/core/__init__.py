"""The testbed core: scenario assembly and end-to-end measurement.

This package is the paper's contribution: a laboratory testbed that
characterises the *entire* detection-to-action delay of a
network-aided safety function, not just the communication hop.

* :mod:`repro.core.measurement` -- the step-1..6 timeline of Figure 4
  and interval computation (Table II's rows);
* :mod:`repro.core.scenario` -- experiment geometry and parameters;
* :mod:`repro.core.testbed` -- the assembled emergency-braking
  testbed (Figure 8) and the serial campaign wrapper;
* :mod:`repro.core.campaign` -- the parallel campaign execution
  engine: process-pool sharding, run caching, streamed progress;
* :mod:`repro.core.latency` -- empirical distribution functions
  (Figure 11), summary statistics, distribution fitting;
* :mod:`repro.core.braking` -- braking-distance analysis (Table III)
  and the scale -> full-size mapping model;
* :mod:`repro.core.blind_corner` -- the blind-corner intersection
  with the onboard-only baseline (the use-case's motivation);
* :mod:`repro.core.platoon` -- the platooning / multi-technology
  future-work extension;
* :mod:`repro.core.fleet` -- fleet-scale scenarios: N OBUs and M RSUs
  congesting one channel, with CBR-driven DCC and campaign sharding;
* :mod:`repro.core.artifacts` -- the content-addressed artifact
  store behind the run cache (CACHE_FORMAT v5: sharded layout,
  atomic writes, integrity-verified reads);
* :mod:`repro.core.queue` -- the durable work-queue campaign backend
  (``backend="queue"``): SQLite leases with heartbeat expiry,
  retry/requeue on worker loss, dead-letter state, bit-identical
  streamed fold.
"""

from repro.core.measurement import RunMeasurement, StepTimeline, Steps
from repro.core.scenario import EmergencyBrakeScenario
from repro.core.testbed import CampaignResult, ScaleTestbed, run_campaign
from repro.core.artifacts import ArtifactStore, CACHE_FORMAT
from repro.core.campaign import (
    BACKENDS,
    RunCache,
    RunOutcome,
    run_campaign_parallel,
    scenario_fingerprint,
)
from repro.core.latency import (
    DistributionFit,
    LatencySummary,
    empirical_distribution,
    fit_distributions,
    summarize,
)
from repro.core.braking import (
    BrakingAnalysis,
    FullScaleVehicle,
    analyse_braking,
    froude_scale_distance,
    full_scale_braking_distance,
)
from repro.core.blind_corner import (
    BlindCornerScenario,
    BlindCornerTestbed,
    compare_configurations,
)
from repro.core.platoon import PlatoonScenario, PlatoonTestbed, run_platoon
from repro.core.report import ReportConfig, generate_report, write_report
from repro.core.fleet import (
    FleetCampaignResult,
    FleetRunResult,
    FleetScenario,
    FleetTestbed,
    run_fleet,
    run_fleet_campaign,
    run_fleet_sweep,
)

__all__ = [
    "ArtifactStore",
    "BACKENDS",
    "CACHE_FORMAT",
    "BlindCornerScenario",
    "BlindCornerTestbed",
    "BrakingAnalysis",
    "CampaignResult",
    "FleetCampaignResult",
    "FleetRunResult",
    "FleetScenario",
    "FleetTestbed",
    "PlatoonScenario",
    "PlatoonTestbed",
    "ReportConfig",
    "compare_configurations",
    "generate_report",
    "run_platoon",
    "write_report",
    "DistributionFit",
    "EmergencyBrakeScenario",
    "FullScaleVehicle",
    "LatencySummary",
    "RunCache",
    "RunMeasurement",
    "RunOutcome",
    "ScaleTestbed",
    "StepTimeline",
    "Steps",
    "analyse_braking",
    "empirical_distribution",
    "fit_distributions",
    "froude_scale_distance",
    "full_scale_braking_distance",
    "run_campaign",
    "run_campaign_parallel",
    "run_fleet",
    "run_fleet_campaign",
    "run_fleet_sweep",
    "scenario_fingerprint",
    "summarize",
]
