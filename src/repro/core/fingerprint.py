"""Shared fingerprinting for frozen specs.

Every frozen, declarative spec in the testbed -- the emergency-brake
scenario, the fleet scenario, fault plans, and the variation engine's
scenario-space specs -- needs the same thing: a stable SHA-256 key
over its canonical JSON form, versioned so that format changes
invalidate old cache entries instead of colliding with them.

:func:`spec_fingerprint` is that one helper.  A fingerprint is::

    sha256("<kind>-v<format>:" + canonical_json(payload + version))

where *kind* namespaces the spec family (``"scenario"``, ``"fleet"``,
``"vary"``, ``"fault-plan"``), *format* is the family's format-version
constant (bumped when run semantics or serialisation change), and the
installed package version is always folded in, so upgrading the
package re-computes everything.  Two different kinds can never
collide, whatever their payloads, because the kind is part of the
hashed text.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict

import repro


def canonical_json(payload: Any) -> str:
    """The canonical JSON text fingerprints and digests hash over.

    Sorted keys, no whitespace, exact float reprs; non-JSON values
    fall back to ``repr`` (stable for the frozen dataclasses used in
    specs).
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=repr)


def spec_fingerprint(kind: str, format_version: object,
                     payload: Dict[str, Any]) -> str:
    """A stable SHA-256 key for one frozen spec.

    *payload* is the spec's canonical dict form (the caller decides
    what identifies a run: scenario fields, fault plan, salt, ...);
    the installed package version is folded in automatically under the
    reserved key ``"version"``.
    """
    body = dict(payload)
    body["version"] = repro.__version__
    text = canonical_json(body)
    digest = hashlib.sha256(
        f"{kind}-v{format_version}:{text}".encode("utf-8"))
    return digest.hexdigest()
