"""Latency statistics: EDFs, summaries, distribution fitting.

Provides the Figure 11 empirical distribution function and the
future-work item "carry out more measurements to produce a more
comprehensive CDF ... and possibly model it with an appropriate
distribution so that it can be used by the community".
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy import stats


def empirical_distribution(samples: Sequence[float],
                           ) -> Tuple[np.ndarray, np.ndarray]:
    """The EDF of *samples*: sorted values and cumulative fractions.

    Returns ``(xs, F)`` with ``F[i]`` the fraction of samples <= xs[i];
    plotting ``step(xs, F)`` reproduces Figure 11.
    """
    data = np.sort(np.asarray(list(samples), dtype=float))
    if data.size == 0:
        return np.array([]), np.array([])
    fractions = np.arange(1, data.size + 1) / data.size
    return data, fractions


def edf_at(samples: Sequence[float], x: float) -> float:
    """The EDF evaluated at *x*: fraction of samples <= x."""
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        return float("nan")
    return float((data <= x).mean())


@dataclasses.dataclass(frozen=True)
class LatencySummary:
    """Summary statistics of a latency sample population."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p50: float
    p90: float
    p99: float

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for printing/serialisation."""
        return dataclasses.asdict(self)


def summarize(samples: Sequence[float]) -> LatencySummary:
    """Summary statistics of *samples*."""
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        nan = float("nan")
        return LatencySummary(0, nan, nan, nan, nan, nan, nan, nan)
    return LatencySummary(
        count=int(data.size),
        mean=float(data.mean()),
        std=float(data.std(ddof=1)) if data.size > 1 else 0.0,
        minimum=float(data.min()),
        maximum=float(data.max()),
        p50=float(np.percentile(data, 50)),
        p90=float(np.percentile(data, 90)),
        p99=float(np.percentile(data, 99)),
    )


def bootstrap_mean_ci(samples: Sequence[float], confidence: float = 0.95,
                      resamples: int = 2000, seed: int = 0,
                      ) -> Tuple[float, float]:
    """Percentile-bootstrap confidence interval for the mean.

    The paper reports five-run averages with no error bars; this is
    the cheap way to attach them.
    """
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        raise ValueError("no samples")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    rng = np.random.default_rng(seed)
    means = rng.choice(data, size=(resamples, data.size),
                       replace=True).mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return (float(np.quantile(means, alpha)),
            float(np.quantile(means, 1.0 - alpha)))


@dataclasses.dataclass(frozen=True)
class DistributionFit:
    """One candidate distribution fitted to the samples."""

    name: str
    parameters: Tuple[float, ...]
    ks_statistic: float
    ks_pvalue: float
    log_likelihood: float
    aic: float


#: Candidate families for latency modelling.
_CANDIDATES = {
    "normal": stats.norm,
    "lognormal": stats.lognorm,
    "gamma": stats.gamma,
    "weibull": stats.weibull_min,
}

#: Default fitting order (insertion order of ``_CANDIDATES``).
_CANDIDATE_NAMES = tuple(_CANDIDATES)


def fit_distributions(samples: Sequence[float],
                      candidates: Sequence[str] = _CANDIDATE_NAMES,
                      ) -> List[DistributionFit]:
    """Fit candidate distributions; best (lowest AIC) first.

    Latency samples must be positive for the positive-support
    families; non-positive samples restrict fitting to the normal.
    """
    data = np.asarray(list(samples), dtype=float)
    if data.size < 3:
        raise ValueError(f"need at least 3 samples, got {data.size}")
    fits = []
    for name in candidates:
        family = _CANDIDATES.get(name)
        if family is None:
            raise ValueError(f"unknown candidate {name!r}; choose from "
                             f"{sorted(_CANDIDATES)}")
        if name != "normal" and data.min() <= 0:
            continue
        try:
            params = family.fit(data)
            log_likelihood = float(np.sum(family.logpdf(data, *params)))
            if not math.isfinite(log_likelihood):
                continue
            ks = stats.kstest(data, family.cdf, args=params)
            fits.append(DistributionFit(
                name=name,
                parameters=tuple(float(p) for p in params),
                ks_statistic=float(ks.statistic),
                ks_pvalue=float(ks.pvalue),
                log_likelihood=log_likelihood,
                aic=2.0 * len(params) - 2.0 * log_likelihood,
            ))
        except (RuntimeError, ValueError):
            continue
    fits.sort(key=lambda fit: fit.aic)
    return fits
