"""The step-1..6 measurement timeline (paper Figure 4 / Section IV-A).

The six steps of the chain of action:

1. the vehicle reaches the Action Point;
2. YOLO outputs an identification of the vehicle at the Action Point;
3. the RSU sends the DEN message;
4. the OBU receives the DEN message;
5. power to the wheels is cut (command to the actuators);
6. the vehicle comes to a halt.

Steps 2-5 are timestamped on four *different devices* using their
NTP-disciplined clocks, exactly like the paper; step 1 and 6 are
physical-world observations (ground truth here, video frames there).
Intervals are computed from the device-clock timestamps, so they
inherit the residual synchronisation error -- the same measurement
artefact the original numbers carry.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Dict, List, Optional


class Steps:
    """Step names, in chain order."""

    ACTION_POINT = "step1_action_point"
    DETECTION = "step2_detection"
    RSU_SENT = "step3_rsu_sent"
    OBU_RECEIVED = "step4_obu_received"
    ACTUATORS = "step5_actuators"
    HALTED = "step6_halted"

    ORDER = (ACTION_POINT, DETECTION, RSU_SENT, OBU_RECEIVED,
             ACTUATORS, HALTED)


@dataclasses.dataclass
class StepRecord:
    """One timestamped step."""

    step: str
    clock_time: Optional[float]   # device clock reading (may be None)
    sim_time: float               # ground-truth simulated time
    detail: Dict[str, Any] = dataclasses.field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable copy (exact: floats round-trip)."""
        return {
            "step": self.step,
            "clock_time": self.clock_time,
            "sim_time": self.sim_time,
            "detail": dict(self.detail),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StepRecord":
        """Rebuild a record serialised by :meth:`to_dict`."""
        return cls(
            step=data["step"],
            clock_time=data["clock_time"],
            sim_time=data["sim_time"],
            detail=dict(data["detail"]),
        )


class StepTimeline:
    """Collects step records during one run."""

    def __init__(self) -> None:
        self._records: Dict[str, StepRecord] = {}

    def record(self, step: str, sim_time: float,
               clock_time: Optional[float] = None,
               **detail: Any) -> None:
        """Record *step* (first occurrence wins)."""
        if step in self._records:
            return
        self._records[step] = StepRecord(
            step=step, clock_time=clock_time, sim_time=sim_time,
            detail=dict(detail))

    def get(self, step: str) -> Optional[StepRecord]:
        """The record for *step*, or None."""
        return self._records.get(step)

    def has(self, step: str) -> bool:
        """Whether *step* was recorded."""
        return step in self._records

    @property
    def complete(self) -> bool:
        """Whether every step of the chain was recorded."""
        return all(step in self._records for step in Steps.ORDER)

    def interval(self, start: str, end: str,
                 use_clock: bool = True) -> Optional[float]:
        """Elapsed seconds between two steps.

        With ``use_clock`` the device-clock timestamps are used (the
        paper's methodology); otherwise ground-truth simulated time.
        """
        a = self._records.get(start)
        b = self._records.get(end)
        if a is None or b is None:
            return None
        if use_clock and a.clock_time is not None \
                and b.clock_time is not None:
            return b.clock_time - a.clock_time
        return b.sim_time - a.sim_time

    def records(self) -> List[StepRecord]:
        """All recorded steps, in canonical chain order.

        Steps outside :data:`Steps.ORDER` (none today) would sort after
        the chain, alphabetically, so the listing never depends on the
        order events happened to fire in.
        """
        def key(record: StepRecord):
            try:
                return (0, Steps.ORDER.index(record.step))
            except ValueError:
                return (1, record.step)

        return sorted(self._records.values(), key=key)

    def to_dict(self) -> Dict[str, Any]:
        """A canonical, JSON-serialisable form of the timeline.

        Two timelines that recorded the same steps with the same
        timestamps serialise identically regardless of recording
        order, so ``a.to_dict() == b.to_dict()`` is the bit-identity
        oracle used by the campaign cache and the serial/parallel
        equivalence tests.
        """
        return {"records": [record.to_dict() for record in self.records()]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StepTimeline":
        """Rebuild a timeline serialised by :meth:`to_dict`."""
        timeline = cls()
        for entry in data["records"]:
            record = StepRecord.from_dict(entry)
            timeline._records[record.step] = record
        return timeline


@dataclasses.dataclass
class RunMeasurement:
    """The outcome of one emergency-braking run (one column of
    Table II + one of Table III)."""

    run_id: int
    timeline: StepTimeline
    #: Vehicle speed when it crossed the Action Point (m/s).
    speed_at_action_point: float = 0.0
    #: True distance to the camera when YOLO detected (m).
    detection_distance: float = 0.0
    #: Estimated distance YOLO reported (m).
    estimated_distance: float = 0.0
    #: Distance travelled from detection (step 2) to halt (m).
    braking_distance: float = 0.0
    #: Distance travelled from the Action Point (step 1) to halt (m).
    distance_from_action_point: float = 0.0
    #: Final camera-to-vehicle distance, the tape-measure reading (m).
    final_distance_to_camera: float = 0.0
    completed: bool = False

    # ------------------------------------------------------------------
    # Table II's rows
    # ------------------------------------------------------------------

    def detection_to_send(self, use_clock: bool = True) -> Optional[float]:
        """Step 2 -> 3: YOLO output to RSU DENM transmission (s)."""
        return self.timeline.interval(Steps.DETECTION, Steps.RSU_SENT,
                                      use_clock)

    def send_to_receive(self, use_clock: bool = True) -> Optional[float]:
        """Step 3 -> 4: the radio hop, RSU send to OBU receive (s)."""
        return self.timeline.interval(Steps.RSU_SENT, Steps.OBU_RECEIVED,
                                      use_clock)

    def receive_to_actuation(self, use_clock: bool = True,
                             ) -> Optional[float]:
        """Step 4 -> 5: OBU receive to actuator command (s)."""
        return self.timeline.interval(Steps.OBU_RECEIVED, Steps.ACTUATORS,
                                      use_clock)

    def total_delay(self, use_clock: bool = True) -> Optional[float]:
        """Step 2 -> 5: the paper's 'Total Delay' row (s)."""
        return self.timeline.interval(Steps.DETECTION, Steps.ACTUATORS,
                                      use_clock)

    def detection_to_halt(self) -> Optional[float]:
        """Step 2 -> 6 in ground truth (the video-frame measurement)."""
        return self.timeline.interval(Steps.DETECTION, Steps.HALTED,
                                      use_clock=False)

    def action_point_to_halt(self) -> Optional[float]:
        """Step 1 -> 6 in ground truth (s)."""
        return self.timeline.interval(Steps.ACTION_POINT, Steps.HALTED,
                                      use_clock=False)

    def intervals_ms(self, use_clock: bool = True) -> Dict[str, float]:
        """All Table II intervals in milliseconds (missing -> NaN)."""
        def ms(value: Optional[float]) -> float:
            return float("nan") if value is None else value * 1000.0

        return {
            "detection_to_send": ms(self.detection_to_send(use_clock)),
            "send_to_receive": ms(self.send_to_receive(use_clock)),
            "receive_to_actuation": ms(
                self.receive_to_actuation(use_clock)),
            "total": ms(self.total_delay(use_clock)),
        }

    # ------------------------------------------------------------------
    # Serialisation (campaign cache / equivalence oracle)
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A canonical, JSON-serialisable form of the whole measurement.

        Python's ``json`` round-trips floats exactly (shortest-repr),
        so serialise -> deserialise preserves every bit; two runs are
        *the same run* iff their ``to_dict()`` forms compare equal.
        """
        return {
            "run_id": self.run_id,
            "timeline": self.timeline.to_dict(),
            "speed_at_action_point": self.speed_at_action_point,
            "detection_distance": self.detection_distance,
            "estimated_distance": self.estimated_distance,
            "braking_distance": self.braking_distance,
            "distance_from_action_point": self.distance_from_action_point,
            "final_distance_to_camera": self.final_distance_to_camera,
            "completed": self.completed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunMeasurement":
        """Rebuild a measurement serialised by :meth:`to_dict`."""
        return cls(
            run_id=data["run_id"],
            timeline=StepTimeline.from_dict(data["timeline"]),
            speed_at_action_point=data["speed_at_action_point"],
            detection_distance=data["detection_distance"],
            estimated_distance=data["estimated_distance"],
            braking_distance=data["braking_distance"],
            distance_from_action_point=data["distance_from_action_point"],
            final_distance_to_camera=data["final_distance_to_camera"],
            completed=data["completed"],
        )


def video_frame_interval(
    timeline: StepTimeline,
    start: str,
    end: str,
    fps: float,
) -> Optional[float]:
    """The Figure-10 measurement: interval as read off video frames.

    Both step instants are quantised to the *next* frame boundary of a
    camera recording at *fps* (an event becomes visible on the first
    frame captured after it happens), so the result carries the
    +-(1/fps) error margin the paper notes.
    """
    a = timeline.get(start)
    b = timeline.get(end)
    if a is None or b is None:
        return None
    period = 1.0 / fps

    def to_frame(t: float) -> float:
        return math.ceil(t / period) * period

    return to_frame(b.sim_time) - to_frame(a.sim_time)
