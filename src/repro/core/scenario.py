"""Experiment geometry and parameters (paper Figure 8).

The emergency-braking scenario: the road-side camera sits at the lab
frame's origin facing +x; the guide line runs along the x axis; the
vehicle starts ``start_distance`` metres away, driving towards the
camera; the *Action Point* is ``action_distance`` metres from the
camera lens.  The RSU stands next to the camera; the OBU rides on the
vehicle.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

from repro.openc2x.http import HttpConfig
from repro.openc2x.unit import StackConfig
from repro.roadside.hazard_service import HazardConfig
from repro.roadside.yolo import YoloConfig
from repro.sim.clock import NtpModel
from repro.sim.kernel import TIE_BREAK_POLICIES
from repro.vehicle.dynamics import VehicleParams


@dataclasses.dataclass(frozen=True)
class EmergencyBrakeScenario:
    """Everything one run needs, in one frozen config.

    The timing defaults are calibrated to the paper's hardware
    (documented per-component in EXPERIMENTS.md): edge assessment +
    OpenC2X web service land the step-2->3 interval near the paper's
    ~28 ms; the OBU poll interval dominates step-4->5 (~29 ms); the
    radio hop stays in the low single milliseconds.
    """

    # Geometry
    start_distance: float = 6.0          # vehicle start, metres from camera
    action_distance: float = 1.52        # the Action Point
    camera_fps: float = 15.0             # capture rate (processing is
                                         # YOLO-bound at ~4 FPS)
    camera_fov_deg: float = 90.0
    lateral_start_offset: float = 0.03   # initial line-tracking error (m)

    # Vehicle
    cruise_throttle: float = 0.19        # ~1.45 m/s cruise
    throttle_jitter: float = 0.04        # run-to-run throttle spread
    vehicle_marker: str = "stop_sign"    # what YOLO sees (Figure 7c)
    include_bare_vehicle: bool = True    # the chassis is also visible

    # Warning delivery: "its_g5" (RSU DENM over 802.11p, the paper's
    # setup) or "5g" (cellular bridge to the vehicle, the future-work
    # comparison).
    radio: str = "its_g5"
    #: Sign and verify messages per TS 103 097 (the paper's stack ran
    #: unsecured; the security ablation turns this on).
    secured: bool = False

    #: Hazard trigger: "threshold" (the paper's distance rule),
    #: "ldm" (require a CAM-known protagonist) or "predictive"
    #: (Kalman-tracked ETA to the Action Point).
    hazard_mode: str = "threshold"
    prediction_horizon: float = 1.5

    #: ETSI DEN repetition: when ``denm_repetition_interval`` is set,
    #: the triggered DENM is re-broadcast at that period (s) for
    #: ``denm_repetition_duration`` seconds, so a warning lost to a
    #: channel fault is recovered by a later copy.  ``None`` keeps the
    #: paper's single-shot behaviour.
    denm_repetition_interval: Optional[float] = None
    denm_repetition_duration: float = 0.0

    # Timing calibration
    obu_poll_interval: float = 0.05
    #: Use a push notification channel instead of polling the OBU
    #: (the "polling vs push" design alternative of ablation A2).
    obu_push: bool = False
    assessment_delay: float = 0.018
    rsu_http: HttpConfig = HttpConfig(service_mean=8e-3, service_std=2e-3)
    obu_http: HttpConfig = HttpConfig(service_mean=4e-3, service_std=1e-3)
    stack: StackConfig = StackConfig()

    # Models
    yolo: YoloConfig = YoloConfig()
    vehicle_params: VehicleParams = VehicleParams()
    ntp: NtpModel = NtpModel.lan_default()

    # Run control
    timeout: float = 30.0                # give up after this long (s)
    seed: int = 1
    #: Kernel tie-break policy for same-timestamp events: ``"fifo"``
    #: (insertion order, the default), ``"lifo"`` or ``"seeded"``
    #: (shuffle from the ``tie_break.shuffle`` substream).  Results
    #: must be bit-identical under all three -- the ``tie-audit``
    #: workflow verifies it; the policy is part of the campaign cache
    #: fingerprint so cached runs can never mix policies.
    tie_break: str = "fifo"

    def __post_init__(self) -> None:
        if self.tie_break not in TIE_BREAK_POLICIES:
            raise ValueError(
                f"unknown tie_break policy {self.tie_break!r}; "
                f"expected one of {', '.join(TIE_BREAK_POLICIES)}")

    @property
    def camera_fov(self) -> float:
        """Field of view in radians."""
        return math.radians(self.camera_fov_deg)

    def hazard_config(self) -> HazardConfig:
        """The hazard-service configuration for this scenario."""
        return HazardConfig(
            action_distance=self.action_distance,
            assessment_delay=self.assessment_delay,
            mode=self.hazard_mode,
            prediction_horizon=self.prediction_horizon,
            repetition_interval=self.denm_repetition_interval,
            repetition_duration=self.denm_repetition_duration,
        )

    def with_seed(self, seed: int) -> "EmergencyBrakeScenario":
        """A copy of this scenario with a different seed."""
        return dataclasses.replace(self, seed=seed)


#: Nested config fields and their types, for :func:`scenario_from_dict`.
_NESTED_FIELDS = {
    "rsu_http": HttpConfig,
    "obu_http": HttpConfig,
    "stack": StackConfig,
    "yolo": YoloConfig,
    "vehicle_params": VehicleParams,
    "ntp": NtpModel,
}


def scenario_from_dict(data: dict) -> EmergencyBrakeScenario:
    """Build a scenario from a plain dict (e.g. parsed JSON).

    Scalar fields map directly; the nested configs (``yolo``,
    ``rsu_http``, ``vehicle_params``, ...) accept sub-dicts.  Unknown
    keys raise, so typos in experiment files fail loudly.
    """
    field_names = {field.name for field in
                   dataclasses.fields(EmergencyBrakeScenario)}
    kwargs = {}
    for key, value in data.items():
        if key not in field_names:
            raise ValueError(
                f"unknown scenario field {key!r}; known fields: "
                f"{sorted(field_names)}")
        if key in _NESTED_FIELDS and isinstance(value, dict):
            kwargs[key] = _NESTED_FIELDS[key](**value)
        else:
            kwargs[key] = value
    return EmergencyBrakeScenario(**kwargs)


def scenario_from_json(path: str) -> EmergencyBrakeScenario:
    """Load a scenario from a JSON file."""
    import json

    with open(path, "r", encoding="utf-8") as handle:
        return scenario_from_dict(json.load(handle))
