"""Variation campaigns: sample a scenario space, run it, map it.

This is the layer that ties the variation engine together: a
:class:`~repro.vary.space.VariationSpec` is sampled
(:mod:`repro.vary.samplers`), every point is materialised
(:mod:`repro.vary.materialize`) and fed through the existing
deterministic engines -- :func:`repro.faults.matrix.run_fault_matrix`
for the emergency-brake family, :func:`repro.core.fleet.campaign.
run_fleet_campaign` for the fleet family -- and every outcome folds
into an exactly-mergeable :class:`~repro.vary.coverage.CoverageModel`.

Determinism contract: for a fixed ``(spec, sampler, seed)`` the whole
campaign -- point list, per-point verdicts, coverage report -- is
byte-identical across worker counts *and* across the kernel's three
tie-break policies.  Points run serially in sample order; inside one
point the runs shard over workers via the engines, whose own
bit-identity the tier-1 suite already pins.  Tie-break is an
execution-level override that never enters the report.

The run cache keys varied runs under ``(spec hash, point hash, seed)``
by salting every point's campaign with
``<spec fingerprint>:<point key>`` (see
:func:`repro.core.campaign.scenario_fingerprint`).
"""

from __future__ import annotations

import dataclasses
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.fleet.campaign import run_fleet_campaign
from repro.core.fleet.scenario import FleetScenario
from repro.faults.envelope import SafetyEnvelope
from repro.faults.matrix import run_fault_matrix
from repro.faults.plan import FaultPlan
from repro.vary.coverage import (
    CoverageModel,
    build_report,
    report_digest,
)
from repro.vary.materialize import materialize
from repro.vary.samplers import (
    Refinement,
    SAMPLERS,
    grid_points,
    lhs_points,
    refine_points,
)
from repro.vary.space import (
    AxisValue,
    Constraint,
    ContinuousAxis,
    InfeasibleSpecError,
    VariationSpec,
    point_key,
)

#: How bad each verdict is, for "worst verdict of a point".  Spans both
#: families' vocabularies; N_A (no safety content) ranks below SAFE.
VERDICT_SEVERITY: Dict[str, int] = {
    "N_A": -1,
    "SAFE": 0,
    "SAFE_STOP": 0,
    "LATE": 1,
    "LATE_STOP": 1,
    "SPURIOUS_STOP": 2,
    "PILE_UP": 3,
    "NO_STOP": 4,
}

#: Called after each evaluated point: ``progress(done, point)``.
VaryProgress = Callable[[int, "PointResult"], None]


def worst_verdict(verdicts: Sequence[str]) -> str:
    """The most severe verdict of a run population.

    Unknown verdict strings rank above everything known (fail loud in
    the report rather than silently counting as safe); ties break by
    the verdict string so the result is total-ordered.
    """
    if not verdicts:
        return "N_A"
    return max(sorted(verdicts),
               key=lambda verdict: (
                   VERDICT_SEVERITY.get(verdict, 99), verdict))


@dataclasses.dataclass(frozen=True)
class PointResult:
    """One evaluated point: where it was, how it was found, what happened."""

    #: Position in evaluation order (0-based).
    index: int
    #: The sampled axis values.
    values: Dict[str, AxisValue]
    #: SHA-256 point key (cache-salt component).
    key: str
    #: How the point was produced: ``grid`` / ``lhs`` / ``refine``.
    origin: str
    #: Parent point keys when origin is ``refine`` (safe, unsafe).
    parents: Tuple[str, ...]
    #: Per-run verdicts, run order.
    verdicts: Tuple[str, ...]
    #: Observed end-to-end latencies (ms), sorted.
    latencies_ms: Tuple[float, ...]
    #: Worst verdict over the runs.
    worst: str

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-serialisable form."""
        return {
            "index": self.index,
            "values": {name: self.values[name]
                       for name in sorted(self.values)},
            "key": self.key,
            "origin": self.origin,
            "parents": list(self.parents),
            "verdicts": list(self.verdicts),
            "latencies_ms": list(self.latencies_ms),
            "worst": self.worst,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PointResult":
        """Rebuild a point result serialised by :meth:`to_dict`."""
        return cls(
            index=int(data["index"]),
            values=dict(data["values"]),
            key=str(data["key"]),
            origin=str(data["origin"]),
            parents=tuple(data["parents"]),
            verdicts=tuple(data["verdicts"]),
            latencies_ms=tuple(float(value)
                               for value in data["latencies_ms"]),
            worst=str(data["worst"]),
        )


@dataclasses.dataclass
class VariationResult:
    """A whole variation campaign: points, coverage, provenance."""

    spec: VariationSpec
    sampler: Dict[str, Any]
    points: List[PointResult]
    coverage: CoverageModel
    refinements: List[Refinement]

    def report(self) -> Dict[str, Any]:
        """The canonical coverage report (validated)."""
        return build_report(
            self.coverage,
            sampler_meta=self.sampler,
            points=[point.to_dict() for point in self.points],
            refinements=[entry.to_dict()
                         for entry in self.refinements],
        )

    def digest(self) -> str:
        """SHA-256 over the canonical report JSON."""
        return report_digest(self.report())

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-serialisable form."""
        return {
            "spec": self.spec.to_dict(),
            "sampler": {key: self.sampler[key]
                        for key in sorted(self.sampler)},
            "points": [point.to_dict() for point in self.points],
            "coverage": self.coverage.to_dict(),
            "refinements": [entry.to_dict()
                            for entry in self.refinements],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "VariationResult":
        """Rebuild a campaign serialised by :meth:`to_dict`."""
        return cls(
            spec=VariationSpec.from_dict(data["spec"]),
            sampler=dict(data["sampler"]),
            points=[PointResult.from_dict(entry)
                    for entry in data["points"]],
            coverage=CoverageModel.from_dict(data["coverage"]),
            refinements=[Refinement.from_dict(entry)
                         for entry in data["refinements"]],
        )


def _evaluate_point(
    spec: VariationSpec,
    values: Dict[str, AxisValue],
    key: str,
    runs_per_point: int,
    base_seed: int,
    workers: int,
    cache_dir: Optional[str],
    tie_break: Optional[str],
    envelope: Optional[SafetyEnvelope],
    backend: str = "pool",
    queue_dir: Optional[str] = None,
) -> Tuple[Tuple[str, ...], Tuple[float, ...], Tuple[str, ...]]:
    """Run one point: (verdicts, latencies ms, fault kinds)."""
    point = materialize(spec, values, tie_break=tie_break)
    salt = f"{spec.fingerprint()}:{key}"
    point_queue_dir = None
    if queue_dir is not None:
        import os

        point_queue_dir = os.path.join(queue_dir, f"point-{key[:12]}")
    if isinstance(point.scenario, FleetScenario):
        campaign = run_fleet_campaign(
            point.scenario, runs=runs_per_point, base_seed=base_seed,
            workers=workers, backend=backend,
            queue_dir=point_queue_dir)
        verdicts = tuple(run.verdict for run in campaign.runs)
        latencies = tuple(sorted(
            value for run in campaign.runs
            for value in run.latencies()))
        kinds: Tuple[str, ...] = ()
    else:
        plan = point.fault_plan or FaultPlan.empty()
        matrix = run_fault_matrix(
            scenario=point.scenario, plans=[plan],
            runs=runs_per_point, base_seed=base_seed, workers=workers,
            cache_dir=cache_dir, envelope=envelope, cache_salt=salt,
            backend=backend, queue_dir=point_queue_dir)
        row = matrix.rows[0]
        verdicts = tuple(entry.verdict for entry in row.verdicts)
        latencies = tuple(sorted(
            entry.total_delay_ms for entry in row.verdicts
            if entry.total_delay_ms is not None))
        kinds = tuple(sorted({fault.KIND for fault in plan.faults}))
    return verdicts, latencies, kinds


def _candidate_count(spec: VariationSpec, origin: str, levels: int,
                     points: int) -> int:
    """How many raw samples the sampler drew before constraints."""
    if origin == "grid":
        count = 1
        for axis in spec.axes:
            count *= len(axis.grid(levels))
        return count
    return points


def run_variation_campaign(
    spec: VariationSpec,
    sampler: str = "grid",
    points: int = 16,
    levels: int = 3,
    refine_rounds: int = 0,
    refine_budget: int = 4,
    runs_per_point: int = 1,
    base_seed: int = 1,
    sample_seed: Optional[int] = None,
    workers: int = 1,
    cache_dir: Optional[str] = None,
    tie_break: Optional[str] = None,
    envelope: Optional[SafetyEnvelope] = None,
    progress: Optional[VaryProgress] = None,
    backend: str = "pool",
    queue_dir: Optional[str] = None,
) -> VariationResult:
    """Sample *spec*, run every point, and fold coverage.

    ``sampler`` is ``grid`` (cartesian product at *levels* per range
    axis), ``lhs`` (*points* Latin-Hypercube samples drawn from the
    ``vary.*`` substreams of *sample_seed*, default *base_seed*) or
    ``adaptive`` (LHS seeding plus at least one refinement round
    bisecting observed SAFE <-> LATE/NO boundaries).  *refine_rounds*
    > 0 also adds refinement on top of grid or lhs sampling.

    Every point runs *runs_per_point* seeds ``base_seed ..`` through
    the family's parallel engine; *workers* only shards those runs --
    the report is byte-identical for any value.  *tie_break*
    optionally overrides the kernel tie-break policy per run and by
    design cannot change any result.  *backend*/*queue_dir* forward
    to the campaign engine (``"queue"`` = the durable work queue,
    per-point state under ``queue_dir/point-<key>``); the backend
    cannot change any result either.

    A spec whose constraints reject every candidate point raises
    :class:`~repro.vary.space.InfeasibleSpecError` -- an empty
    campaign is a spec bug, not a valid (vacuously covered) report.
    """
    if sampler not in SAMPLERS:
        raise ValueError(
            f"unknown sampler {sampler!r}; choose from {SAMPLERS}")
    if runs_per_point < 1:
        raise ValueError(
            f"runs_per_point must be >= 1, got {runs_per_point}")
    if sample_seed is None:
        sample_seed = base_seed

    if sampler == "grid":
        initial = grid_points(spec, levels=levels)
        origin = "grid"
    else:
        initial = lhs_points(spec, points, seed=sample_seed)
        origin = "lhs"
    if not initial:
        raise InfeasibleSpecError(
            spec.name, _candidate_count(spec, origin, levels, points),
            origin)
    rounds = refine_rounds
    if sampler == "adaptive":
        rounds = max(1, refine_rounds)

    sampler_meta: Dict[str, Any] = {
        "strategy": sampler,
        "base_seed": base_seed,
        "sample_seed": sample_seed,
        "runs_per_point": runs_per_point,
        "levels": levels,
        "points_requested": points,
        "refine_rounds": rounds,
        "refine_budget": refine_budget,
    }

    coverage = CoverageModel(spec)
    results: List[PointResult] = []
    evaluated: List[Tuple[Dict[str, AxisValue], str]] = []
    seen_keys: Set[str] = set()
    refinements: List[Refinement] = []

    def evaluate(values: Dict[str, AxisValue], origin: str,
                 parents: Tuple[str, ...]) -> None:
        key = point_key(values)
        seen_keys.add(key)
        verdicts, latencies, kinds = _evaluate_point(
            spec, values, key, runs_per_point, base_seed, workers,
            cache_dir, tie_break, envelope, backend=backend,
            queue_dir=queue_dir)
        point = PointResult(
            index=len(results), values=values, key=key,
            origin=origin, parents=parents, verdicts=verdicts,
            latencies_ms=latencies, worst=worst_verdict(verdicts))
        results.append(point)
        evaluated.append((values, point.worst))
        coverage.observe_point(key, values, verdicts, latencies,
                               kinds)
        if progress is not None:
            progress(len(results), point)

    for values in initial:
        evaluate(values, origin, ())

    for _ in range(rounds):
        batch = refine_points(spec, evaluated, budget=refine_budget,
                              exclude_keys=seen_keys)
        if not batch:
            break
        refinements.extend(batch)
        for refinement in batch:
            evaluate(refinement.values, "refine",
                     (refinement.parent_safe,
                      refinement.parent_unsafe))

    return VariationResult(spec=spec, sampler=sampler_meta,
                           points=results, coverage=coverage,
                           refinements=refinements)


def sample_only(spec: VariationSpec, sampler: str = "grid",
                points: int = 16, levels: int = 3,
                sample_seed: int = 1,
                ) -> List[Dict[str, AxisValue]]:
    """The point list a campaign would evaluate, without running it.

    ``adaptive`` yields its LHS seeding (refinements depend on
    verdicts, which require running).  Backs ``vary sample`` and
    ``--dry-run``.  Like the campaign, an all-infeasible sample
    raises :class:`~repro.vary.space.InfeasibleSpecError`.
    """
    if sampler not in SAMPLERS:
        raise ValueError(
            f"unknown sampler {sampler!r}; choose from {SAMPLERS}")
    if sampler == "grid":
        sampled = grid_points(spec, levels=levels)
        origin = "grid"
    else:
        sampled = lhs_points(spec, points, seed=sample_seed)
        origin = "lhs"
    if not sampled:
        raise InfeasibleSpecError(
            spec.name, _candidate_count(spec, origin, levels, points),
            origin)
    return sampled


# ---------------------------------------------------------------------------
# Demo specs
# ---------------------------------------------------------------------------


def blind_corner_demo() -> VariationSpec:
    """The blind-corner sweep from EXPERIMENTS.md §vary.

    Two axes straddle the stopping boundary of the fleet blind-corner
    workload: the protagonist halts from ``speed`` (2 m/s) at
    ``brake_deceleration`` (4.5 m/s^2) once the DENM lands after
    ``warning_after``, so it travels roughly ``2 * warning_after +
    0.45`` m -- points below that line brake too late.  SAFE and
    LATE/NO both occur inside the box, which is what makes the
    adaptive sampler's boundary bisection observable.
    """
    return VariationSpec(
        name="blind-corner-demo",
        family="fleet",
        axes=(
            ContinuousAxis("protagonist_start", 2.5, 11.0),
            ContinuousAxis("warning_after", 1.0, 4.0),
        ),
        base={
            "workload": "blind_corner",
            "n_obus": 2,
            "duration": 6.0,
        },
        coverage_bins=4,
    )


def brake_demo() -> VariationSpec:
    """An emergency-brake sweep over the Action Point geometry.

    Varies where the vehicle starts and where the Action Point sits
    (the paper's Figure 7 geometry); the constraint keeps the Action
    Point strictly inside the approach.
    """
    return VariationSpec(
        name="brake-demo",
        family="emergency_brake",
        axes=(
            ContinuousAxis("action_distance", 0.8, 2.4),
            ContinuousAxis("start_distance", 3.0, 9.0),
        ),
        constraints=(
            Constraint(lhs="action_distance", op="<",
                       rhs_axis="start_distance"),
        ),
        coverage_bins=4,
    )


def demo_specs() -> Dict[str, VariationSpec]:
    """The built-in example specs, by name."""
    specs = [blind_corner_demo(), brake_demo()]
    return {spec.name: spec for spec in specs}
