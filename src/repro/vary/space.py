"""Declarative scenario-space specs: typed axes over scenario knobs.

A :class:`VariationSpec` describes a whole *family* of runs instead of
one run: a base scenario (``family`` + fixed ``base`` overrides) plus
typed **axes** that span the knobs worth exploring -- continuous and
integer ranges, categorical choices and booleans -- with optional
cross-axis **constraints** (``action_distance < start_distance``).
Everything is frozen, canonically serialisable
(``to_dict``/``from_dict``) and fingerprintable through the shared
:func:`~repro.core.fingerprint.spec_fingerprint` helper, so a spec
identifies its whole campaign the way a scenario identifies one run.

A **point** of the space is a plain ``{axis name: value}`` dict; its
identity is :func:`point_key` -- the SHA-256 of its canonical JSON --
which the run cache, the coverage model and the adaptive sampler all
key on.
"""

from __future__ import annotations

import dataclasses
import hashlib
import math
from typing import Any, Dict, List, Mapping, Sequence, Tuple, Union

from repro.core.fingerprint import canonical_json, spec_fingerprint

#: Bump when spec semantics or serialisation change; part of the
#: spec fingerprint.
VARY_FORMAT = 1

#: Scenario families a spec can vary.
FAMILIES = ("emergency_brake", "fleet")

#: The value types an axis can produce.
AxisValue = Union[bool, int, float, str]


class InfeasibleSpecError(ValueError):
    """Every sampled point of a spec violated its constraints.

    Raised by the campaign layer instead of silently producing an
    empty (vacuously covered) report: a spec whose constraint set
    rejects the whole sampled space is a spec bug the author must
    see.  Carries the spec name and how many candidates were tried.
    """

    def __init__(self, spec_name: str, tried: int, sampler: str):
        self.spec_name = spec_name
        self.tried = tried
        self.sampler = sampler
        super().__init__(
            f"spec {spec_name!r} is infeasible: all {tried} "
            f"candidate point(s) from the {sampler!r} sampler "
            f"violate its constraints")


# ---------------------------------------------------------------------------
# Axes
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ContinuousAxis:
    """A real-valued closed range ``[low, high]``."""

    name: str
    low: float
    high: float

    KIND = "continuous"

    def __post_init__(self) -> None:
        _check_axis_name(self.name)
        if not (math.isfinite(self.low) and math.isfinite(self.high)):
            raise ValueError(
                f"axis {self.name!r}: bounds must be finite, got "
                f"[{self.low}, {self.high}]")
        if not self.low < self.high:
            raise ValueError(
                f"axis {self.name!r}: low must be < high, got "
                f"[{self.low}, {self.high}]")

    def from_unit(self, unit: float) -> float:
        """Map ``unit`` in [0, 1) onto the range."""
        return self.low + (self.high - self.low) * unit

    def normalise(self, value: AxisValue) -> float:
        """Map a value of this axis into [0, 1]."""
        return (float(value) - self.low) / (self.high - self.low)

    def grid(self, levels: int) -> List[AxisValue]:
        """*levels* evenly spaced values, endpoints included."""
        if levels < 1:
            raise ValueError(f"levels must be >= 1, got {levels}")
        if levels == 1:
            return [(self.low + self.high) / 2.0]
        step = (self.high - self.low) / (levels - 1)
        return [self.low + step * index for index in range(levels)]

    def bins(self, coverage_bins: int) -> int:
        """How many coverage bins this axis occupies."""
        return coverage_bins

    def bin_of(self, value: AxisValue, coverage_bins: int) -> int:
        """The coverage bin index of *value*."""
        unit = self.normalise(value)
        return min(coverage_bins - 1, max(0, int(unit * coverage_bins)))

    def midpoint(self, a: AxisValue, b: AxisValue) -> AxisValue:
        """The value halfway between two points on this axis."""
        return (float(a) + float(b)) / 2.0

    def validate(self, value: AxisValue) -> None:
        """Raise unless *value* lies on this axis."""
        if not isinstance(value, (int, float)) \
                or isinstance(value, bool) \
                or not self.low <= float(value) <= self.high:
            raise ValueError(
                f"axis {self.name!r}: {value!r} outside "
                f"[{self.low}, {self.high}]")

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-serialisable form."""
        return {"kind": self.KIND, "name": self.name,
                "low": self.low, "high": self.high}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ContinuousAxis":
        """Rebuild an axis serialised by :meth:`to_dict`."""
        _check_axis_keys(cls.KIND, data, ("name", "low", "high"))
        return cls(name=str(data["name"]), low=float(data["low"]),
                   high=float(data["high"]))


@dataclasses.dataclass(frozen=True)
class IntAxis:
    """An integer range ``low..high``, both ends inclusive."""

    name: str
    low: int
    high: int

    KIND = "int"

    def __post_init__(self) -> None:
        _check_axis_name(self.name)
        if not self.low < self.high:
            raise ValueError(
                f"axis {self.name!r}: low must be < high, got "
                f"[{self.low}, {self.high}]")

    @property
    def span(self) -> int:
        """How many integers the range contains."""
        return self.high - self.low + 1

    def from_unit(self, unit: float) -> int:
        """Map ``unit`` in [0, 1) onto the range."""
        return min(self.high, self.low + int(unit * self.span))

    def normalise(self, value: AxisValue) -> float:
        """Map a value of this axis into [0, 1]."""
        return (int(value) - self.low) / (self.span - 1)

    def grid(self, levels: int) -> List[AxisValue]:
        """At most *levels* evenly spaced integers (all, if few)."""
        if levels < 1:
            raise ValueError(f"levels must be >= 1, got {levels}")
        if self.span <= levels:
            return list(range(self.low, self.high + 1))
        step = (self.span - 1) / (levels - 1)
        values = {self.low + round(step * index)
                  for index in range(levels)}
        return sorted(values)

    def bins(self, coverage_bins: int) -> int:
        """How many coverage bins this axis occupies."""
        return min(coverage_bins, self.span)

    def bin_of(self, value: AxisValue, coverage_bins: int) -> int:
        """The coverage bin index of *value*."""
        bins = self.bins(coverage_bins)
        offset = int(value) - self.low
        return min(bins - 1, offset * bins // self.span)

    def midpoint(self, a: AxisValue, b: AxisValue) -> AxisValue:
        """The integer halfway between two points on this axis."""
        return (int(a) + int(b)) // 2

    def validate(self, value: AxisValue) -> None:
        """Raise unless *value* lies on this axis."""
        if not isinstance(value, int) or isinstance(value, bool) \
                or not self.low <= value <= self.high:
            raise ValueError(
                f"axis {self.name!r}: {value!r} outside "
                f"{self.low}..{self.high}")

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-serialisable form."""
        return {"kind": self.KIND, "name": self.name,
                "low": self.low, "high": self.high}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "IntAxis":
        """Rebuild an axis serialised by :meth:`to_dict`."""
        _check_axis_keys(cls.KIND, data, ("name", "low", "high"))
        return cls(name=str(data["name"]), low=int(data["low"]),
                   high=int(data["high"]))


@dataclasses.dataclass(frozen=True)
class CategoricalAxis:
    """A finite, ordered set of choices (strings or numbers)."""

    name: str
    choices: Tuple[AxisValue, ...]

    KIND = "categorical"

    def __post_init__(self) -> None:
        _check_axis_name(self.name)
        if not isinstance(self.choices, tuple):
            object.__setattr__(self, "choices", tuple(self.choices))
        if len(self.choices) < 2:
            raise ValueError(
                f"axis {self.name!r}: needs >= 2 choices, got "
                f"{self.choices!r}")
        if len(set(self.choices)) != len(self.choices):
            raise ValueError(
                f"axis {self.name!r}: duplicate choices in "
                f"{self.choices!r}")

    def from_unit(self, unit: float) -> AxisValue:
        """Map ``unit`` in [0, 1) onto a choice."""
        index = min(len(self.choices) - 1,
                    int(unit * len(self.choices)))
        return self.choices[index]

    def normalise(self, value: AxisValue) -> float:
        """The choice's index, scaled into [0, 1]."""
        index = self.choices.index(value)
        if len(self.choices) == 1:
            return 0.0
        return index / (len(self.choices) - 1)

    def grid(self, levels: int) -> List[AxisValue]:
        """Every choice (grids always cover categoricals fully)."""
        return list(self.choices)

    def bins(self, coverage_bins: int) -> int:
        """One coverage bin per choice."""
        return len(self.choices)

    def bin_of(self, value: AxisValue, coverage_bins: int) -> int:
        """The choice's index."""
        return self.choices.index(value)

    def midpoint(self, a: AxisValue, b: AxisValue) -> AxisValue:
        """Categoricals have no midpoint: keep the second parent's
        value (the sampler passes the failing side second)."""
        return b

    def validate(self, value: AxisValue) -> None:
        """Raise unless *value* is one of the choices."""
        if value not in self.choices:
            raise ValueError(
                f"axis {self.name!r}: {value!r} not in "
                f"{self.choices!r}")

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-serialisable form."""
        return {"kind": self.KIND, "name": self.name,
                "choices": list(self.choices)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CategoricalAxis":
        """Rebuild an axis serialised by :meth:`to_dict`."""
        _check_axis_keys(cls.KIND, data, ("name", "choices"))
        return cls(name=str(data["name"]),
                   choices=tuple(data["choices"]))


@dataclasses.dataclass(frozen=True)
class BooleanAxis:
    """An on/off knob."""

    name: str

    KIND = "boolean"

    def __post_init__(self) -> None:
        _check_axis_name(self.name)

    def from_unit(self, unit: float) -> bool:
        """Map ``unit`` in [0, 1) onto False/True."""
        return unit >= 0.5

    def normalise(self, value: AxisValue) -> float:
        """False -> 0.0, True -> 1.0."""
        return 1.0 if value else 0.0

    def grid(self, levels: int) -> List[AxisValue]:
        """Both values."""
        return [False, True]

    def bins(self, coverage_bins: int) -> int:
        """Two coverage bins."""
        return 2

    def bin_of(self, value: AxisValue, coverage_bins: int) -> int:
        """False -> 0, True -> 1."""
        return 1 if value else 0

    def midpoint(self, a: AxisValue, b: AxisValue) -> AxisValue:
        """Booleans have no midpoint: keep the second parent's value."""
        return b

    def validate(self, value: AxisValue) -> None:
        """Raise unless *value* is a bool."""
        if not isinstance(value, bool):
            raise ValueError(
                f"axis {self.name!r}: {value!r} is not a bool")

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-serialisable form."""
        return {"kind": self.KIND, "name": self.name}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BooleanAxis":
        """Rebuild an axis serialised by :meth:`to_dict`."""
        _check_axis_keys(cls.KIND, data, ("name",))
        return cls(name=str(data["name"]))


Axis = Union[ContinuousAxis, IntAxis, CategoricalAxis, BooleanAxis]

#: kind string -> axis class, for deserialisation.
AXIS_KINDS: Dict[str, Any] = {
    cls.KIND: cls
    for cls in (ContinuousAxis, IntAxis, CategoricalAxis, BooleanAxis)
}


def axis_from_dict(data: Dict[str, Any]) -> Axis:
    """Rebuild one axis serialised by its ``to_dict``."""
    kind = data.get("kind")
    cls = AXIS_KINDS.get(str(kind))
    if cls is None:
        raise ValueError(
            f"unknown axis kind {kind!r}; known kinds: "
            f"{sorted(AXIS_KINDS)}")
    axis: Axis = cls.from_dict(data)
    return axis


def _check_axis_name(name: str) -> None:
    if not name or not isinstance(name, str):
        raise ValueError(f"axis name must be a non-empty string, "
                         f"got {name!r}")


def _check_axis_keys(kind: str, data: Dict[str, Any],
                     expected: Tuple[str, ...]) -> None:
    unknown = set(data) - {"kind"} - set(expected)
    if unknown:
        raise ValueError(
            f"unknown field(s) {sorted(unknown)} for axis kind "
            f"{kind!r}")
    got = data.get("kind", kind)
    if got != kind:
        # Calling a concrete axis's from_dict with another kind's
        # payload must fail, not silently coerce the fields.
        raise ValueError(
            f"axis payload kind {got!r} does not match {kind!r}")


# ---------------------------------------------------------------------------
# Constraints
# ---------------------------------------------------------------------------

#: Comparison operators a constraint may use.
CONSTRAINT_OPS = ("<", "<=", ">", ">=", "==", "!=")


@dataclasses.dataclass(frozen=True)
class Constraint:
    """A cross-axis predicate every sampled point must satisfy.

    Compares the *lhs* axis either to another axis (``rhs_axis``) or
    to a literal (``rhs_value``); exactly one of the two must be set.
    Points violating any constraint are infeasible: grid sampling
    filters them out, LHS rejects them, refinement never emits them.
    """

    lhs: str
    op: str
    rhs_axis: str = ""
    rhs_value: Any = None

    def __post_init__(self) -> None:
        if self.op not in CONSTRAINT_OPS:
            raise ValueError(
                f"unknown constraint op {self.op!r}; expected one of "
                f"{CONSTRAINT_OPS}")
        if bool(self.rhs_axis) == (self.rhs_value is not None):
            raise ValueError(
                "constraint needs exactly one of rhs_axis / rhs_value")

    def satisfied(self, values: Mapping[str, AxisValue]) -> bool:
        """Whether *values* (a complete point) passes the predicate."""
        left = values[self.lhs]
        right = (values[self.rhs_axis] if self.rhs_axis
                 else self.rhs_value)
        if self.op == "<":
            return bool(left < right)
        if self.op == "<=":
            return bool(left <= right)
        if self.op == ">":
            return bool(left > right)
        if self.op == ">=":
            return bool(left >= right)
        if self.op == "==":
            return bool(left == right)
        return bool(left != right)

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-serialisable form."""
        return {"lhs": self.lhs, "op": self.op,
                "rhs_axis": self.rhs_axis,
                "rhs_value": self.rhs_value}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Constraint":
        """Rebuild a constraint serialised by :meth:`to_dict`."""
        unknown = set(data) - {"lhs", "op", "rhs_axis", "rhs_value"}
        if unknown:
            raise ValueError(
                f"unknown constraint field(s) {sorted(unknown)}")
        return cls(lhs=str(data["lhs"]), op=str(data["op"]),
                   rhs_axis=str(data["rhs_axis"]),
                   rhs_value=data["rhs_value"])


# ---------------------------------------------------------------------------
# The spec
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class VariationSpec:
    """One scenario family's searchable space.

    ``family`` selects what a point materialises into (and which
    engine runs it): ``"emergency_brake"`` feeds
    :func:`~repro.faults.matrix.run_fault_matrix`, ``"fleet"`` feeds
    :func:`~repro.core.fleet.run_fleet_campaign`.  ``base`` holds
    fixed scenario-field overrides applied to every point (dotted
    keys reach nested configs, e.g. ``"ntp.initial_offset_std"``);
    the special axis/base key ``"fault_plan"`` names a built-in fault
    plan (emergency-brake family only).
    """

    name: str
    family: str
    axes: Tuple[Axis, ...]
    constraints: Tuple[Constraint, ...] = ()
    base: Mapping[str, Any] = dataclasses.field(default_factory=dict)
    #: Coverage bins per continuous/int axis (categoricals get one
    #: bin per choice).
    coverage_bins: int = 4

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("spec name must be non-empty")
        if self.family not in FAMILIES:
            raise ValueError(
                f"unknown family {self.family!r}; expected one of "
                f"{FAMILIES}")
        if not isinstance(self.axes, tuple):
            object.__setattr__(self, "axes", tuple(self.axes))
        if not isinstance(self.constraints, tuple):
            object.__setattr__(self, "constraints",
                               tuple(self.constraints))
        if not self.axes:
            raise ValueError("spec needs at least one axis")
        names = [axis.name for axis in self.axes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate axis names in {names}")
        if self.coverage_bins < 1:
            raise ValueError(
                f"coverage_bins must be >= 1, got {self.coverage_bins}")
        axis_names = set(names)
        for constraint in self.constraints:
            if constraint.lhs not in axis_names:
                raise ValueError(
                    f"constraint lhs {constraint.lhs!r} is not an "
                    f"axis of this spec")
            if constraint.rhs_axis \
                    and constraint.rhs_axis not in axis_names:
                raise ValueError(
                    f"constraint rhs_axis {constraint.rhs_axis!r} is "
                    f"not an axis of this spec")
        overlap = axis_names & set(self.base)
        if overlap:
            raise ValueError(
                f"base overrides collide with axes: {sorted(overlap)}")
        if self.family != "emergency_brake" \
                and "fault_plan" in axis_names | set(self.base):
            raise ValueError(
                "fault_plan is only variable in the emergency_brake "
                "family")

    def axis(self, name: str) -> Axis:
        """The axis called *name* (raises KeyError if absent)."""
        for axis in self.axes:
            if axis.name == name:
                return axis
        raise KeyError(name)

    def feasible(self, values: Mapping[str, AxisValue]) -> bool:
        """Whether a complete point satisfies every constraint."""
        return all(constraint.satisfied(values)
                   for constraint in self.constraints)

    def validate_point(self, values: Mapping[str, AxisValue]) -> None:
        """Raise unless *values* is a complete, on-axis point."""
        expected = {axis.name for axis in self.axes}
        got = set(values)
        if expected != got:
            raise ValueError(
                f"point axes {sorted(got)} do not match spec axes "
                f"{sorted(expected)}")
        for axis in self.axes:
            axis.validate(values[axis.name])

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-serialisable form of the whole spec."""
        return {
            "format": VARY_FORMAT,
            "name": self.name,
            "family": self.family,
            "axes": [axis.to_dict() for axis in self.axes],
            "constraints": [constraint.to_dict()
                            for constraint in self.constraints],
            "base": {key: self.base[key]
                     for key in sorted(self.base)},
            "coverage_bins": self.coverage_bins,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "VariationSpec":
        """Rebuild a spec serialised by :meth:`to_dict`."""
        known = {"format", "name", "family", "axes", "constraints",
                 "base", "coverage_bins"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown spec field(s) {sorted(unknown)}")
        if "format" not in data:
            # A payload without the tag predates the tag itself:
            # guessing "current" here is exactly the stale-spec bug
            # the format field exists to prevent.
            raise ValueError(
                "spec payload carries no 'format' tag; re-export it "
                f"with to_dict() (this build reads format "
                f"{VARY_FORMAT})")
        fmt = data["format"]
        if fmt != VARY_FORMAT:
            raise ValueError(
                f"spec format {fmt!r} not supported (this build "
                f"reads format {VARY_FORMAT})")
        return cls(
            name=str(data["name"]),
            family=str(data["family"]),
            axes=tuple(axis_from_dict(axis)
                       for axis in data["axes"]),
            constraints=tuple(Constraint.from_dict(entry)
                              for entry in data["constraints"]),
            base=dict(data["base"]),
            coverage_bins=int(data["coverage_bins"]),
        )

    def fingerprint(self) -> str:
        """The spec's stable SHA-256 identity."""
        return spec_fingerprint("vary", VARY_FORMAT,
                                {"spec": self.to_dict()})


# ---------------------------------------------------------------------------
# Points
# ---------------------------------------------------------------------------


def canonical_point(values: Mapping[str, AxisValue]
                    ) -> Dict[str, AxisValue]:
    """The canonical (sorted-key) form of a point."""
    return {name: values[name] for name in sorted(values)}


def point_key(values: Mapping[str, AxisValue]) -> str:
    """The SHA-256 identity of one point (order-independent)."""
    text = canonical_json(canonical_point(values))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def points_digest(points: Sequence[Mapping[str, AxisValue]]) -> str:
    """SHA-256 over an ordered point list's canonical JSON."""
    text = canonical_json([canonical_point(values)
                           for values in points])
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
