"""Deterministic scenario-space variation engine.

``repro.vary`` sweeps the testbed's scenario space instead of running
one configuration at a time: a frozen, fingerprintable
:class:`~repro.vary.space.VariationSpec` declares typed axes over
scenario knobs; deterministic samplers (full grid, Latin Hypercube,
adaptive boundary refinement) turn it into points; the campaign layer
runs every point through the existing parallel engines and folds the
outcomes into an exactly-mergeable coverage model whose canonical
report names the under-explored and failing regions of the space.

Everything downstream of ``(spec, sampler, seed)`` is byte-identical
across worker counts and kernel tie-break policies.  See
ARCHITECTURE.md §13 and the ``repro vary`` CLI.
"""

from repro.vary.campaign import (
    PointResult,
    VERDICT_SEVERITY,
    VariationResult,
    VaryProgress,
    blind_corner_demo,
    brake_demo,
    demo_specs,
    run_variation_campaign,
    sample_only,
    worst_verdict,
)
from repro.vary.coverage import (
    CoverageModel,
    LATENCY_BUCKETS_MS,
    REPORT_SCHEMA,
    REPORT_SCHEMA_VERSION,
    build_report,
    classify_region,
    region_label,
    render_report,
    report_digest,
    report_json,
    validate_report,
)
from repro.vary.materialize import MaterializedPoint, materialize
from repro.vary.samplers import (
    NEUTRAL_VERDICTS,
    Refinement,
    SAFE_VERDICTS,
    SAMPLERS,
    grid_points,
    is_safe_verdict,
    lhs_points,
    refine_points,
)
from repro.vary.space import (
    Axis,
    AxisValue,
    BooleanAxis,
    CategoricalAxis,
    Constraint,
    ContinuousAxis,
    FAMILIES,
    InfeasibleSpecError,
    IntAxis,
    VARY_FORMAT,
    VariationSpec,
    axis_from_dict,
    canonical_point,
    point_key,
    points_digest,
)

__all__ = [
    "Axis",
    "AxisValue",
    "BooleanAxis",
    "CategoricalAxis",
    "Constraint",
    "ContinuousAxis",
    "CoverageModel",
    "FAMILIES",
    "InfeasibleSpecError",
    "IntAxis",
    "LATENCY_BUCKETS_MS",
    "MaterializedPoint",
    "NEUTRAL_VERDICTS",
    "PointResult",
    "REPORT_SCHEMA",
    "REPORT_SCHEMA_VERSION",
    "Refinement",
    "SAFE_VERDICTS",
    "SAMPLERS",
    "VARY_FORMAT",
    "VERDICT_SEVERITY",
    "VariationResult",
    "VariationSpec",
    "VaryProgress",
    "axis_from_dict",
    "blind_corner_demo",
    "brake_demo",
    "build_report",
    "canonical_point",
    "classify_region",
    "demo_specs",
    "grid_points",
    "is_safe_verdict",
    "lhs_points",
    "materialize",
    "point_key",
    "points_digest",
    "refine_points",
    "region_label",
    "render_report",
    "report_digest",
    "report_json",
    "run_variation_campaign",
    "sample_only",
    "validate_report",
    "worst_verdict",
]
