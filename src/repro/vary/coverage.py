"""Coverage over a sampled scenario space, exactly mergeable.

The coverage model answers *which regions of the space were explored,
and what happened there*: per-axis bin occupancy, per-region verdict
counts, a latency-bucket histogram and fault-class counts.  All state
lives in a :class:`~repro.obs.metrics.MetricsRegistry` -- integer
bucket counts plus exact :class:`~fractions.Fraction` sums -- so
merging two models is associative and commutative **bit for bit**,
exactly like campaign observability folds: shard a campaign over any
worker count, fold the per-shard coverage in any order, and the final
report is byte-identical.

A *region* is the cartesian bin cell a point falls into, rendered as
a stable label (``"protagonist_start:2|warning_after:0"``, axes in
sorted order).  The report classifies each observed region as
``safe`` / ``failing`` / ``boundary`` (both observed) and names the
axis bins that no sample ever reached.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Mapping, Sequence, Set, Tuple

from repro.core.fingerprint import canonical_json
from repro.obs.metrics import MetricsRegistry
from repro.vary.samplers import NEUTRAL_VERDICTS, is_safe_verdict
from repro.vary.space import AxisValue, VariationSpec

#: Latency buckets (ms) for the coverage histogram: the paper's
#: end-to-end delays live in the tens-of-ms decade.
LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0,
)

#: Report schema version (independent of the spec's VARY_FORMAT).
REPORT_SCHEMA_VERSION = 1


def region_label(spec: VariationSpec,
                 values: Mapping[str, AxisValue]) -> str:
    """The stable bin-cell label of one point."""
    parts: List[str] = []
    for axis in sorted(spec.axes, key=lambda axis: axis.name):
        bin_index = axis.bin_of(values[axis.name], spec.coverage_bins)
        parts.append(f"{axis.name}:{bin_index}")
    return "|".join(parts)


class CoverageModel:
    """Exactly-mergeable coverage state for one spec's campaign.

    All counts live in an internal metrics registry; the point-key
    set (which merges by union) tracks distinct evaluated points.
    Two models merge only if they describe the same spec
    (fingerprints must match).
    """

    def __init__(self, spec: VariationSpec):
        self.spec = spec
        self.registry = MetricsRegistry()
        self._point_keys: Set[str] = set()

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def observe_point(self, key: str,
                      values: Mapping[str, AxisValue],
                      verdicts: Sequence[str],
                      latencies_ms: Sequence[float],
                      fault_kinds: Sequence[str] = (),
                      ) -> None:
        """Fold one evaluated point into the model."""
        self._point_keys.add(key)
        spec = self.spec
        for axis in spec.axes:
            bin_index = axis.bin_of(values[axis.name],
                                    spec.coverage_bins)
            self.registry.counter("vary.axis_bin", axis=axis.name,
                                  bin=bin_index).inc()
        region = region_label(spec, values)
        for verdict in sorted(verdicts):
            self.registry.counter("vary.verdict",
                                  verdict=verdict).inc()
            self.registry.counter("vary.region_verdict",
                                  region=region,
                                  verdict=verdict).inc()
        for latency in sorted(latencies_ms):
            self.registry.histogram(
                "vary.latency_ms",
                buckets=LATENCY_BUCKETS_MS).observe(latency)
        for kind in sorted(fault_kinds):
            self.registry.counter("vary.fault_kind", kind=kind).inc()

    # ------------------------------------------------------------------
    # Merge / serialisation
    # ------------------------------------------------------------------

    def merge(self, other: "CoverageModel") -> None:
        """Fold *other* into this model (exact, order-independent)."""
        if other.spec.fingerprint() != self.spec.fingerprint():
            raise ValueError(
                "cannot merge coverage of different specs: "
                f"{self.spec.name!r} vs {other.spec.name!r}")
        self.registry.merge(other.registry)
        self._point_keys |= other._point_keys

    @property
    def distinct_points(self) -> int:
        """How many distinct point keys were observed."""
        return len(self._point_keys)

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-serialisable form."""
        return {
            "spec": self.spec.to_dict(),
            "point_keys": sorted(self._point_keys),
            "metrics": self.registry.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CoverageModel":
        """Rebuild a model serialised by :meth:`to_dict`."""
        model = cls(VariationSpec.from_dict(data["spec"]))
        model._point_keys = set(data["point_keys"])
        model.registry = MetricsRegistry.from_dict(data["metrics"])
        return model

    # ------------------------------------------------------------------
    # Queries (report building blocks)
    # ------------------------------------------------------------------

    def axis_occupancy(self) -> Dict[str, List[int]]:
        """Per axis: how many samples landed in each bin.

        Read-only: unexplored bins come back as 0 without creating
        metric entries (queries must never perturb the mergeable
        state).
        """
        observed: Dict[Tuple[str, int], int] = {}
        for full_name, payload in sorted(
                self.registry.to_dict().items()):
            if not full_name.startswith("vary.axis_bin{"):
                continue
            labels = _parse_labels(full_name)
            observed[(labels["axis"], int(labels["bin"]))] = \
                int(payload["value"])
        out: Dict[str, List[int]] = {}
        for axis in sorted(self.spec.axes,
                           key=lambda axis: axis.name):
            bins = axis.bins(self.spec.coverage_bins)
            out[axis.name] = [observed.get((axis.name, bin_index), 0)
                              for bin_index in range(bins)]
        return out

    def region_verdicts(self) -> Dict[str, Dict[str, int]]:
        """Observed region -> verdict -> count."""
        out: Dict[str, Dict[str, int]] = {}
        for full_name, payload in sorted(
                self.registry.to_dict().items()):
            if not full_name.startswith("vary.region_verdict{"):
                continue
            labels = _parse_labels(full_name)
            region = labels["region"]
            verdict = labels["verdict"]
            out.setdefault(region, {})[verdict] = int(payload["value"])
        return out

    def verdict_totals(self) -> Dict[str, int]:
        """Verdict -> total run count."""
        out: Dict[str, int] = {}
        for full_name, payload in sorted(
                self.registry.to_dict().items()):
            if not full_name.startswith("vary.verdict{"):
                continue
            labels = _parse_labels(full_name)
            out[labels["verdict"]] = int(payload["value"])
        return out

    def fault_kind_totals(self) -> Dict[str, int]:
        """Injected fault kind -> run count that carried it."""
        out: Dict[str, int] = {}
        for full_name, payload in sorted(
                self.registry.to_dict().items()):
            if not full_name.startswith("vary.fault_kind{"):
                continue
            labels = _parse_labels(full_name)
            out[labels["kind"]] = int(payload["value"])
        return out

    def latency_buckets(self) -> Dict[str, Any]:
        """The latency histogram's canonical dict (may be empty)."""
        for full_name, payload in sorted(
                self.registry.to_dict().items()):
            if full_name.startswith("vary.latency_ms"):
                return dict(payload)
        return {}


def _parse_labels(full_name: str) -> Dict[str, str]:
    """Invert ``name{k="v",...}`` to its label dict."""
    _, _, rest = full_name.partition("{")
    labels: Dict[str, str] = {}
    for pair in rest.rstrip("}").split(","):
        if not pair:
            continue
        key, _, value = pair.partition("=")
        labels[key] = value.strip('"')
    return labels


# ---------------------------------------------------------------------------
# The coverage report
# ---------------------------------------------------------------------------

#: JSON Schema (draft-07) for the coverage report artefact.
REPORT_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro vary coverage report",
    "type": "object",
    "required": ["schema_version", "spec", "spec_fingerprint",
                 "sampler", "points", "coverage", "regions",
                 "unexplored", "refinements", "verdict_totals"],
    "properties": {
        "schema_version": {"const": REPORT_SCHEMA_VERSION},
        "spec": {"type": "object"},
        "spec_fingerprint": {"type": "string", "minLength": 64},
        "sampler": {
            "type": "object",
            "required": ["strategy", "base_seed", "runs_per_point"],
            "properties": {
                "strategy": {"enum": ["grid", "lhs", "adaptive"]},
                "base_seed": {"type": "integer"},
                "runs_per_point": {"type": "integer", "minimum": 1},
            },
        },
        "points": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["key", "values", "origin", "verdicts",
                             "worst"],
                "properties": {
                    "key": {"type": "string", "minLength": 64},
                    "values": {"type": "object"},
                    "origin": {"enum": ["grid", "lhs", "refine"]},
                    "verdicts": {"type": "array",
                                 "items": {"type": "string"}},
                    "worst": {"type": "string"},
                    "latencies_ms": {"type": "array",
                                     "items": {"type": "number"}},
                },
            },
        },
        "coverage": {"type": "object"},
        "regions": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["region", "classification", "verdicts"],
                "properties": {
                    "region": {"type": "string"},
                    "classification": {
                        "enum": ["safe", "failing", "boundary",
                                 "neutral"]},
                    "verdicts": {"type": "object"},
                },
            },
        },
        "unexplored": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["axis", "bin"],
                "properties": {
                    "axis": {"type": "string"},
                    "bin": {"type": "integer", "minimum": 0},
                },
            },
        },
        "refinements": {"type": "array"},
        "verdict_totals": {"type": "object"},
    },
}


def classify_region(verdicts: Mapping[str, int]) -> str:
    """``safe`` / ``failing`` / ``boundary`` / ``neutral`` for one
    region's verdict counts."""
    informative = {verdict: count
                   for verdict, count in sorted(verdicts.items())
                   if verdict not in NEUTRAL_VERDICTS and count > 0}
    if not informative:
        return "neutral"
    any_safe = any(is_safe_verdict(verdict) for verdict in informative)
    any_unsafe = any(not is_safe_verdict(verdict)
                     for verdict in informative)
    if any_safe and any_unsafe:
        return "boundary"
    return "safe" if any_safe else "failing"


def build_report(coverage: CoverageModel,
                 sampler_meta: Mapping[str, Any],
                 points: Sequence[Mapping[str, Any]],
                 refinements: Sequence[Mapping[str, Any]] = (),
                 ) -> Dict[str, Any]:
    """Assemble the canonical coverage-report dict.

    *points* and *refinements* are already-canonical dicts (the
    campaign layer builds them from its
    :class:`~repro.vary.campaign.PointResult` records); everything
    here is pure bookkeeping over deterministic inputs, so the report
    is byte-stable for a fixed (spec, seed) campaign regardless of
    worker count or tie-break policy.
    """
    spec = coverage.spec
    regions: List[Dict[str, Any]] = []
    for region, verdicts in sorted(coverage.region_verdicts().items()):
        regions.append({
            "region": region,
            "classification": classify_region(verdicts),
            "verdicts": {verdict: verdicts[verdict]
                         for verdict in sorted(verdicts)},
        })
    unexplored: List[Dict[str, Any]] = []
    for axis_name, counts in sorted(coverage.axis_occupancy().items()):
        for bin_index, count in enumerate(counts):
            if count == 0:
                unexplored.append({"axis": axis_name,
                                   "bin": bin_index})
    report = {
        "schema_version": REPORT_SCHEMA_VERSION,
        "spec": spec.to_dict(),
        "spec_fingerprint": spec.fingerprint(),
        "sampler": {key: sampler_meta[key]
                    for key in sorted(sampler_meta)},
        "points": [dict(point) for point in points],
        "coverage": {
            "distinct_points": coverage.distinct_points,
            "axis_occupancy": coverage.axis_occupancy(),
            "latency_buckets": coverage.latency_buckets(),
            "fault_kinds": coverage.fault_kind_totals(),
        },
        "regions": regions,
        "unexplored": unexplored,
        "refinements": [dict(entry) for entry in refinements],
        "verdict_totals": coverage.verdict_totals(),
    }
    validate_report(report)
    return report


def report_json(report: Mapping[str, Any]) -> str:
    """The canonical JSON text of a report (digest input)."""
    return canonical_json(dict(report)) + "\n"


def report_digest(report: Mapping[str, Any]) -> str:
    """SHA-256 over the canonical report JSON."""
    return hashlib.sha256(
        report_json(report).encode("utf-8")).hexdigest()


def validate_report(report: Mapping[str, Any]) -> None:
    """Structural validation of a report dict.

    Raises ``ValueError`` on any shape problem; uses ``jsonschema``
    additionally when importable (CI does).
    """
    for key in REPORT_SCHEMA["required"]:
        if key not in report:
            raise ValueError(f"coverage report missing key {key!r}")
    if report["schema_version"] != REPORT_SCHEMA_VERSION:
        raise ValueError(
            f"coverage report schema_version must be "
            f"{REPORT_SCHEMA_VERSION}")
    if not (isinstance(report["spec_fingerprint"], str)
            and len(report["spec_fingerprint"]) == 64):
        raise ValueError("spec_fingerprint must be a SHA-256 hex")
    for section in ("points", "regions", "unexplored", "refinements"):
        if not isinstance(report[section], list):
            raise ValueError(f"{section} must be an array")
    for index, point in enumerate(report["points"]):
        for key in ("key", "values", "origin", "verdicts", "worst"):
            if key not in point:
                raise ValueError(
                    f"points[{index}] missing key {key!r}")
    for index, region in enumerate(report["regions"]):
        if region.get("classification") not in (
                "safe", "failing", "boundary", "neutral"):
            raise ValueError(
                f"regions[{index}] has invalid classification "
                f"{region.get('classification')!r}")
    try:
        import jsonschema
    except ImportError:
        return
    try:
        jsonschema.validate(dict(report), REPORT_SCHEMA)
    except jsonschema.ValidationError as err:
        raise ValueError(
            f"coverage report fails schema: {err.message}") from err


def render_report(report: Mapping[str, Any],
                  top: int = 10) -> str:
    """A deterministic plain-text summary of one report."""
    lines: List[str] = []
    spec = report["spec"]
    lines.append(f"spec {spec['name']} ({spec['family']}), "
                 f"fingerprint {report['spec_fingerprint'][:16]}")
    sampler = report["sampler"]
    lines.append(f"sampler {sampler['strategy']} "
                 f"base_seed={sampler['base_seed']} "
                 f"runs/point={sampler['runs_per_point']}")
    lines.append(f"points evaluated: {len(report['points'])} "
                 f"({report['coverage']['distinct_points']} distinct)")
    totals = report["verdict_totals"]
    verdict_text = "  ".join(f"{verdict}={totals[verdict]}"
                             for verdict in sorted(totals))
    lines.append(f"verdicts: {verdict_text or '(none)'}")
    lines.append("")
    lines.append("axis occupancy (samples per bin):")
    occupancy = report["coverage"]["axis_occupancy"]
    for axis_name in sorted(occupancy):
        counts = occupancy[axis_name]
        rendered = " ".join(f"{count:4d}" for count in counts)
        lines.append(f"  {axis_name:<24} [{rendered} ]")
    unexplored = report["unexplored"]
    if unexplored:
        cells = ", ".join(f"{entry['axis']}#{entry['bin']}"
                          for entry in unexplored)
        lines.append(f"UNEXPLORED bins: {cells}")
    failing = [entry for entry in report["regions"]
               if entry["classification"] in ("failing", "boundary")]
    lines.append("")
    if failing:
        lines.append(f"failing / boundary regions "
                     f"({len(failing)} of {len(report['regions'])}):")
        for entry in failing[:top]:
            verdicts = entry["verdicts"]
            counts = "  ".join(f"{verdict}={verdicts[verdict]}"
                               for verdict in sorted(verdicts))
            lines.append(f"  [{entry['classification']:<8}] "
                         f"{entry['region']}  {counts}")
        if len(failing) > top:
            lines.append(f"  ... and {len(failing) - top} more")
    else:
        lines.append("no failing regions observed")
    refinements = report["refinements"]
    if refinements:
        lines.append("")
        lines.append(f"boundary refinements ({len(refinements)}):")
        for entry in refinements[:top]:
            lines.append(
                f"  {entry['verdict_safe']} <-> "
                f"{entry['verdict_unsafe']}  d="
                f"{entry['distance']:.3f}  "
                f"-> {canonical_json(entry['values'])}")
    return "\n".join(lines) + "\n"
