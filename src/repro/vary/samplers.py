"""Deterministic samplers over a :class:`~repro.vary.space.VariationSpec`.

Three strategies, all pure functions of ``(spec, seed, size)``:

* **grid** -- the full cartesian product of per-axis level grids
  (every categorical choice, both booleans, *levels* points per
  range axis), constraint-filtered, in axis order.  No randomness.
* **lhs** -- Latin Hypercube: each range axis is stratified into *n*
  strata; per-axis permutations and in-stratum offsets are drawn
  from named ``vary.lhs.*`` substreams of
  :class:`~repro.sim.randomness.RandomStreams`, so the same
  ``(spec, seed, n)`` always yields the byte-identical point list,
  independent of workers, chunking or call history.
* **adaptive refinement** -- given already-evaluated points with
  safety verdicts, finds the closest SAFE <-> LATE/NO pairs in
  normalised space and bisects each pair's range axes, producing the
  midpoints that sharpen the verdict boundary.

Samplers never run anything; they only produce point dicts.  The
campaign layer (:mod:`repro.vary.campaign`) materialises and runs
them.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Dict, List, Sequence, Set, Tuple

from repro.sim.randomness import RandomStreams
from repro.vary.space import (
    AxisValue,
    VariationSpec,
    canonical_point,
    point_key,
)

#: Verdicts counting as "the safety function succeeded" across both
#: scenario families (fault envelope and fleet workload vocabulary).
SAFE_VERDICTS = ("SAFE", "SAFE_STOP")

#: Verdicts that carry no safety information (pure-load workloads).
NEUTRAL_VERDICTS = ("N_A",)


def is_safe_verdict(verdict: str) -> bool:
    """Whether *verdict* counts as a success for boundary detection."""
    return verdict in SAFE_VERDICTS


# ---------------------------------------------------------------------------
# Full grid
# ---------------------------------------------------------------------------


def grid_points(spec: VariationSpec, levels: int = 3,
                ) -> List[Dict[str, AxisValue]]:
    """The constraint-filtered cartesian product of per-axis grids.

    Range axes contribute *levels* evenly spaced values (endpoints
    included); categorical axes every choice; boolean axes both
    values.  Points iterate in axis order (last axis fastest) --
    fully deterministic with no randomness at all.
    """
    per_axis = [axis.grid(levels) for axis in spec.axes]
    names = [axis.name for axis in spec.axes]
    points: List[Dict[str, AxisValue]] = []
    for combo in itertools.product(*per_axis):
        values = canonical_point(dict(zip(names, combo)))
        if spec.feasible(values):
            points.append(values)
    return points


# ---------------------------------------------------------------------------
# Latin Hypercube
# ---------------------------------------------------------------------------


def lhs_points(spec: VariationSpec, n: int, seed: int,
               ) -> List[Dict[str, AxisValue]]:
    """*n* Latin-Hypercube samples of the space, seed-deterministic.

    Every axis draws from its own named substream
    (``vary.lhs.<spec name>.<axis name>`` / ``....offset``), so adding
    an axis to a spec never perturbs the draws of the others.
    Constraint-violating samples are dropped (the campaign layer
    reports requested vs feasible counts); the returned list keeps
    stratum order.
    """
    if n < 1:
        raise ValueError(f"lhs needs n >= 1, got {n}")
    streams = RandomStreams(seed=seed)
    columns: Dict[str, List[AxisValue]] = {}
    for axis in spec.axes:
        scope = f"vary.lhs.{spec.name}.{axis.name}"
        order = streams.get(scope).permutation(n)
        offsets = streams.get(f"{scope}.offset").random(n)
        column: List[AxisValue] = []
        for index in range(n):
            unit = (float(order[index]) + float(offsets[index])) / n
            column.append(axis.from_unit(unit))
        columns[axis.name] = column
    points: List[Dict[str, AxisValue]] = []
    for index in range(n):
        values = canonical_point(
            {axis.name: columns[axis.name][index]
             for axis in spec.axes})
        if spec.feasible(values):
            points.append(values)
    return points


# ---------------------------------------------------------------------------
# Adaptive refinement
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class Refinement:
    """One boundary bisection: the midpoint and where it came from."""

    #: The new point to evaluate.
    values: Dict[str, AxisValue]
    #: Point key of the SAFE-side parent.
    parent_safe: str
    #: Point key of the LATE/NO-side parent.
    parent_unsafe: str
    #: Verdicts of the two parents (diagnostics for the report).
    verdict_safe: str
    verdict_unsafe: str
    #: Normalised L-inf distance between the parents.
    distance: float

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-serialisable form."""
        return {
            "values": canonical_point(self.values),
            "parent_safe": self.parent_safe,
            "parent_unsafe": self.parent_unsafe,
            "verdict_safe": self.verdict_safe,
            "verdict_unsafe": self.verdict_unsafe,
            "distance": self.distance,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Refinement":
        """Rebuild a refinement serialised by :meth:`to_dict`."""
        return cls(
            values=dict(data["values"]),
            parent_safe=str(data["parent_safe"]),
            parent_unsafe=str(data["parent_unsafe"]),
            verdict_safe=str(data["verdict_safe"]),
            verdict_unsafe=str(data["verdict_unsafe"]),
            distance=float(data["distance"]),
        )


def _normalised_distance(spec: VariationSpec,
                         a: Dict[str, AxisValue],
                         b: Dict[str, AxisValue]) -> float:
    """L-inf distance in normalised axis space (categorical: 0/1)."""
    worst = 0.0
    for axis in spec.axes:
        left, right = a[axis.name], b[axis.name]
        if axis.KIND in ("categorical", "boolean"):
            delta = 0.0 if left == right else 1.0
        else:
            delta = abs(axis.normalise(left) - axis.normalise(right))
        worst = max(worst, delta)
    return worst


def refine_points(
    spec: VariationSpec,
    evaluated: Sequence[Tuple[Dict[str, AxisValue], str]],
    budget: int,
    exclude_keys: Set[str],
) -> List[Refinement]:
    """Bisect the sampled space around observed verdict boundaries.

    *evaluated* is the (point, worst-verdict) history so far.  Every
    SAFE point is paired with every non-SAFE point (neutral ``N_A``
    verdicts carry no boundary information and are skipped); the
    closest pairs in normalised space -- ties broken by parent keys,
    so the order is total and deterministic -- are bisected along
    their range axes until *budget* new, feasible, never-seen
    midpoints exist.  The safe/unsafe labelling of each refinement is
    recorded, which is what lets the report *prove* a SAFE <-> LATE/NO
    region was re-sampled.
    """
    if budget < 0:
        raise ValueError(f"budget must be >= 0, got {budget}")
    safe = [(point_key(values), values, verdict)
            for values, verdict in evaluated
            if is_safe_verdict(verdict)]
    unsafe = [(point_key(values), values, verdict)
              for values, verdict in evaluated
              if not is_safe_verdict(verdict)
              and verdict not in NEUTRAL_VERDICTS]
    pairs: List[Tuple[float, str, str, Dict[str, AxisValue],
                      Dict[str, AxisValue], str, str]] = []
    for safe_key, safe_values, safe_verdict in safe:
        for unsafe_key, unsafe_values, unsafe_verdict in unsafe:
            distance = _normalised_distance(spec, safe_values,
                                            unsafe_values)
            pairs.append((distance, safe_key, unsafe_key, safe_values,
                          unsafe_values, safe_verdict, unsafe_verdict))
    pairs.sort(key=lambda item: (item[0], item[1], item[2]))

    seen = set(exclude_keys)
    refinements: List[Refinement] = []
    for (distance, safe_key, unsafe_key, safe_values, unsafe_values,
            safe_verdict, unsafe_verdict) in pairs:
        if len(refinements) >= budget:
            break
        midpoint = canonical_point({
            axis.name: axis.midpoint(safe_values[axis.name],
                                     unsafe_values[axis.name])
            for axis in spec.axes})
        key = point_key(midpoint)
        if key in seen or not spec.feasible(midpoint):
            continue
        seen.add(key)
        refinements.append(Refinement(
            values=midpoint,
            parent_safe=safe_key,
            parent_unsafe=unsafe_key,
            verdict_safe=safe_verdict,
            verdict_unsafe=unsafe_verdict,
            distance=distance,
        ))
    return refinements


#: Sampler strategy names the campaign layer accepts.
SAMPLERS = ("grid", "lhs", "adaptive")
