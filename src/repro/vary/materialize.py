"""Turn sampled points into concrete, runnable scenario objects.

A point is just ``{axis name: value}``; this module merges it with a
spec's fixed ``base`` overrides and builds the family's frozen config:

* ``emergency_brake`` -- an
  :class:`~repro.core.scenario.EmergencyBrakeScenario` (dotted keys
  reach nested configs: ``"ntp.initial_offset_std"``,
  ``"rsu_http.service_mean"``, ...) plus an optional
  :class:`~repro.faults.plan.FaultPlan` selected by the special
  ``"fault_plan"`` key (a built-in plan name);
* ``fleet`` -- a :class:`~repro.core.fleet.scenario.FleetScenario`
  (flat fields only; unknown names fail loudly).

Materialisation is pure: the same (spec, point) always yields the
same frozen objects, so the campaign cache can key on (spec hash,
point hash, seed).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.core.fleet.scenario import FleetScenario
from repro.core.scenario import EmergencyBrakeScenario, scenario_from_dict
from repro.faults.plan import FaultPlan
from repro.vary.space import AxisValue, VariationSpec

Scenario = Union[EmergencyBrakeScenario, FleetScenario]


@dataclasses.dataclass(frozen=True)
class MaterializedPoint:
    """One point's runnable form: scenario + optional fault plan."""

    scenario: Scenario
    fault_plan: Optional[FaultPlan] = None

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-serialisable form."""
        plan = None if self.fault_plan is None \
            else self.fault_plan.to_dict()
        family = ("fleet" if isinstance(self.scenario, FleetScenario)
                  else "emergency_brake")
        return {"family": family,
                "scenario": dataclasses.asdict(self.scenario),
                "fault_plan": plan}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MaterializedPoint":
        """Rebuild a materialised point serialised by :meth:`to_dict`."""
        scenario: Scenario
        if data["family"] == "fleet":
            fields = dict(data["scenario"])
            fields["dcc_thresholds"] = tuple(fields["dcc_thresholds"])
            scenario = FleetScenario(**fields)
        else:
            scenario = scenario_from_dict(data["scenario"])
        plan = (None if data.get("fault_plan") is None
                else FaultPlan.from_dict(data["fault_plan"]))
        return cls(scenario=scenario, fault_plan=plan)


def _nest_dotted(flat: Mapping[str, Any]) -> Dict[str, Any]:
    """Expand ``{"ntp.poll_interval": v}`` into nested dicts."""
    nested: Dict[str, Any] = {}
    for key in sorted(flat):
        value = flat[key]
        parts = key.split(".")
        cursor = nested
        for part in parts[:-1]:
            existing = cursor.get(part)
            if existing is None:
                existing = {}
                cursor[part] = existing
            elif not isinstance(existing, dict):
                raise ValueError(
                    f"field {key!r} conflicts with scalar override "
                    f"{part!r}")
            cursor = existing
        leaf = parts[-1]
        if isinstance(cursor.get(leaf), dict) \
                and not isinstance(value, dict):
            raise ValueError(
                f"scalar override {key!r} conflicts with nested "
                f"overrides below it")
        cursor[leaf] = value
    return nested


def _merged_fields(spec: VariationSpec,
                   values: Mapping[str, AxisValue],
                   ) -> Tuple[Dict[str, Any], Optional[str]]:
    """(base + point) field overrides, and the fault-plan name."""
    merged: Dict[str, Any] = {}
    for key in sorted(spec.base):
        merged[key] = spec.base[key]
    for key in sorted(values):
        merged[key] = values[key]
    plan_name = merged.pop("fault_plan", None)
    if plan_name is not None and not isinstance(plan_name, str):
        raise ValueError(
            f"fault_plan must name a built-in plan, got {plan_name!r}")
    return merged, plan_name


def _lookup_plan(plan_name: Optional[str]) -> Optional[FaultPlan]:
    if plan_name is None:
        return None
    from repro.faults.catalogue import plans_by_name

    catalogue = plans_by_name()
    if plan_name not in catalogue:
        raise ValueError(
            f"unknown fault plan {plan_name!r}; known plans: "
            f"{sorted(catalogue)}")
    return catalogue[plan_name]


def materialize(spec: VariationSpec,
                values: Mapping[str, AxisValue],
                seed: Optional[int] = None,
                tie_break: Optional[str] = None,
                ) -> MaterializedPoint:
    """Build the frozen scenario (and plan) for one point.

    *seed* overrides the scenario seed (the campaign layer assigns
    per-run seeds on top); *tie_break* is an execution-level override
    that is deliberately **not** part of the spec or the point -- runs
    are bit-identical under all policies, so reports must not depend
    on it.
    """
    spec.validate_point(values)
    if not spec.feasible(values):
        raise ValueError(
            f"point violates the spec's constraints: "
            f"{dict(sorted(values.items()))}")
    merged, plan_name = _merged_fields(spec, values)
    plan = _lookup_plan(plan_name)

    scenario: Scenario
    if spec.family == "emergency_brake":
        scenario = scenario_from_dict(_nest_dotted(merged))
    else:
        field_names = {field.name for field in
                       dataclasses.fields(FleetScenario)}
        unknown = set(merged) - field_names
        if unknown:
            raise ValueError(
                f"unknown fleet scenario field(s) {sorted(unknown)}; "
                f"known fields: {sorted(field_names)}")
        scenario = FleetScenario(**merged)

    if seed is not None:
        scenario = dataclasses.replace(scenario, seed=seed)
    if tie_break is not None:
        scenario = dataclasses.replace(scenario, tie_break=tie_break)
    return MaterializedPoint(scenario=scenario, fault_plan=plan)
