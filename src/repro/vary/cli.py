"""The ``repro-testbed vary`` subcommand.

Four actions over a variation spec (a built-in demo name or a JSON
file produced by ``VariationSpec.to_dict``):

* ``list-specs`` -- the built-in demo specs and their fingerprints;
* ``sample`` -- print the deterministic point list a campaign would
  evaluate, without running anything;
* ``run`` -- sample the space, run every point through the parallel
  engines, and emit the canonical coverage report (``--dry-run``
  stops after sampling and prints the plan);
* ``coverage-report`` -- validate and render a previously written
  report JSON (exit 1 if it fails the schema).

Reports are canonical JSON: for a fixed spec + seed the bytes (and
the SHA-256 digest the commands print) are identical for any
``--workers`` value and any ``--tie-break`` policy.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict

from repro.vary.campaign import (
    PointResult,
    demo_specs,
    run_variation_campaign,
    sample_only,
)
from repro.vary.coverage import (
    render_report,
    report_digest,
    report_json,
    validate_report,
)
from repro.vary.samplers import SAMPLERS
from repro.vary.space import VariationSpec, canonical_point, point_key


def _load_spec(ref: str) -> VariationSpec:
    """Resolve ``--spec``: a demo-spec name or a JSON file path."""
    specs = demo_specs()
    if ref in specs:
        return specs[ref]
    if os.path.exists(ref):
        with open(ref, "r", encoding="utf-8") as handle:
            return VariationSpec.from_dict(json.load(handle))
    raise SystemExit(
        f"repro-testbed: error: --spec {ref!r} is neither a built-in "
        f"spec ({', '.join(sorted(specs))}) nor a JSON file")


def _vary_progress(done: int, point: PointResult) -> None:
    values = json.dumps(canonical_point(point.values),
                        sort_keys=True, default=repr)
    print(f"  [{done}] {point.origin:<6} {point.worst:<12} {values}",
          file=sys.stderr)


def cmd_list_specs(args: argparse.Namespace) -> int:
    for name, spec in sorted(demo_specs().items()):
        axes = ", ".join(f"{axis.name}({axis.KIND})"
                         for axis in spec.axes)
        print(f"  {name:<20} {spec.family:<16} "
              f"{spec.fingerprint()[:16]}  {axes}")
    return 0


def cmd_sample(args: argparse.Namespace) -> int:
    spec = _load_spec(args.spec)
    points = sample_only(spec, sampler=args.sampler,
                         points=args.points, levels=args.levels,
                         sample_seed=args.sample_seed)
    print(f"{len(points)} points ({args.sampler}) of spec "
          f"{spec.name} [{spec.fingerprint()[:16]}]:")
    for values in points:
        print(f"  {point_key(values)[:12]}  "
              f"{json.dumps(values, sort_keys=True, default=repr)}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump({"spec": spec.to_dict(), "points": points},
                      handle, indent=2, sort_keys=True, default=repr)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    from repro.cli import _check_cache_dir

    spec = _load_spec(args.spec)
    if args.dry_run:
        points = sample_only(spec, sampler=args.sampler,
                             points=args.points, levels=args.levels,
                             sample_seed=args.sample_seed
                             if args.sample_seed is not None
                             else args.seed)
        extra = (" + adaptive refinement"
                 if args.sampler == "adaptive"
                 or args.refine_rounds > 0 else "")
        print(f"dry run: would evaluate {len(points)} "
              f"{args.sampler} points{extra}, "
              f"{args.runs_per_point} run(s) each, of spec "
              f"{spec.name} [{spec.fingerprint()[:16]}]")
        for values in points:
            print(f"  {point_key(values)[:12]}  "
                  f"{json.dumps(values, sort_keys=True, default=repr)}")
        return 0
    _check_cache_dir(args.cache_dir)
    result = run_variation_campaign(
        spec,
        sampler=args.sampler,
        points=args.points,
        levels=args.levels,
        refine_rounds=args.refine_rounds,
        refine_budget=args.refine_budget,
        runs_per_point=args.runs_per_point,
        base_seed=args.seed,
        sample_seed=args.sample_seed,
        workers=args.workers,
        cache_dir=args.cache_dir,
        tie_break=args.tie_break,
        progress=_vary_progress,
    )
    report = result.report()
    print(render_report(report))
    digest = report_digest(report)
    print(f"report digest: {digest}")
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(report_json(report))
        print(f"wrote {args.report}")
    failing = [entry for entry in report["regions"]
               if entry["classification"] == "failing"]
    if args.fail_on_failing and failing:
        return 1
    return 0


def cmd_coverage_report(args: argparse.Namespace) -> int:
    with open(args.input, "r", encoding="utf-8") as handle:
        report: Dict[str, Any] = json.load(handle)
    try:
        validate_report(report)
    except ValueError as error:
        print(f"INVALID: {error}", file=sys.stderr)
        return 1
    print(render_report(report))
    print(f"report digest: {report_digest(report)}")
    return 0


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``vary`` action sub-parsers to *parser*."""
    actions = parser.add_subparsers(dest="vary_command", required=True)

    list_parser = actions.add_parser(
        "list-specs", help="list the built-in demo specs")
    list_parser.set_defaults(func=cmd_list_specs)

    def add_sampling(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--spec", required=True,
                         metavar="NAME|FILE.json",
                         help="built-in spec name or a spec JSON file")
        sub.add_argument("--sampler", choices=SAMPLERS,
                         default="grid",
                         help="sampling strategy")
        sub.add_argument("--points", type=int, default=16,
                         metavar="N",
                         help="LHS / adaptive sample count")
        sub.add_argument("--levels", type=int, default=3, metavar="N",
                         help="grid levels per range axis")

    sample_parser = actions.add_parser(
        "sample", help="print the deterministic point list")
    add_sampling(sample_parser)
    sample_parser.add_argument("--sample-seed", type=int, default=1,
                               help="seed of the vary.* substreams")
    sample_parser.add_argument("--json", default=None, metavar="FILE",
                               help="also write spec + points as JSON")
    sample_parser.set_defaults(func=cmd_sample)

    run_parser = actions.add_parser(
        "run", help="run a variation campaign -> coverage report")
    add_sampling(run_parser)
    run_parser.add_argument("--seed", type=int, default=1,
                            help="base seed for the per-point runs")
    run_parser.add_argument("--sample-seed", type=int, default=None,
                            help="seed of the vary.* substreams "
                                 "(default: --seed)")
    run_parser.add_argument("--runs-per-point", type=int, default=1,
                            metavar="N",
                            help="seeds evaluated per point")
    run_parser.add_argument("--refine-rounds", type=int, default=0,
                            metavar="N",
                            help="boundary-refinement rounds "
                                 "(adaptive forces >= 1)")
    run_parser.add_argument("--refine-budget", type=int, default=4,
                            metavar="N",
                            help="new midpoints per refinement round")
    run_parser.add_argument("--workers", type=int, default=1,
                            metavar="N",
                            help="shard each point's runs over N "
                                 "processes (reports are "
                                 "byte-identical for any N)")
    run_parser.add_argument("--cache-dir", default=None, metavar="DIR",
                            help="run cache (emergency_brake family)")
    run_parser.add_argument("--tie-break",
                            choices=("fifo", "lifo", "seeded"),
                            default=None,
                            help="kernel tie-break override (cannot "
                                 "change the report bytes)")
    run_parser.add_argument("--report", default=None, metavar="FILE",
                            help="write the canonical report JSON")
    run_parser.add_argument("--dry-run", action="store_true",
                            help="print the sampling plan and exit")
    run_parser.add_argument("--fail-on-failing", action="store_true",
                            help="exit 1 if any region is classified "
                                 "failing")
    run_parser.set_defaults(func=cmd_run)

    report_parser = actions.add_parser(
        "coverage-report",
        help="validate + render an existing report JSON")
    report_parser.add_argument("--input", required=True,
                               metavar="FILE",
                               help="report JSON written by "
                                    "'vary run --report'")
    report_parser.set_defaults(func=cmd_coverage_report)


def run(args: argparse.Namespace) -> int:
    """Dispatch an already-parsed ``vary`` invocation."""
    handler = getattr(args, "func", None)
    if handler is None:
        raise SystemExit("repro-testbed vary: no action selected")
    return int(handler(args))
