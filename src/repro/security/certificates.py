"""The ITS credential chain: Root CA -> AA -> Authorization Tickets.

Signatures are simulated: a key pair is a random 128-bit secret and
its public identifier; "signing" binds (payload, secret) through a
SHA-256 digest that anyone holding the *public* identifier can check
via the issuer-side oracle embedded in the pair.  Within the
simulation this has the properties that matter -- signatures verify
only with the right key, any payload or key change breaks them --
without pulling in real cryptography.
"""

from __future__ import annotations

import dataclasses
import hashlib

import numpy as np


class SecurityError(Exception):
    """Raised on invalid credentials or failed verification."""


#: The simulation's stand-in for asymmetric verification: at key
#: generation the (public_id -> secret) binding is recorded here, and
#: :func:`verify_with_public_id` consults it.  Within the simulation
#: this preserves the properties that matter: signatures verify only
#: under the matching public_id, any payload/signature tampering
#: fails, and nobody can sign for a public_id they did not generate.
_PUBLIC_BINDINGS: dict = {}


def verify_with_public_id(public_id: str, payload: bytes,
                          signature: str) -> bool:
    """Public-side signature check (the verification oracle)."""
    secret = _PUBLIC_BINDINGS.get(public_id)
    if secret is None:
        return False
    expected = hashlib.sha256(secret.encode() + payload).hexdigest()
    return expected == signature


@dataclasses.dataclass(frozen=True)
class KeyPair:
    """A simulated asymmetric key pair.

    ``public_id`` identifies the key; ``secret`` is required to
    produce signatures (``SHA256(secret || payload)``).  Receivers
    check signatures through :func:`verify_with_public_id`, which
    plays the role of public-key verification.
    """

    public_id: str
    secret: str

    @staticmethod
    def generate(rng: np.random.Generator) -> "KeyPair":
        """A fresh key pair from *rng* (binding registered)."""
        secret = rng.bytes(16).hex()
        public_id = hashlib.sha256(
            f"pub:{secret}".encode()).hexdigest()[:16]
        _PUBLIC_BINDINGS[public_id] = secret
        return KeyPair(public_id=public_id, secret=secret)

    def sign(self, payload: bytes) -> str:
        """Produce a signature over *payload*."""
        return hashlib.sha256(
            self.secret.encode() + payload).hexdigest()

    def verify(self, payload: bytes, signature: str) -> bool:
        """Check *signature* over *payload* against this key."""
        return self.sign(payload) == signature


@dataclasses.dataclass(frozen=True)
class Certificate:
    """A credential binding a subject's key to an issuer's signature."""

    subject: str
    public_id: str
    issuer_id: str            # certificate id of the issuer ("" = root)
    valid_from: float
    valid_until: float
    signature: str
    certificate_id: str

    def is_valid_at(self, now: float) -> bool:
        """Whether the validity period covers *now*."""
        return self.valid_from <= now <= self.valid_until

    def tbs(self) -> bytes:
        """The to-be-signed portion."""
        return (f"{self.subject}|{self.public_id}|{self.issuer_id}|"
                f"{self.valid_from}|{self.valid_until}").encode()


def _certificate_id(tbs: bytes, signature: str) -> str:
    return hashlib.sha256(tbs + signature.encode()).hexdigest()[:16]


class RootCa:
    """The trust anchor.  Self-signed; issues AA certificates."""

    def __init__(self, rng: np.random.Generator, name: str = "root-ca",
                 valid_until: float = 1e9):
        self.name = name
        self.keys = KeyPair.generate(rng)
        tbs = (f"{name}|{self.keys.public_id}||0|{valid_until}").encode()
        signature = self.keys.sign(tbs)
        self.certificate = Certificate(
            subject=name,
            public_id=self.keys.public_id,
            issuer_id="",
            valid_from=0.0,
            valid_until=valid_until,
            signature=signature,
            certificate_id=_certificate_id(tbs, signature),
        )

    def issue_authority(self, rng: np.random.Generator, name: str,
                        valid_from: float = 0.0,
                        valid_until: float = 1e9,
                        ) -> "AuthorizationAuthority":
        """Create an Authorization Authority under this root."""
        keys = KeyPair.generate(rng)
        cert = self._issue(name, keys.public_id, valid_from, valid_until)
        return AuthorizationAuthority(name=name, keys=keys,
                                      certificate=cert, root=self)

    def _issue(self, subject: str, public_id: str, valid_from: float,
               valid_until: float) -> Certificate:
        cert = Certificate(
            subject=subject, public_id=public_id,
            issuer_id=self.certificate.certificate_id,
            valid_from=valid_from, valid_until=valid_until,
            signature="", certificate_id="")
        signature = self.keys.sign(cert.tbs())
        return dataclasses.replace(
            cert, signature=signature,
            certificate_id=_certificate_id(cert.tbs(), signature))


@dataclasses.dataclass
class AuthorizationAuthority:
    """Issues short-lived pseudonym certificates (ATs) to stations."""

    name: str
    keys: KeyPair
    certificate: Certificate
    root: RootCa
    issued: int = 0

    def issue_ticket(self, rng: np.random.Generator, now: float,
                     lifetime: float = 3600.0,
                     ) -> "AuthorizationTicket":
        """One fresh Authorization Ticket valid from *now*."""
        keys = KeyPair.generate(rng)
        self.issued += 1
        subject = f"AT-{self.name}-{self.issued}"
        cert = Certificate(
            subject=subject, public_id=keys.public_id,
            issuer_id=self.certificate.certificate_id,
            valid_from=now, valid_until=now + lifetime,
            signature="", certificate_id="")
        signature = self.keys.sign(cert.tbs())
        cert = dataclasses.replace(
            cert, signature=signature,
            certificate_id=_certificate_id(cert.tbs(), signature))
        return AuthorizationTicket(keys=keys, certificate=cert)


@dataclasses.dataclass(frozen=True)
class AuthorizationTicket:
    """A pseudonym credential: key pair + its certificate."""

    keys: KeyPair
    certificate: Certificate


class TrustStore:
    """Receiver-side chain validation rooted at a Root CA cert."""

    def __init__(self, root_certificate: Certificate,
                 root_keys_public: KeyPair):
        # The verifier holds the root's *public* side; in this
        # simulation the KeyPair doubles as the verification oracle.
        self.root_certificate = root_certificate
        self._root_keys = root_keys_public
        self._known: dict = {
            root_certificate.certificate_id: (root_certificate,
                                              root_keys_public)
        }
        self._authority_keys: dict = {}

    def add_authority(self, authority: AuthorizationAuthority,
                      now: float) -> None:
        """Validate and remember an AA certificate."""
        cert = authority.certificate
        if not cert.is_valid_at(now):
            raise SecurityError(f"authority cert {cert.subject} expired")
        if cert.issuer_id != self.root_certificate.certificate_id:
            raise SecurityError(
                f"authority {cert.subject} not issued by our root")
        if not self._root_keys.verify(cert.tbs(), cert.signature):
            raise SecurityError(
                f"authority {cert.subject}: bad root signature")
        self._authority_keys[cert.certificate_id] = authority.keys

    def validate_ticket(self, certificate: Certificate,
                        now: float) -> None:
        """Raise :class:`SecurityError` unless the AT chain is good."""
        if not certificate.is_valid_at(now):
            raise SecurityError(
                f"ticket {certificate.subject} outside validity")
        issuer_keys = self._authority_keys.get(certificate.issuer_id)
        if issuer_keys is None:
            raise SecurityError(
                f"ticket {certificate.subject}: unknown issuer")
        if not issuer_keys.verify(certificate.tbs(),
                                  certificate.signature):
            raise SecurityError(
                f"ticket {certificate.subject}: bad issuer signature")
