"""Pseudonym management (TS 102 941 flavour).

A vehicle holds a pool of Authorization Tickets and periodically
switches the one it signs with, so its transmissions cannot be linked
over time.  The change policy combines a minimum hold time with a
travelled-distance trigger; on change the station also rotates its
station ID (the LDM key other stations track it under).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.security.certificates import (
    AuthorizationAuthority,
    AuthorizationTicket,
    SecurityError,
)


@dataclasses.dataclass(frozen=True)
class PseudonymPolicy:
    """When to change pseudonyms."""

    #: Minimum seconds a pseudonym stays in use.
    min_hold_time: float = 300.0
    #: Change after travelling this many metres (0 disables).
    change_distance: float = 800.0
    #: Refill the pool when it drops below this many tickets.
    low_watermark: int = 3
    #: Tickets requested per refill.
    refill_count: int = 10
    #: Lifetime requested per ticket (s).
    ticket_lifetime: float = 3600.0


class PseudonymManager:
    """Owns a station's ticket pool and change schedule."""

    def __init__(
        self,
        authority: AuthorizationAuthority,
        rng: np.random.Generator,
        now: float = 0.0,
        policy: Optional[PseudonymPolicy] = None,
        station_id_source: Optional[Callable[[], int]] = None,
    ):
        self.authority = authority
        self.rng = rng
        self.policy = policy or PseudonymPolicy()
        self._station_id_source = station_id_source or (
            lambda: int(rng.integers(1, 2**32 - 1)))
        self._pool: List[AuthorizationTicket] = []
        self._changed_at = now
        self._odometer_at_change = 0.0
        self.changes = 0
        self._refill(now)
        self._current = self._pool.pop()
        self.station_id = self._station_id_source()

    @property
    def current(self) -> AuthorizationTicket:
        """The ticket currently used for signing."""
        return self._current

    @property
    def pool_size(self) -> int:
        """Unused tickets remaining."""
        return len(self._pool)

    def _refill(self, now: float) -> None:
        for _ in range(self.policy.refill_count):
            self._pool.append(self.authority.issue_ticket(
                self.rng, now, self.policy.ticket_lifetime))

    def should_change(self, now: float, odometer: float) -> bool:
        """Whether the policy calls for a pseudonym change."""
        held = now - self._changed_at
        if held < self.policy.min_hold_time:
            return False
        if self.policy.change_distance <= 0:
            return True
        travelled = odometer - self._odometer_at_change
        return travelled >= self.policy.change_distance

    def maybe_change(self, now: float, odometer: float,
                     ) -> Optional[Tuple[AuthorizationTicket, int]]:
        """Change pseudonym if due; returns (ticket, new station id)."""
        if not self.should_change(now, odometer):
            return None
        return self.force_change(now, odometer)

    def force_change(self, now: float, odometer: float = 0.0,
                     ) -> Tuple[AuthorizationTicket, int]:
        """Switch to a fresh ticket unconditionally."""
        if len(self._pool) < self.policy.low_watermark:
            self._refill(now)
        # Drop expired tickets before drawing.
        self._pool = [t for t in self._pool
                      if t.certificate.is_valid_at(now)]
        if not self._pool:
            self._refill(now)
        if not self._pool:
            raise SecurityError("pseudonym pool exhausted")
        self._current = self._pool.pop()
        self.station_id = self._station_id_source()
        self._changed_at = now
        self._odometer_at_change = odometer
        self.changes += 1
        return (self._current, self.station_id)
