"""Secured messages: signing profiles, verification, CPU cost.

TS 103 097 attaches either the full signing certificate or only its
8-byte digest to each secured message; ETSI profiles mandate the full
certificate at least once per second so receivers can learn unknown
pseudonyms.  This module reproduces that behaviour plus the
embedded-CPU cost of ECDSA operations, so the testbed can quantify
what security would add to the end-to-end latency budget.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from repro.security.certificates import (
    AuthorizationTicket,
    Certificate,
    SecurityError,
    TrustStore,
    verify_with_public_id,
)


@dataclasses.dataclass(frozen=True)
class CryptoCostModel:
    """ECDSA P-256 timings on embedded-class hardware (s)."""

    sign_mean: float = 0.8e-3
    sign_std: float = 0.1e-3
    verify_mean: float = 1.6e-3
    verify_std: float = 0.2e-3

    def sign_time(self, rng: np.random.Generator) -> float:
        """One signing duration draw."""
        return max(1e-4, float(rng.normal(self.sign_mean, self.sign_std)))

    def verify_time(self, rng: np.random.Generator) -> float:
        """One verification duration draw."""
        return max(1e-4, float(rng.normal(self.verify_mean,
                                          self.verify_std)))


@dataclasses.dataclass(frozen=True)
class SignerInfo:
    """What the sender attached: a full certificate or its digest."""

    kind: str                      # "certificate" | "digest"
    certificate: Optional[Certificate] = None
    digest: str = ""


@dataclasses.dataclass(frozen=True)
class SecuredMessage:
    """A signed payload envelope."""

    payload: bytes
    signature: str
    signer_info: SignerInfo
    generation_time: float

    @property
    def wire_overhead(self) -> int:
        """Extra bytes on the air vs the plain payload."""
        # Signature (64) + headers (~12) + cert (~120) or digest (8).
        base = 64 + 12
        if self.signer_info.kind == "certificate":
            return base + 120
        return base + 8


class MessageSigner:
    """Sender side: signs payloads under the station's current AT."""

    def __init__(self, ticket: AuthorizationTicket,
                 certificate_period: float = 1.0):
        self.ticket = ticket
        self.certificate_period = certificate_period
        self._last_certificate_at: Optional[float] = None
        self.signed = 0

    def set_ticket(self, ticket: AuthorizationTicket) -> None:
        """Switch to a new pseudonym; next message carries the cert."""
        self.ticket = ticket
        self._last_certificate_at = None

    def sign(self, payload: bytes, now: float) -> SecuredMessage:
        """Produce the secured envelope for *payload*."""
        include_certificate = (
            self._last_certificate_at is None
            or now - self._last_certificate_at >= self.certificate_period)
        if include_certificate:
            self._last_certificate_at = now
            info = SignerInfo(kind="certificate",
                              certificate=self.ticket.certificate)
        else:
            info = SignerInfo(
                kind="digest",
                digest=self.ticket.certificate.certificate_id)
        self.signed += 1
        return SecuredMessage(
            payload=payload,
            signature=self.ticket.keys.sign(payload),
            signer_info=info,
            generation_time=now,
        )


class MessageVerifier:
    """Receiver side: validates envelopes, learning certificates."""

    def __init__(self, trust_store: TrustStore):
        self.trust_store = trust_store
        self._learned: Dict[str, Certificate] = {}
        self.verified = 0
        self.rejected = 0
        self.unknown_signer = 0

    def verify(self, message: SecuredMessage, now: float) -> bytes:
        """Return the payload, or raise :class:`SecurityError`."""
        certificate = self._resolve_certificate(message)
        try:
            self.trust_store.validate_ticket(certificate, now)
        except SecurityError:
            self.rejected += 1
            raise
        if not verify_with_public_id(certificate.public_id,
                                     message.payload,
                                     message.signature):
            self.rejected += 1
            raise SecurityError("payload signature mismatch")
        self.verified += 1
        return message.payload

    def _resolve_certificate(self, message: SecuredMessage,
                             ) -> Certificate:
        info = message.signer_info
        if info.kind == "certificate":
            assert info.certificate is not None
            self._learned[info.certificate.certificate_id] = \
                info.certificate
            return info.certificate
        certificate = self._learned.get(info.digest)
        if certificate is None:
            self.unknown_signer += 1
            raise SecurityError(
                f"unknown signer digest {info.digest}; "
                f"waiting for a message with the full certificate")
        return certificate
