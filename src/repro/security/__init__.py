"""ETSI ITS security (TS 103 097 / TS 102 941, behavioural model).

Real ITS-G5 deployments sign every CAM/DENM with ECDSA under
short-lived pseudonym certificates (Authorization Tickets) issued by
an Authorization Authority chained to a Root CA.  This package models
that machinery at the level the testbed needs:

* :mod:`repro.security.certificates` -- the credential chain (root CA,
  authorization authority, authorization tickets) with validity
  periods and a *simulated* signature primitive (HMAC-style digests
  over key identifiers -- no real cryptography, but unforgeable within
  the simulation);
* :mod:`repro.security.signer` -- the secured-message envelope:
  signing profiles (certificate vs digest attached), verification
  with certificate learning, and the CPU-time cost model of
  sign/verify on embedded hardware;
* :mod:`repro.security.pseudonyms` -- pseudonym pools and the
  time/distance change policy that unlinks a vehicle's transmissions.

The emergency-braking timing ablation (`benchmarks/
test_ablation_security.py`) quantifies what signing would add to the
paper's unsecured stack.
"""

from repro.security.certificates import (
    AuthorizationAuthority,
    AuthorizationTicket,
    Certificate,
    KeyPair,
    RootCa,
    SecurityError,
)
from repro.security.signer import (
    MessageSigner,
    MessageVerifier,
    SecuredMessage,
    SignerInfo,
    CryptoCostModel,
)
from repro.security.pseudonyms import PseudonymManager, PseudonymPolicy

__all__ = [
    "AuthorizationAuthority",
    "AuthorizationTicket",
    "Certificate",
    "CryptoCostModel",
    "KeyPair",
    "MessageSigner",
    "MessageVerifier",
    "PseudonymManager",
    "PseudonymPolicy",
    "RootCa",
    "SecuredMessage",
    "SecurityError",
    "SignerInfo",
]
