"""The station-level security entity.

Bridges the credential machinery into the GeoNetworking send/receive
path: outbound payloads are signed under the current pseudonym (with
the ECDSA CPU cost charged on the simulation clock), inbound secured
packets are verified (cost charged likewise) and dropped when the
chain or signature fails.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.security.certificates import (
    AuthorizationAuthority,
    SecurityError,
    TrustStore,
)
from repro.security.pseudonyms import PseudonymManager, PseudonymPolicy
from repro.security.signer import (
    CryptoCostModel,
    MessageSigner,
    MessageVerifier,
    SecuredMessage,
)
from repro.sim.kernel import Simulator


class SecurityEntity:
    """One station's signing + verification state."""

    def __init__(
        self,
        sim: Simulator,
        authority: AuthorizationAuthority,
        trust_store: TrustStore,
        rng: np.random.Generator,
        cost_model: Optional[CryptoCostModel] = None,
        policy: Optional[PseudonymPolicy] = None,
    ):
        self.sim = sim
        self.rng = rng
        self.cost = cost_model or CryptoCostModel()
        self.pseudonyms = PseudonymManager(
            authority, rng, now=sim.now, policy=policy)
        self.signer = MessageSigner(self.pseudonyms.current)
        self.verifier = MessageVerifier(trust_store)
        self.dropped_invalid = 0
        self.deferred_unknown_signer = 0

    # ------------------------------------------------------------------
    # Outbound
    # ------------------------------------------------------------------

    def sign_async(self, payload: bytes,
                   done: Callable[[SecuredMessage], None]) -> None:
        """Sign *payload*, charging CPU time, then call *done*."""
        delay = self.cost.sign_time(self.rng)
        self.sim.schedule(
            delay,
            lambda: done(self.signer.sign(payload, self.sim.now)))

    # ------------------------------------------------------------------
    # Inbound
    # ------------------------------------------------------------------

    def verify_async(self, message: SecuredMessage,
                     accept: Callable[[bytes], None],
                     reject: Optional[Callable[[SecurityError], None]]
                     = None) -> None:
        """Verify *message*, charging CPU time, then accept/reject."""
        delay = self.cost.verify_time(self.rng)

        def run() -> None:
            try:
                payload = self.verifier.verify(message, self.sim.now)
            except SecurityError as err:
                if "unknown signer" in str(err):
                    self.deferred_unknown_signer += 1
                else:
                    self.dropped_invalid += 1
                if reject is not None:
                    reject(err)
                return
            accept(payload)

        self.sim.schedule(delay, run)

    # ------------------------------------------------------------------
    # Pseudonym rotation
    # ------------------------------------------------------------------

    def maybe_rotate(self, odometer: float) -> Optional[int]:
        """Apply the change policy; returns the new station ID if
        rotated."""
        change = self.pseudonyms.maybe_change(self.sim.now, odometer)
        if change is None:
            return None
        ticket, station_id = change
        self.signer.set_ticket(ticket)
        return station_id
