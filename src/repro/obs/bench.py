"""The ``bench`` subcommand: a fixed perf grid with a JSON artefact.

Runs a fixed scenario/seed grid (the default emergency-braking
scenario, seeds ``base_seed .. base_seed + runs - 1``) fully
instrumented, and emits one machine-readable ``BENCH_<rev>.json``
per invocation: wall time, runs/sec, kernel event throughput,
per-stage sim-time span statistics and the wall-clock profile of the
hot paths.  Committing one artefact per revision gives every future
PR a perf trajectory to compare against -- the continuous-measurement
habit the city-scale ITS testbeds stress.

The payload is validated against :data:`BENCH_SCHEMA` before it is
written (built-in structural validation, plus ``jsonschema`` when the
package is importable), so a malformed artefact fails the producer,
not a later consumer.
"""

from __future__ import annotations

import json
import math
import subprocess
from typing import Any, Dict, Optional

import repro
from repro.obs.context import ObsAggregate

#: JSON Schema (draft-07) for the bench artefact.
BENCH_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro bench artefact",
    "type": "object",
    "required": ["schema_version", "revision", "package_version",
                 "grid", "wall", "kernel", "spans", "wall_sites",
                 "metrics"],
    "properties": {
        "schema_version": {"const": 1},
        "revision": {"type": "string", "minLength": 1},
        "package_version": {"type": "string", "minLength": 1},
        "grid": {
            "type": "object",
            "required": ["scenario", "runs", "base_seed"],
            "properties": {
                "scenario": {"type": "string"},
                "runs": {"type": "integer", "minimum": 1},
                "base_seed": {"type": "integer"},
            },
        },
        "wall": {
            "type": "object",
            "required": ["total_s", "runs_per_sec", "per_run_s"],
            "properties": {
                "total_s": {"type": "number", "minimum": 0},
                "runs_per_sec": {"type": "number"},
                "per_run_s": {
                    "type": "array",
                    "items": {"type": "number", "minimum": 0},
                },
            },
        },
        "kernel": {
            "type": "object",
            "required": ["events", "events_per_sec"],
            "properties": {
                "events": {"type": "number", "minimum": 0},
                "events_per_sec": {"type": "number"},
            },
        },
        "spans": {"type": "object"},
        "wall_sites": {"type": "object"},
        "metrics": {"type": "object"},
        "fleet": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["n_obus", "n_rsus", "wall_s",
                             "kernel_events", "events_per_sec",
                             "frames_sent", "frames_delivered",
                             "cbr_mean"],
                "properties": {
                    "n_obus": {"type": "integer", "minimum": 1},
                    "n_rsus": {"type": "integer", "minimum": 1},
                    "wall_s": {"type": "number", "minimum": 0},
                    "kernel_events": {"type": "number", "minimum": 0},
                    "events_per_sec": {"type": "number"},
                    "frames_sent": {"type": "integer", "minimum": 0},
                    "frames_delivered": {"type": "integer",
                                         "minimum": 0},
                    "cbr_mean": {"type": "number", "minimum": 0},
                },
            },
        },
    },
}

#: Span stat entries must carry exactly these keys.
_STAT_KEYS = {"count", "total_s", "min_s", "max_s", "mean_s"}


def current_revision() -> str:
    """The current git short revision, or ``unknown`` outside a repo."""
    try:
        output = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
        return output or "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def default_output_path(revision: Optional[str] = None) -> str:
    """``BENCH_<rev>.json`` for *revision* (default: current HEAD)."""
    return f"BENCH_{revision or current_revision()}.json"


#: The default fleet-size axis: solo / light / congested channel.
DEFAULT_FLEET_SIZES = (1, 8, 32)


def _bench_fleet(sizes: Any, base_seed: int) -> list:
    """One instrumented fleet run per OBU count in *sizes*."""
    from time import perf_counter

    from repro.core.fleet import FleetScenario, FleetTestbed
    from repro.obs.context import ObsContext

    entries = []
    for n_obus in sizes:
        scenario = FleetScenario(n_obus=n_obus, n_rsus=2,
                                 duration=5.0, seed=base_seed)
        ctx = ObsContext()
        started = perf_counter()
        result = FleetTestbed(scenario, obs=ctx).run()
        wall = perf_counter() - started
        events = float(ctx.metrics.counter("kernel.events").value)
        entries.append({
            "n_obus": n_obus,
            "n_rsus": scenario.n_rsus,
            "wall_s": wall,
            "kernel_events": events,
            "events_per_sec": (events / wall if wall > 0
                               else float("nan")),
            "frames_sent": result.medium["sent"],
            "frames_delivered": result.medium["delivered"],
            "cbr_mean": result.mean_cbr,
        })
    return entries


def run_bench(runs: int = 5, base_seed: int = 1,
              fleet_sizes: Optional[Any] = None,
              progress: Optional[Any] = None) -> Dict[str, Any]:
    """Run the fixed grid instrumented; returns the validated payload.

    The grid is deliberately frozen -- the default
    :class:`~repro.core.scenario.EmergencyBrakeScenario` over *runs*
    consecutive seeds, serial, uncached -- so two artefacts from
    different revisions measure the same work.  *fleet_sizes* adds an
    optional fleet-size axis: one instrumented
    :class:`~repro.core.fleet.FleetTestbed` run per OBU count, so the
    artefact also tracks how throughput scales with station count.
    """
    from repro.core.campaign import run_campaign_parallel
    from repro.core.scenario import EmergencyBrakeScenario

    if runs < 1:
        raise ValueError(f"bench needs at least one run, got {runs}")
    obs = ObsAggregate()
    run_campaign_parallel(
        EmergencyBrakeScenario(), runs=runs, base_seed=base_seed,
        workers=1, obs=obs, progress=progress)

    total_wall = obs.total_wall_seconds
    kernel_events = obs.metrics.counter("kernel.events").value
    events_per_sec = (kernel_events / total_wall
                      if total_wall > 0 else float("nan"))
    payload = {
        "schema_version": 1,
        "revision": current_revision(),
        "package_version": repro.__version__,
        "grid": {
            "scenario": "emergency_brake_default",
            "runs": runs,
            "base_seed": base_seed,
        },
        "wall": {
            "total_s": total_wall,
            "runs_per_sec": obs.runs_per_second,
            "per_run_s": list(obs.run_wall_seconds),
        },
        "kernel": {
            "events": kernel_events,
            "events_per_sec": events_per_sec,
        },
        "spans": {name: stats.to_dict()
                  for name, stats in obs.span_stats_sorted().items()},
        "wall_sites": obs.wall.to_dict(),
        "metrics": obs.metrics.to_dict(),
    }
    if fleet_sizes is not None:
        payload["fleet"] = _bench_fleet(fleet_sizes, base_seed)
    validate_bench(payload)
    return payload


def write_bench(payload: Dict[str, Any], path: str) -> str:
    """Validate and write *payload* as JSON; returns *path*."""
    validate_bench(payload)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True,
                  allow_nan=False)
        handle.write("\n")
    return path


def validate_bench(payload: Dict[str, Any]) -> None:
    """Check *payload* against :data:`BENCH_SCHEMA`.

    Raises ``ValueError`` with the offending path on any mismatch.
    Runs a built-in structural check always, plus a full
    ``jsonschema`` validation when that package is importable.
    """
    _validate_structurally(payload)
    try:
        import jsonschema
    except ImportError:
        return
    try:
        jsonschema.validate(payload, BENCH_SCHEMA)
    except jsonschema.ValidationError as err:
        raise ValueError(f"bench payload fails schema: "
                         f"{err.message}") from err


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(f"bench payload invalid: {message}")


def _validate_structurally(payload: Dict[str, Any]) -> None:
    _require(isinstance(payload, dict), "payload must be an object")
    for key in BENCH_SCHEMA["required"]:
        _require(key in payload, f"missing key {key!r}")
    _require(payload["schema_version"] == 1, "schema_version must be 1")
    for key in ("revision", "package_version"):
        _require(isinstance(payload[key], str) and payload[key],
                 f"{key} must be a non-empty string")
    grid = payload["grid"]
    _require(isinstance(grid, dict), "grid must be an object")
    _require(isinstance(grid.get("scenario"), str), "grid.scenario")
    _require(isinstance(grid.get("runs"), int) and grid["runs"] >= 1,
             "grid.runs must be an integer >= 1")
    _require(isinstance(grid.get("base_seed"), int), "grid.base_seed")
    wall = payload["wall"]
    _require(isinstance(wall, dict), "wall must be an object")
    _require(_finite_nonneg(wall.get("total_s")), "wall.total_s")
    _require(_finite_number(wall.get("runs_per_sec")),
             "wall.runs_per_sec")
    _require(isinstance(wall.get("per_run_s"), list)
             and all(_finite_nonneg(v) for v in wall["per_run_s"]),
             "wall.per_run_s")
    _require(len(wall["per_run_s"]) == grid["runs"],
             "wall.per_run_s must have one entry per run")
    kernel = payload["kernel"]
    _require(isinstance(kernel, dict), "kernel must be an object")
    _require(_finite_nonneg(kernel.get("events")), "kernel.events")
    _require(_finite_number(kernel.get("events_per_sec")),
             "kernel.events_per_sec")
    for section in ("spans", "wall_sites"):
        stats = payload[section]
        _require(isinstance(stats, dict), f"{section} must be an object")
        for name, entry in stats.items():
            _require(isinstance(entry, dict)
                     and set(entry) == _STAT_KEYS,
                     f"{section}[{name!r}] must carry {_STAT_KEYS}")
    _require(isinstance(payload["metrics"], dict),
             "metrics must be an object")
    if "fleet" in payload:
        fleet = payload["fleet"]
        _require(isinstance(fleet, list), "fleet must be an array")
        for index, entry in enumerate(fleet):
            _require(isinstance(entry, dict),
                     f"fleet[{index}] must be an object")
            for key in ("n_obus", "n_rsus", "frames_sent",
                        "frames_delivered"):
                _require(isinstance(entry.get(key), int)
                         and not isinstance(entry.get(key), bool)
                         and entry[key] >= 0,
                         f"fleet[{index}].{key}")
            for key in ("wall_s", "kernel_events", "cbr_mean"):
                _require(_finite_nonneg(entry.get(key)),
                         f"fleet[{index}].{key}")
            _require(_finite_number(entry.get("events_per_sec")),
                     f"fleet[{index}].events_per_sec")


def _finite_number(value: Any) -> bool:
    return (isinstance(value, (int, float))
            and not isinstance(value, bool)
            and math.isfinite(value))


def _finite_nonneg(value: Any) -> bool:
    return _finite_number(value) and value >= 0
