"""Deterministic observability: metrics, sim-time spans, wall profiling.

The testbed's headline claims are quantitative (Table II latency
decomposition, the 1.6 ms radio hop, the 0.36 m braking distance), so
the reproduction needs a first-class measurement layer rather than ad
hoc prints.  This package provides three cooperating pieces:

* :mod:`repro.obs.metrics` -- a registry of counters, gauges and
  fixed-bucket histograms with *exact* mergeable state (histogram sums
  accumulate as rationals, so merging per-run registries is
  associative and commutative bit for bit);
* :mod:`repro.obs.spans` -- sim-time spans (``span("phy.tx") ...
  end()``) recorded per device as structured events, aggregated into
  per-stage statistics;
* :mod:`repro.obs.profile` -- wall-clock profiling hooks around the
  hot paths (per-run sim step, vision Canny/Hough, PER
  encode/decode), kept strictly separate from the simulated-time data
  because wall time is *not* deterministic.

Everything hangs off an :class:`~repro.obs.context.ObsContext`
attached to a :class:`~repro.sim.kernel.Simulator` via ``sim.obs``.
The seam is no-op-when-unset: instrumented code checks ``sim.obs is
None`` and touches neither RNG streams nor the event queue, so an
uninstrumented run is bit-identical to one that predates this package
(``tests/test_obs_instrumentation.py`` holds that oracle).
"""

from repro.obs.context import ObsAggregate, ObsContext
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    DEFAULT_BUCKETS,
)
from repro.obs.profile import WallProfiler, WallStats
from repro.obs.spans import Span, SpanEvent, SpanRecorder, SpanStats

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsAggregate",
    "ObsContext",
    "Span",
    "SpanEvent",
    "SpanRecorder",
    "SpanStats",
    "WallProfiler",
    "WallStats",
]
