"""The per-run observability context and the campaign aggregate.

:class:`ObsContext` bundles the three collectors (metrics registry,
sim-time span recorder, wall profiler) for *one* simulation run.  A
testbed built with ``ScaleTestbed(scenario, obs=ctx)`` attaches it as
``sim.obs``; every instrumented site in the stack then reports
through the convenience methods here.  When no context is attached
(``sim.obs is None``, the default) every seam is a no-op and the run
is bit-identical to an uninstrumented one.

:class:`ObsAggregate` folds per-run contexts into campaign-level
state: metric registries merge exactly, span and wall statistics
merge per name, per-run wall times accumulate for runs/sec.  The
campaign engine attaches the aggregate to its
:class:`~repro.core.testbed.CampaignResult` and the ``bench``
subcommand serialises it into ``BENCH_<rev>.json``.
"""

from __future__ import annotations

from typing import Any, ContextManager, Dict, Iterable, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import WallProfiler, WallStats
from repro.obs.spans import (
    Span,
    SpanEvent,
    SpanRecorder,
    SpanStats,
    merge_span_stats,
)


class ObsContext:
    """All collectors for one instrumented simulation run."""

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()
        self.spans = SpanRecorder()
        self.wall = WallProfiler()

    def bind(self, sim: Any) -> "ObsContext":
        """Attach to *sim*: spans read ``sim.now``, seams light up."""
        self.spans.bind(lambda: sim.now)
        sim.obs = self
        return self

    # ------------------------------------------------------------------
    # Convenience API used by the instrumentation sites
    # ------------------------------------------------------------------

    def count(self, name: str, amount: float = 1.0,
              **labels: Any) -> None:
        """Increment the counter *name*."""
        self.metrics.counter(name, **labels).inc(amount)

    def observe(self, name: str, value: float,
                buckets: Optional[Iterable[float]] = None,
                **labels: Any) -> None:
        """Observe *value* into the histogram *name*."""
        self.metrics.histogram(name, buckets=buckets,
                               **labels).observe(value)

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set the gauge *name*."""
        self.metrics.gauge(name, **labels).set(value)

    def span(self, name: str, device: str = "") -> Span:
        """Open a live sim-time span."""
        return self.spans.start(name, device=device)

    def record_span(self, name: str, start: float, end: float,
                    device: str = "") -> None:
        """Record a sim-time span whose endpoints are known."""
        self.spans.record(name, start, end, device=device)

    def profile(self, name: str) -> ContextManager[None]:
        """Wall-clock timing context for a hot path."""
        return self.wall.measure(name)

    def kernel_step(self, wall_seconds: float) -> None:
        """Kernel hook: one executed event and its wall cost."""
        self.metrics.counter("kernel.events").inc()
        self.wall.observe("kernel.step", wall_seconds)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON form of one run's observability data."""
        return {
            "metrics": self.metrics.to_dict(),
            "spans": {name: stats.to_dict()
                      for name, stats
                      in sorted(self.spans.stats().items())},
            "span_events": self.spans.to_dicts(),
            "wall": self.wall.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ObsContext":  # detlint: ignore[FPR002] -- 'spans' holds per-name statistics derived from span_events; they are re-derived on load (see docstring) so the round-trip stays byte-identical
        """Rebuild a context serialised by :meth:`to_dict`.

        Per-name span statistics are re-derived from the replayed
        events, so the round-tripped ``to_dict`` matches the
        original byte for byte.
        """
        ctx = cls()
        ctx.metrics = MetricsRegistry.from_dict(data["metrics"])
        for entry in data["span_events"]:
            ctx.spans._events.append(SpanEvent.from_dict(entry))
        ctx.wall = WallProfiler.from_dict(data["wall"])
        return ctx

    def to_prometheus_text(self) -> str:
        """Prometheus exposition text: metrics + span-duration series."""
        text = self.metrics.to_prometheus_text()
        lines: List[str] = []
        for name, stats in sorted(self.spans.stats().items()):
            flat = ("repro_span_" + name).replace(".", "_")
            lines.append(f"# TYPE {flat}_seconds summary")
            lines.append(f'{flat}_seconds_count {stats.count}')
            lines.append(f'{flat}_seconds_sum {stats.total!r}')
        return text + ("\n".join(lines) + "\n" if lines else "")


class ObsAggregate:
    """Campaign-level fold of per-run :class:`ObsContext` data."""

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()
        self.span_stats: Dict[str, SpanStats] = {}
        self.wall = WallProfiler()
        self.runs = 0
        self.cached_runs = 0
        self.run_wall_seconds: List[float] = []

    def add_run(self, ctx: ObsContext,
                wall_seconds: Optional[float] = None) -> None:
        """Fold one instrumented run into the aggregate."""
        self.metrics.merge(ctx.metrics)
        merge_span_stats(self.span_stats, ctx.spans.stats())
        self.wall.merge(ctx.wall)
        self.runs += 1
        if wall_seconds is not None:
            self.run_wall_seconds.append(wall_seconds)

    def add_cached(self) -> None:
        """Note a run served from the cache (nothing to observe)."""
        self.cached_runs += 1

    @property
    def total_wall_seconds(self) -> float:
        """Summed per-run wall time (s)."""
        return sum(self.run_wall_seconds)

    @property
    def runs_per_second(self) -> float:
        """Simulated runs completed per wall second, or NaN."""
        total = self.total_wall_seconds
        if not self.run_wall_seconds or total <= 0.0:
            return float("nan")
        return len(self.run_wall_seconds) / total

    def span_stats_sorted(self) -> Dict[str, SpanStats]:
        """Span stats sorted by name."""
        return dict(sorted(self.span_stats.items()))

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON form of the aggregate."""
        return {
            "runs": self.runs,
            "cached_runs": self.cached_runs,
            "run_wall_seconds": list(self.run_wall_seconds),
            "metrics": self.metrics.to_dict(),
            "spans": {name: stats.to_dict()
                      for name, stats in
                      sorted(self.span_stats_sorted().items())},
            "wall": self.wall.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ObsAggregate":
        """Rebuild an aggregate serialised by :meth:`to_dict`."""
        agg = cls()
        agg.runs = int(data["runs"])
        agg.cached_runs = int(data["cached_runs"])
        agg.run_wall_seconds = [float(v) for v
                                in data["run_wall_seconds"]]
        agg.metrics = MetricsRegistry.from_dict(data["metrics"])
        for name, entry in sorted(data["spans"].items()):
            agg.span_stats[name] = SpanStats.from_dict(entry)
        agg.wall = WallProfiler.from_dict(data["wall"])
        return agg

    def sim_digest(self) -> str:
        """SHA-256 over the deterministic slice of the aggregate.

        Covers run/cached counts, metrics and span statistics -- the
        parts the simulation determines -- and excludes the
        wall-clock profile and per-run wall times, which are real
        measured durations and never reproducible.  Two campaigns
        over the same work fold to the same ``sim_digest`` whatever
        the backend, worker count or crash history.
        """
        import hashlib

        from repro.core.fingerprint import canonical_json

        data = self.to_dict()
        text = canonical_json({key: data[key] for key in
                               ("runs", "cached_runs", "metrics",
                                "spans")})
        return hashlib.sha256(text.encode("utf-8")).hexdigest()


__all__ = ["ObsAggregate", "ObsContext", "WallStats"]
